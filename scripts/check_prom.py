#!/usr/bin/env python
"""Lint a Prometheus text exposition (promtool-style, stdlib-only).

Usage::

    python scripts/check_prom.py metrics.txt [...]
    ... | python scripts/check_prom.py -        # read stdin

Exit 0 when every input lints clean, 1 with one line per violation
otherwise.  CI runs this over the text a telemetry-on server serves at
``GET /metrics`` (both the single-gateway and federated-cluster forms),
so a drive-by change to the renderer — a broken escape, a histogram
missing its ``+Inf`` bucket — fails the obs smoke lane rather than
silently producing an exposition scrapers reject.

Checks:

* **grammar** — metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label
  names ``[a-zA-Z_][a-zA-Z0-9_]*``, label values are double-quoted with
  only ``\\\\``, ``\\"``, ``\\n`` escapes, sample values parse as floats
  (``NaN``/``+Inf``/``-Inf`` allowed);
* **structure** — at most one ``# TYPE`` per metric, declared before any
  of its samples, with a known type; ``# HELP`` at most once;
* **histogram invariants** — every series has a ``le="+Inf"`` bucket,
  bucket counts are cumulative (non-decreasing as ``le`` grows),
  ``_count`` equals the ``+Inf`` bucket, and ``_sum``/``_count`` are
  both present;
* **duplicates** — no metric+labelset sampled twice;
* **exemplars** — an ``# {...} value`` suffix only on ``_bucket`` lines,
  with a parsable label set and value.
"""

from __future__ import annotations

import math
import re
import sys
from collections import defaultdict
from pathlib import Path

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[^\"{}]|\"(?:[^\"\\]|\\.)*\")*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?"
    r"(?P<exemplar>\s+#\s+\{.*\}\s+\S+(?:\s+\S+)?)?$"
)
LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
VALID_ESCAPES = ("\\\\", '\\"', "\\n")


def base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text: str) -> float | None:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def check_label_value_escapes(raw: str) -> bool:
    i = 0
    while i < len(raw):
        if raw[i] == "\\":
            if i + 1 >= len(raw) or raw[i : i + 2] not in VALID_ESCAPES:
                return False
            i += 2
        elif raw[i] == '"':
            return False  # unescaped quote inside the value
        else:
            i += 1
    return True


def parse_labels(blob: str, where: str, errors: list[str]) -> dict[str, str]:
    labels: dict[str, str] = {}
    if not blob:
        return labels
    # Re-joining the matched pairs must reconstruct the blob; leftovers
    # mean malformed syntax (bare values, missing quotes, stray commas).
    consumed = 0
    for match in LABEL_PAIR.finditer(blob):
        name, raw = match.group("name"), match.group("value")
        if not LABEL_NAME.match(name):
            errors.append(f"{where}: bad label name {name!r}")
        if not check_label_value_escapes(raw):
            errors.append(f"{where}: bad escape in label value {raw!r}")
        if name in labels:
            errors.append(f"{where}: duplicate label {name!r}")
        labels[name] = raw
        consumed += len(match.group(0))
    separators = max(0, len(labels) - 1)
    if consumed + separators != len(blob.rstrip(",")):
        errors.append(f"{where}: malformed label set {{{blob}}}")
    return labels


class Exposition:
    """One parsed text exposition plus its violations."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.errors: list[str] = []
        self.types: dict[str, str] = {}
        self.helps: set[str] = set()
        self.seen_samples: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
        # histogram base -> labelset (minus le) -> {le: count}
        self.buckets: dict[str, dict[tuple, dict[float, float]]] = (
            defaultdict(lambda: defaultdict(dict))
        )
        self.sums: dict[str, dict[tuple, float]] = defaultdict(dict)
        self.counts: dict[str, dict[tuple, float]] = defaultdict(dict)

    def err(self, lineno: int, message: str) -> None:
        self.errors.append(f"{self.source}:{lineno}: {message}")

    def feed(self, lineno: int, line: str) -> None:
        if not line.strip():
            return
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                self.err(lineno, f"malformed HELP line: {line!r}")
                return
            if parts[2] in self.helps:
                self.err(lineno, f"duplicate HELP for {parts[2]!r}")
            self.helps.add(parts[2])
            return
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not METRIC_NAME.match(parts[2]):
                self.err(lineno, f"malformed TYPE line: {line!r}")
                return
            name, kind = parts[2], parts[3]
            if kind not in KNOWN_TYPES:
                self.err(lineno, f"unknown type {kind!r} for {name!r}")
            if name in self.types:
                self.err(lineno, f"duplicate TYPE for {name!r}")
            self.types[name] = kind
            return
        if line.startswith("#"):
            return  # plain comment
        self.sample(lineno, line)

    def sample(self, lineno: int, line: str) -> None:
        match = SAMPLE.match(line)
        if match is None:
            self.err(lineno, f"unparsable sample: {line!r}")
            return
        name = match.group("name")
        base = base_name(name)
        declared = self.types.get(base) or self.types.get(name)
        if declared is None:
            self.err(lineno, f"sample {name!r} before any TYPE declaration")
        value = parse_value(match.group("value"))
        if value is None:
            self.err(
                lineno, f"bad sample value {match.group('value')!r}"
            )
            return
        where = f"{self.source}:{lineno}"
        labels = parse_labels(
            match.group("labels") or "", where, self.errors
        )
        if match.group("exemplar") and not name.endswith("_bucket"):
            self.err(lineno, f"exemplar on non-bucket sample {name!r}")
        key = (name, tuple(sorted(labels.items())))
        if key in self.seen_samples:
            self.err(lineno, f"duplicate sample {name}{dict(labels)}")
        self.seen_samples.add(key)

        if declared == "histogram":
            series = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name.endswith("_bucket"):
                le = labels.get("le")
                bound = parse_value(le) if le is not None else None
                if bound is None:
                    self.err(lineno, f"bucket without a parsable le: {line!r}")
                    return
                self.buckets[base][series][bound] = value
            elif name.endswith("_sum"):
                self.sums[base][series] = value
            elif name.endswith("_count"):
                self.counts[base][series] = value

    def finish(self) -> None:
        for base, by_series in self.buckets.items():
            for series, by_le in by_series.items():
                labels = dict(series)
                if math.inf not in by_le:
                    self.errors.append(
                        f"{self.source}: histogram {base}{labels} has no "
                        f'le="+Inf" bucket'
                    )
                    continue
                ordered = [by_le[le] for le in sorted(by_le)]
                if any(b > a for a, b in zip(ordered[1:], ordered)):
                    self.errors.append(
                        f"{self.source}: histogram {base}{labels} buckets "
                        "are not cumulative"
                    )
                count = self.counts.get(base, {}).get(series)
                if count is None:
                    self.errors.append(
                        f"{self.source}: histogram {base}{labels} "
                        "missing _count"
                    )
                elif count != by_le[math.inf]:
                    self.errors.append(
                        f"{self.source}: histogram {base}{labels} _count "
                        f'{count} != le="+Inf" bucket {by_le[math.inf]}'
                    )
                if series not in self.sums.get(base, {}):
                    self.errors.append(
                        f"{self.source}: histogram {base}{labels} missing _sum"
                    )


def lint(text: str, source: str = "<text>") -> list[str]:
    exposition = Exposition(source)
    for lineno, line in enumerate(text.splitlines(), start=1):
        exposition.feed(lineno, line)
    exposition.finish()
    return exposition.errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: python scripts/check_prom.py FILE [FILE ...] (or -)")
        return 2
    failures = 0
    for arg in argv:
        if arg == "-":
            errors = lint(sys.stdin.read(), "<stdin>")
        elif not Path(arg).exists():
            errors = [f"{arg}: no such file"]
        else:
            errors = lint(Path(arg).read_text(), arg)
        if errors:
            failures += 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{arg}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
