#!/usr/bin/env python
"""Schema-check emitted trace files (JSONL span logs and Chrome traces).

Usage::

    python scripts/check_trace.py trace.jsonl trace.json [...]

Exit 0 when every file validates, 1 with one line per violation
otherwise.  CI runs this over the files a traced smoke translation
emits, so a drive-by change to the span record shape (a renamed field, a
non-JSON-safe attribute) fails the quick lane rather than silently
producing traces Perfetto will not load.

Checks, per format:

* ``.jsonl`` span logs — every line is a JSON object carrying the
  required span fields (``repro.obs.export.SPAN_REQUIRED_FIELDS``) with
  sane types: monotone ``end >= start``, ``duration`` consistent,
  ``status`` in {ok, error}, ``attrs`` a JSON object, parent links that
  resolve within the file's trace (a worker span's parent must exist
  once the tree is stitched), exactly one root per trace id.
* Chrome trace JSON — a ``traceEvents`` document whose events carry the
  Trace Event Format essentials (``ph``, ``ts``, ``pid``, ``name``;
  ``dur`` for complete ``"X"`` events) with numeric non-negative
  timestamps.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path

REQUIRED = (
    "name", "trace_id", "span_id", "parent_id", "start", "end",
    "duration", "status", "attrs", "pid", "thread",
)


def check_spans_jsonl(path: Path) -> list[str]:
    errors: list[str] = []
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{lineno}: not JSON: {exc}")
            continue
        if not isinstance(record, dict):
            errors.append(f"{path}:{lineno}: not an object")
            continue
        records.append((lineno, record))
        for field in REQUIRED:
            if field not in record:
                errors.append(f"{path}:{lineno}: missing field {field!r}")
        if record.get("status") not in ("ok", "error"):
            errors.append(
                f"{path}:{lineno}: bad status {record.get('status')!r}"
            )
        if not isinstance(record.get("attrs"), dict):
            errors.append(f"{path}:{lineno}: attrs is not an object")
        start, end = record.get("start"), record.get("end")
        if isinstance(start, (int, float)) and isinstance(end, (int, float)):
            if end < start:
                errors.append(f"{path}:{lineno}: end < start")
            duration = record.get("duration")
            if isinstance(duration, (int, float)) and abs(
                (end - start) - duration
            ) > 1e-6:
                errors.append(f"{path}:{lineno}: duration != end - start")
    # Tree shape: parent links resolve, one root per trace.
    by_trace: dict[str, list[dict]] = defaultdict(list)
    for _, record in records:
        by_trace[record.get("trace_id", "?")].append(record)
    for trace_id, spans in by_trace.items():
        ids = {s.get("span_id") for s in spans}
        roots = [s for s in spans if not s.get("parent_id")]
        if len(roots) != 1:
            errors.append(
                f"{path}: trace {trace_id[:8]} has {len(roots)} roots "
                f"(want exactly 1)"
            )
        for span in spans:
            parent = span.get("parent_id")
            if parent and parent not in ids:
                errors.append(
                    f"{path}: trace {trace_id[:8]} span "
                    f"{span.get('name')!r} has dangling parent {parent[:8]}"
                )
    return errors


def check_chrome_trace(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not JSON: {exc}"]
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"{path}: event {i} is not an object")
            continue
        for field in ("ph", "pid", "name"):
            if field not in event:
                errors.append(f"{path}: event {i} missing {field!r}")
        if event.get("ph") == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"{path}: event {i} ({event.get('name')!r}) has "
                        f"bad {field}: {value!r}"
                    )
    return errors


def check(path: Path) -> list[str]:
    if not path.exists():
        return [f"{path}: no such file"]
    if path.suffix == ".jsonl":
        return check_spans_jsonl(path)
    return check_chrome_trace(path)


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: python scripts/check_trace.py FILE [FILE ...]")
        return 2
    failures = 0
    for arg in argv:
        errors = check(Path(arg))
        if errors:
            failures += 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{arg}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
