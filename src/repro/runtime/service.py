"""Deadline-aware translation with graceful degradation.

:class:`TranslationService` wraps a :class:`~repro.translate.Translator`
with the guarantees a production front end needs:

* **never raises** — every failure (budget trip, injected fault, genuine
  bug) is converted into a structured :class:`ServiceResult` carrying a
  machine-readable error code;
* **bounded** — a wall-clock ``deadline`` (and optional derivation cap) is
  split across a *degradation ladder*: the full configuration first, then
  a reduced-beam configuration, then rules-only.  A tier that times out
  with no candidates is retried at the next-cheaper tier; a tier whose
  budget trips but whose anytime ranking still found programs returns
  them, marked ``degraded``;
* **diagnosable** — the result records the tier used, elapsed time, budget
  spend, and a per-tier attempt log.

With no deadline and no faults the service is behaviour-preserving: tier 0
runs the ordinary translator with an unlimited budget and returns its exact
ranking.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable

from ..cache import CacheKey, ResultCache, normalise_sentence, options_signature
from ..errors import ReproError
from ..obs.clock import perf
from ..obs.log import get_logger
from ..obs.trace import NULL_TRACER
from ..sheet import Workbook
from ..translate import Candidate, Translator, TranslatorConfig
from ..translate.rules import RuleSet
from .budget import Budget
from .faults import FaultPlan, active_plan, installed

__all__ = [
    "AttemptReport",
    "ServiceResult",
    "Tier",
    "TranslationService",
    "degradation_ladder",
]

# Deterministic input rejections: retrying a cheaper tier cannot change the
# outcome, so the ladder stops immediately.
INPUT_ERROR_CODES = frozenset(
    {"empty_description", "description_too_long", "symbols_only"}
)

_UNSET = object()

_log = get_logger("runtime.service")


@dataclass(frozen=True)
class Tier:
    """One rung of the degradation ladder."""

    name: str
    config: TranslatorConfig


def degradation_ladder(config: TranslatorConfig | None = None) -> tuple[Tier, ...]:
    """The default ladder: full fidelity, reduced search, rules-only.

    The reduced tier shrinks the three work knobs (beam, synthesis closure,
    alignment cap) by ~3x — in the beam ablation bench that costs a few
    points of recall but roughly halves latency.  The rules-only tier drops
    the synthesis closure entirely, which is the paper's cheapest ablation
    row (Table 3) and is effectively immune to `CombAll` blow-ups.

    The ladder respects the caller's ablation choices: a config with rules
    disabled never grows a rules-only rung, and rungs whose configuration
    is identical to an earlier one are dropped — re-running the exact same
    search cannot find anything new and only burns deadline (a base config
    that is already rules-only collapses to one or two rungs).
    """
    full = config or TranslatorConfig()
    reduced = replace(
        full,
        beam_size=max(24, full.beam_size // 3),
        synth_max_new=max(16, full.synth_max_new // 3),
        max_alignments=max(4, full.max_alignments // 2),
    )
    rungs = [Tier("full", full), Tier("reduced", reduced)]
    if full.use_rules:
        rungs.append(Tier("rules_only", replace(reduced, use_synthesis=False)))
    tiers: list[Tier] = []
    for rung in rungs:
        if all(rung.config != kept.config for kept in tiers):
            tiers.append(rung)
    return tuple(tiers)


@dataclass
class AttemptReport:
    """Diagnostics for one tier attempt."""

    tier: str
    elapsed: float
    derivations: int
    exhausted: bool
    candidates: int
    error_code: str | None = None
    error: str | None = None
    cached: bool = False


@dataclass
class ServiceResult:
    """Outcome of one service request: candidates plus diagnostics."""

    candidates: list[Candidate]
    tier: str | None
    degraded: bool
    anytime: bool
    elapsed: float
    budget_spent: int
    attempts: list[AttemptReport] = field(default_factory=list)
    error_code: str | None = None
    error: str | None = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error_code is None

    @property
    def top(self) -> Candidate | None:
        return self.candidates[0] if self.candidates else None


class TranslationService:
    """Resilient front end over the translator for one workbook.

    ``deadline`` is the total wall-clock budget in seconds for a request
    across all ladder tiers (``None`` = unbounded); ``max_derivations``
    additionally caps the work per tier attempt.  ``faults`` arms a
    :class:`FaultPlan` for the duration of each request (testing knob; the
    ``REPRO_FAULTS`` env var arms one process-wide instead).

    ``cache`` attaches a :class:`~repro.cache.ResultCache`: each ladder
    rung is memoised independently under ``(normalised sentence, workbook
    fingerprint, rung signature)``, so a repeat request short-circuits at
    the first rung whose result is known — including cheap rungs seeded by
    an earlier degraded request.  Only *clean, fully-searched* rungs are
    committed (no error, budget not exhausted), whose output is provably
    independent of the deadline in force, so a hit is byte-identical to
    recomputing.  When the workbook mutates (its fingerprint changes), the
    service invalidates every entry it cached for the old fingerprint.
    Requests with a fault plan armed bypass the cache entirely.
    """

    def __init__(
        self,
        workbook: Workbook,
        rules: RuleSet | None = None,
        config: TranslatorConfig | None = None,
        deadline: float | None = None,
        max_derivations: int | None = None,
        tiers: tuple[Tier, ...] | None = None,
        faults: FaultPlan | None = None,
        cache: ResultCache | None = None,
        clock: Callable[[], float] = perf,
        tracer=None,
    ) -> None:
        self.workbook = workbook
        self.rules = rules
        self.deadline = deadline
        self.max_derivations = max_derivations
        self.tiers = tiers or degradation_ladder(config)
        self.faults = faults
        self.cache = cache
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._translators: dict[str, Translator] = {}
        self._translators_lock = threading.Lock()
        # Guards the read-compare-write on _last_fingerprint: two threads
        # translating through one service must not race the mutation
        # detection into a missed (or doubled) invalidation.
        self._fingerprint_lock = threading.Lock()
        self._last_fingerprint: str | None = None
        self._tier_signatures: dict[str, str] = {}
        self._rules_signature = (
            "builtin"
            if rules is None
            else options_signature(*[rule.render() for rule in rules])
        )

    # -- translators ------------------------------------------------------------

    def translator_for(self, tier: Tier) -> Translator:
        # Double-checked: the dict read is lock-free on the hot path, and
        # the lock ensures concurrent first calls build one translator per
        # tier instead of racing on construction.
        cached = self._translators.get(tier.name)
        if cached is None:
            with self._translators_lock:
                cached = self._translators.get(tier.name)
                if cached is None:
                    cached = Translator(
                        self.workbook, rules=self.rules, config=tier.config
                    )
                    self._translators[tier.name] = cached
        return cached

    @property
    def context(self):
        """The full-fidelity sheet context (for annotation/explanations)."""
        return self.translator_for(self.tiers[0]).ctx

    # -- cache keying -----------------------------------------------------------

    def _tier_signature(self, tier: Tier) -> str:
        """The options signature for one rung: its full translator config
        plus the rule set (``max_derivations``/``deadline`` are excluded on
        purpose — committed entries come only from runs that never tripped
        a budget, whose output those knobs cannot have influenced)."""
        signature = self._tier_signatures.get(tier.name)
        if signature is None:
            signature = options_signature(
                tier.name, tier.config, self._rules_signature
            )
            self._tier_signatures[tier.name] = signature
        return signature

    # -- the request path -------------------------------------------------------

    def translate(
        self,
        sentence: str,
        tracer=None,
        *,
        deadline: float | None | object = _UNSET,
        on_update: Callable[[str, list[Candidate]], None] | None = None,
    ) -> ServiceResult:
        """Translate under the service guarantees (never raises).

        ``tracer`` overrides the service's tracer for this request (the
        gateway worker passes a per-request tracer whose records travel
        back across the process boundary — docs/OBSERVABILITY.md).

        ``deadline`` overrides the service-level deadline for this request
        only (``None`` = unbounded), so one service instance can serve
        concurrent requests with different budgets without mutating shared
        state — the HTTP streaming path depends on this.

        ``on_update`` is the anytime-improvement hook: called as
        ``on_update(tier_name, candidates)`` with the current (partial)
        ranking each time the translator's DP finishes a width row.  The
        callback runs on the translating thread; exceptions from it are
        logged, never propagated into the ladder (docs/HTTP.md).
        """
        tracer = tracer if tracer is not None else self.tracer
        if deadline is _UNSET:
            deadline = self.deadline
        if self.faults is not None:
            with installed(self.faults):
                return self._translate(sentence, tracer, deadline, on_update)
        return self._translate(sentence, tracer, deadline, on_update)

    def _translate(
        self, sentence: str, tracer, deadline: float | None, on_update
    ) -> ServiceResult:
        start = self.clock()
        attempts: list[AttemptReport] = []
        spent = 0
        # Fault injection can perturb any stage, so an armed plan (per
        # request or process-wide) disables memoisation for this request.
        cache = self.cache if active_plan() is None else None
        normalised = fingerprint = None
        if cache is not None:
            normalised = normalise_sentence(sentence)
            fingerprint = self.workbook.fingerprint()
            with self._fingerprint_lock:
                previous = self._last_fingerprint
                self._last_fingerprint = fingerprint
            if previous not in (None, fingerprint):
                # The workbook mutated since the last request: everything
                # this service committed for the old state is now garbage.
                cache.invalidate(previous)

        with tracer.span("service.request") as root:
            result = self._run_ladder(
                sentence, start, attempts, spent, cache,
                normalised, fingerprint, tracer, deadline, on_update,
            )
            root.set(
                tier=result.tier,
                degraded=result.degraded,
                anytime=result.anytime,
                cached=result.cached,
            )
            if result.error_code is not None:
                root.error(result.error).set(error_code=result.error_code)
            return result

    def _run_ladder(
        self,
        sentence: str,
        start: float,
        attempts: list[AttemptReport],
        spent: int,
        cache: ResultCache | None,
        normalised: str | None,
        fingerprint: str | None,
        tracer,
        deadline: float | None,
        on_update,
    ) -> ServiceResult:
        for k, tier in enumerate(self.tiers):
            key = None
            if cache is not None:
                key = CacheKey(
                    normalised, fingerprint, self._tier_signature(tier)
                )
                with tracer.span("cache.probe", tier=tier.name) as probe:
                    hit = cache.get(key)
                    probe.set(hit=hit is not None)
                if hit is not None:
                    elapsed = self.clock() - start
                    cache.observe_hit(elapsed)
                    attempts.append(
                        AttemptReport(
                            tier=tier.name,
                            elapsed=self.clock() - start,
                            derivations=0,
                            exhausted=False,
                            candidates=len(hit),
                            cached=True,
                        )
                    )
                    return ServiceResult(
                        candidates=list(hit),
                        tier=tier.name,
                        degraded=k > 0,
                        anytime=False,
                        elapsed=self.clock() - start,
                        budget_spent=spent,
                        attempts=attempts,
                        cached=True,
                    )
            budget = self._budget_for(k, start, deadline)
            t0 = self.clock()
            error: str | None = None
            code: str | None = None
            candidates: list[Candidate] = []
            progress = None
            if on_update is not None:
                progress = self._progress_for(tier.name, on_update)
            with tracer.span("service.tier", tier=tier.name) as tier_span:
                try:
                    candidates = self.translator_for(tier).translate(
                        sentence, budget=budget, tracer=tracer,
                        progress=progress,
                    )
                except ReproError as exc:
                    error, code = str(exc), exc.code
                except Exception as exc:  # noqa: BLE001 - the never-crash contract
                    error, code = f"{type(exc).__name__}: {exc}", "internal_error"
                tier_span.set(
                    candidates=len(candidates),
                    derivations=budget.spent_derivations,
                    exhausted=budget.exhausted,
                )
                if code is not None:
                    tier_span.error(error).set(error_code=code)
            spent += budget.spent_derivations
            tier_elapsed = self.clock() - t0
            attempts.append(
                AttemptReport(
                    tier=tier.name,
                    elapsed=tier_elapsed,
                    derivations=budget.spent_derivations,
                    exhausted=budget.exhausted,
                    candidates=len(candidates),
                    error_code=code,
                    error=error,
                )
            )
            if key is not None and code is None and not budget.exhausted:
                # Clean, fully-searched rung: its ranking is a pure
                # function of (sentence, workbook, rung config) —
                # deadline-independent — so it is safe to memoise.  An
                # exhausted (anytime) or errored rung never is.
                with tracer.span("cache.commit", tier=tier.name):
                    cache.put(key, tuple(candidates))
                    cache.observe_miss(tier_elapsed)

            if code is None and candidates:
                return ServiceResult(
                    candidates=candidates,
                    tier=tier.name,
                    degraded=k > 0 or budget.exhausted,
                    anytime=budget.exhausted,
                    elapsed=self.clock() - start,
                    budget_spent=spent,
                    attempts=attempts,
                )
            if code is None and not budget.exhausted:
                # A clean, fully-searched run found nothing; cheaper tiers
                # search strictly less, so stop here.
                return ServiceResult(
                    candidates=[],
                    tier=tier.name,
                    degraded=k > 0,
                    anytime=False,
                    elapsed=self.clock() - start,
                    budget_spent=spent,
                    attempts=attempts,
                )
            if code in INPUT_ERROR_CODES:
                break
            # Timed out empty or faulted: fall through to the next tier.

        last = attempts[-1]
        code = last.error_code or "deadline_exhausted"
        error = last.error or (
            f"no complete translation within the "
            f"{deadline * 1000:.0f} ms deadline"
            if deadline is not None
            else "no complete translation within budget"
        )
        return ServiceResult(
            candidates=[],
            tier=None,
            degraded=True,
            anytime=False,
            elapsed=self.clock() - start,
            budget_spent=spent,
            attempts=attempts,
            error_code=code,
            error=error,
        )

    def _budget_for(
        self, k: int, start: float, deadline: float | None | object = _UNSET
    ) -> Budget:
        """An even split of the remaining deadline over the remaining
        tiers (the last tier inherits everything left)."""
        if deadline is _UNSET:
            deadline = self.deadline
        if deadline is None:
            return Budget(max_derivations=self.max_derivations)
        remaining = max(0.0, deadline - (self.clock() - start))
        slice_ = remaining / (len(self.tiers) - k)
        return Budget(
            deadline=slice_,
            max_derivations=self.max_derivations,
            clock=self.clock,
        )

    @staticmethod
    def _progress_for(tier_name: str, on_update) -> Callable:
        """Wrap the caller's anytime hook: attach the tier name and keep
        callback bugs out of the ladder (they are observability, not
        translation)."""

        def progress(candidates: list[Candidate]) -> None:
            try:
                on_update(tier_name, candidates)
            except Exception:  # noqa: BLE001 - hook must not poison the rung
                _log.exception("anytime on_update hook raised")

        return progress
