"""Cooperative translation budgets.

A :class:`Budget` bounds one translation request along two axes:

* **wall-clock** — a deadline in seconds from construction, and
* **work** — a cap on the number of derivations the pipeline creates.

The budget is *cooperative*: the translator polls it at well-defined
checkpoints (per DP span, per synthesis round, per rule) rather than being
preempted, so every data structure stays consistent at the moment the
budget trips and the anytime path can rank whatever complete programs
exist so far.

Two probes with different contracts:

* :meth:`Budget.exceeded` is the non-raising check used inside inner loops
  (synthesis rounds, rule application) — the loop breaks and returns its
  partial output so nothing already computed is lost;
* :meth:`Budget.checkpoint` raises :class:`BudgetExceededError` and is
  called only by the top-level DP in ``Translator``, which catches it and
  switches to anytime ranking.

The default ``Budget()`` is unlimited and its probes are near-free, so the
budget can be threaded unconditionally without a fast path fork.
"""

from __future__ import annotations

from typing import Callable

from ..errors import BudgetExceededError
from ..obs.clock import perf

__all__ = ["Budget"]


class Budget:
    """Wall-clock deadline plus derivation counter for one request."""

    __slots__ = (
        "deadline",
        "max_derivations",
        "clock",
        "started",
        "spent_derivations",
        "checkpoints",
        "exhausted",
        "exhausted_stage",
        "exhausted_reason",
    )

    def __init__(
        self,
        deadline: float | None = None,
        max_derivations: int | None = None,
        clock: Callable[[], float] = perf,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0")
        if max_derivations is not None and max_derivations < 0:
            raise ValueError("max_derivations must be >= 0")
        self.deadline = deadline
        self.max_derivations = max_derivations
        self.clock = clock
        self.started = clock()
        self.spent_derivations = 0
        self.checkpoints = 0
        self.exhausted = False
        self.exhausted_stage = ""
        self.exhausted_reason = ""

    # -- accounting -------------------------------------------------------------

    @property
    def unlimited(self) -> bool:
        return self.deadline is None and self.max_derivations is None

    def charge(self, n: int = 1) -> None:
        """Record ``n`` derivations of work (never raises)."""
        self.spent_derivations += n

    def elapsed(self) -> float:
        return self.clock() - self.started

    def remaining_time(self) -> float | None:
        """Seconds left before the deadline (``None`` when undeadlined)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    # -- probes -----------------------------------------------------------------

    def exceeded(self, stage: str = "") -> bool:
        """Non-raising probe; latches (and remembers) the first trip."""
        if self.exhausted:
            return True
        if (
            self.max_derivations is not None
            and self.spent_derivations > self.max_derivations
        ):
            self._trip(stage, "derivations")
            return True
        if self.deadline is not None and self.elapsed() > self.deadline:
            self._trip(stage, "deadline")
            return True
        return False

    def checkpoint(self, stage: str = "") -> None:
        """Raising probe for the top-level DP loop."""
        self.checkpoints += 1
        if self.exceeded(stage):
            raise BudgetExceededError(
                f"translation budget exceeded at {self.exhausted_stage or stage!r}"
                f" ({self.exhausted_reason}): "
                f"{self.elapsed() * 1000:.1f} ms elapsed, "
                f"{self.spent_derivations} derivations",
                stage=self.exhausted_stage or stage,
            )

    def _trip(self, stage: str, reason: str) -> None:
        self.exhausted = True
        self.exhausted_stage = stage
        self.exhausted_reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline={self.deadline}, "
            f"max_derivations={self.max_derivations}, "
            f"spent={self.spent_derivations}, exhausted={self.exhausted})"
        )
