"""Deterministic fault injection for the translation pipeline.

The resilience guarantees of :class:`~repro.runtime.service.TranslationService`
("never crash, degrade instead") are only testable if failures can be
produced on demand.  This module plants named *fault points* inside the
pipeline stages::

    tokenize      after token preparation, before the DP starts
    seeds         per span, before keyword-programming seeds
    rules         per RuleTranslator.translate_span call
    synthesis     per synthesize() call
    ranking       before final ranking
    worker_crash  per gateway worker request, before translation starts
                  (a ``raise`` fault here makes the worker process exit
                  abruptly — the segfault/OOM-kill stand-in used by the
                  crash-containment tests of :mod:`repro.serve`)

A :class:`FaultSpec` arms one stage with either a raised exception
(``mode="raise"``; a :class:`ReproError` by default, or an arbitrary
``RuntimeError`` with ``error="runtime"`` to model genuine bugs) or a
wall-clock delay (``mode="delay"``) that makes deadline tests
deterministic.  ``after``/``times`` shape *which* hits fire, so a test can
fail the first service tier and let the retry succeed.

Activation is explicit (``install``/``inject``) or environment-driven: set
``REPRO_FAULTS="synthesis:raise"`` or ``"seeds:delay:0.05;rules:raise:runtime"``
before importing to poison a live process.  When nothing is armed the fault
points cost one global read and a ``None`` check.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import InjectedFaultError, ReproError

__all__ = [
    "STAGES",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "clear",
    "fault_point",
    "inject",
    "install",
    "parse_plan",
]

STAGES = (
    "tokenize", "seeds", "rules", "synthesis", "ranking", "worker_crash"
)
ENV_VAR = "REPRO_FAULTS"

_MODES = ("raise", "delay")


@dataclass
class FaultSpec:
    """One armed stage: what to do and on which hits to do it."""

    stage: str
    mode: str = "raise"
    delay: float = 0.01
    error: str = "repro"  # "repro" -> InjectedFaultError, "runtime" -> RuntimeError
    after: int = 0  # skip the first `after` hits
    times: int | None = None  # fire at most this many times (None = forever)
    hits: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ReproError(
                f"unknown fault stage {self.stage!r} (known: {', '.join(STAGES)})",
                code="bad_fault_spec",
            )
        if self.mode not in _MODES:
            raise ReproError(
                f"unknown fault mode {self.mode!r} (known: {', '.join(_MODES)})",
                code="bad_fault_spec",
            )

    def trigger(self) -> None:
        self.hits += 1
        if self.hits <= self.after:
            return
        if self.times is not None and self.fired >= self.times:
            return
        self.fired += 1
        if self.mode == "delay":
            time.sleep(self.delay)
            return
        if self.error == "runtime":
            raise RuntimeError(f"injected runtime fault at stage {self.stage!r}")
        raise InjectedFaultError(self.stage)


@dataclass
class FaultPlan:
    """A set of armed fault specs, indexed by stage."""

    specs: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_stage: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self._by_stage.setdefault(spec.stage, []).append(spec)

    def hit(self, stage: str) -> None:
        for spec in self._by_stage.get(stage, ()):
            spec.trigger()

    def reset(self) -> None:
        for spec in self.specs:
            spec.hits = spec.fired = 0


_active: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Arm ``plan`` process-wide (``None`` disarms)."""
    global _active
    _active = plan


def clear() -> None:
    install(None)


def active_plan() -> FaultPlan | None:
    """The currently armed plan, if any (``None`` = healthy process)."""
    return _active


@contextmanager
def installed(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Arm ``plan`` for the duration of a ``with`` block."""
    previous = _active
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


@contextmanager
def inject(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Arm the given specs for the duration of a ``with`` block."""
    with installed(FaultPlan(list(specs))) as plan:
        yield plan


def fault_point(stage: str) -> None:
    """Pipeline hook: no-op unless a plan armed this stage."""
    plan = _active
    if plan is not None:
        plan.hit(stage)


def parse_plan(text: str) -> FaultPlan:
    """Parse the ``REPRO_FAULTS`` syntax: ``stage:mode[:arg]`` items
    separated by ``;``.  The third field is the delay in seconds for
    ``delay`` faults and the error kind (``repro``/``runtime``) for
    ``raise`` faults."""
    specs: list[FaultSpec] = []
    for item in text.split(";"):
        item = item.strip()
        if not item:
            continue
        parts = item.split(":")
        if len(parts) < 2:
            raise ReproError(
                f"bad fault spec {item!r}: want stage:mode[:arg]",
                code="bad_fault_spec",
            )
        stage, mode = parts[0].strip(), parts[1].strip()
        spec = FaultSpec(stage=stage, mode=mode)
        if len(parts) > 2 and parts[2].strip():
            arg = parts[2].strip()
            if mode == "delay":
                try:
                    spec.delay = float(arg)
                except ValueError:
                    raise ReproError(
                        f"bad fault spec {item!r}: delay {arg!r} is not "
                        f"a number of seconds",
                        code="bad_fault_spec",
                    ) from None
                if spec.delay < 0:
                    raise ReproError(
                        f"bad fault spec {item!r}: delay must be >= 0",
                        code="bad_fault_spec",
                    )
            else:
                spec.error = arg
        specs.append(spec)
    return FaultPlan(specs)


def install_from_env(environ: dict[str, str] | None = None) -> FaultPlan | None:
    """Arm a plan from ``REPRO_FAULTS`` if set; returns the plan.

    A malformed value is logged as a warning and ignored rather than
    raised: this runs at import time, and a debugging knob must never
    take down the process that imports the package.  (The warning still
    reaches stderr with logging unconfigured, via ``logging.lastResort``.)
    """
    text = (environ or os.environ).get(ENV_VAR, "").strip()
    if not text:
        return None
    try:
        plan = parse_plan(text)
    except ReproError as exc:
        from ..obs.log import fields, get_logger

        get_logger("runtime.faults").warning(
            f"ignoring malformed {ENV_VAR}",
            extra=fields(value=text, error=str(exc)),
        )
        return None
    install(plan)
    return plan


install_from_env()
