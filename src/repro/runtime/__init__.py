"""Runtime resilience layer: budgets, fault injection, and the
deadline-aware :class:`TranslationService` with its degradation ladder.

``budget`` and ``faults`` are dependency-free and imported eagerly (the
translation core hooks into them); ``service`` sits *above* the translator,
so it is loaded lazily to keep the package import-cycle free.
"""

from __future__ import annotations

from .budget import Budget
from .faults import (
    STAGES,
    FaultPlan,
    FaultSpec,
    clear,
    fault_point,
    inject,
    install,
    parse_plan,
)

__all__ = [
    "AttemptReport",
    "Budget",
    "FaultPlan",
    "FaultSpec",
    "STAGES",
    "ServiceResult",
    "Tier",
    "TranslationService",
    "clear",
    "degradation_ladder",
    "fault_point",
    "inject",
    "install",
    "parse_plan",
]

_SERVICE_NAMES = {
    "AttemptReport",
    "ServiceResult",
    "Tier",
    "TranslationService",
    "degradation_ladder",
}


def __getattr__(name: str):
    if name in _SERVICE_NAMES:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
