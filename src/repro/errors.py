"""Exception hierarchy for the NLyze reproduction.

Every package raises exceptions derived from :class:`ReproError` so that
callers embedding the library can catch a single base class.  More specific
subclasses communicate *which* layer rejected an operation: the spreadsheet
substrate, the DSL type system, the evaluator, or the translator.

Every error also carries a machine-readable ``code`` (a stable snake_case
identifier) so services and UIs can branch on the failure kind without
parsing English messages.  Each class declares a default; raisers can
override per-instance with the ``code=`` keyword::

    raise TranslationError("description too long", code="description_too_long")
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""

    code: str = "repro_error"

    def __init__(self, *args, code: str | None = None) -> None:
        super().__init__(*args)
        if code is not None:
            self.code = code


class SheetError(ReproError):
    """Raised by the spreadsheet substrate (bad address, unknown table...)."""

    code = "sheet_error"


class UnknownTableError(SheetError):
    """A referenced table does not exist in the workbook."""

    code = "unknown_table"

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(SheetError):
    """A referenced column does not exist in the table."""

    code = "unknown_column"

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"table {table!r} has no column {column!r}")
        self.table = table
        self.column = column


class AddressError(SheetError):
    """An A1-style cell address could not be parsed or is out of range."""

    code = "bad_address"


class DslTypeError(ReproError):
    """An expression failed the DSL ``Valid`` type check."""

    code = "type_error"


class EvaluationError(ReproError):
    """A well-typed program still failed at run time (e.g. lookup miss)."""

    code = "evaluation_error"


class HoleError(ReproError):
    """An operation on partial expressions was illegal (e.g. evaluating a
    program that still contains holes, or substituting an expression that is
    inconsistent with a hole's restriction)."""

    code = "hole_error"


class TranslationError(ReproError):
    """The translation pipeline was invoked with invalid inputs."""

    code = "translation_error"


class RuleParseError(TranslationError):
    """A rule template written in the concrete rule syntax failed to parse."""

    code = "rule_parse_error"


class LearningError(ReproError):
    """The rule-learning pipeline received inconsistent training data."""

    code = "learning_error"


class PbeError(ReproError):
    """The mini Flash Fill learner could not handle its examples."""

    code = "pbe_error"


class CacheCodecError(ReproError):
    """A serialised cache entry failed to encode or validate on decode.

    Raised by :mod:`repro.cache.codec`.  The shared cache tier treats a
    decode failure as a miss and drops the offending entry — a corrupt
    blob in a shared store must never take serving down with it.
    """

    code = "cache_codec_error"


class TelemetryCodecError(ReproError):
    """A serialised telemetry delta failed to encode or validate on decode.

    Raised by :mod:`repro.obs.telemetry.codec`.  The gateway treats a
    decode failure as a dropped delta (counted, logged at debug) — a
    corrupt metrics blob from a worker must never take serving down, and
    must never silently skew the federated registry either.
    """

    code = "telemetry_codec_error"


class BudgetExceededError(ReproError):
    """A cooperative translation budget (wall-clock deadline or work
    counter) ran out mid-pipeline.

    Raised only at budget checkpoints, never from arbitrary points, so the
    translator's data structures stay consistent and the anytime path can
    rank whatever complete programs exist so far.  ``stage`` names the
    pipeline stage that hit the limit.
    """

    code = "budget_exceeded"

    def __init__(self, message: str, stage: str = "") -> None:
        super().__init__(message)
        self.stage = stage


class InjectedFaultError(ReproError):
    """Deterministic failure raised by the fault-injection harness
    (:mod:`repro.runtime.faults`) to prove the service degrades instead of
    crashing.  Never raised in production configurations."""

    code = "fault_injected"

    def __init__(self, stage: str) -> None:
        super().__init__(f"injected fault at stage {stage!r}")
        self.stage = stage
