"""Exception hierarchy for the NLyze reproduction.

Every package raises exceptions derived from :class:`ReproError` so that
callers embedding the library can catch a single base class.  More specific
subclasses communicate *which* layer rejected an operation: the spreadsheet
substrate, the DSL type system, the evaluator, or the translator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SheetError(ReproError):
    """Raised by the spreadsheet substrate (bad address, unknown table...)."""


class UnknownTableError(SheetError):
    """A referenced table does not exist in the workbook."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(SheetError):
    """A referenced column does not exist in the table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"table {table!r} has no column {column!r}")
        self.table = table
        self.column = column


class AddressError(SheetError):
    """An A1-style cell address could not be parsed or is out of range."""


class DslTypeError(ReproError):
    """An expression failed the DSL ``Valid`` type check."""


class EvaluationError(ReproError):
    """A well-typed program still failed at run time (e.g. lookup miss)."""


class HoleError(ReproError):
    """An operation on partial expressions was illegal (e.g. evaluating a
    program that still contains holes, or substituting an expression that is
    inconsistent with a hole's restriction)."""


class TranslationError(ReproError):
    """The translation pipeline was invoked with invalid inputs."""


class RuleParseError(TranslationError):
    """A rule template written in the concrete rule syntax failed to parse."""


class LearningError(ReproError):
    """The rule-learning pipeline received inconsistent training data."""


class PbeError(ReproError):
    """The mini Flash Fill learner could not handle its examples."""
