"""HTTP front end: asyncio server, wire protocol, anytime streaming.

See docs/HTTP.md for the endpoint reference and the streaming protocol.
"""

from .protocol import Limits, ProtocolError, Request
from .server import TRACE_HEADER, HttpConfig, HttpServer, status_for
from .stream import AnytimeEmitter, ServiceStreamer, result_payload

__all__ = [
    "AnytimeEmitter",
    "HttpConfig",
    "HttpServer",
    "Limits",
    "ProtocolError",
    "Request",
    "ServiceStreamer",
    "TRACE_HEADER",
    "result_payload",
    "status_for",
]
