"""Streaming translation: anytime rankings pushed as they improve.

The HTTP front end's streaming mode (docs/HTTP.md) serves NDJSON records
from an **in-process** :class:`~repro.runtime.TranslationService` rather
than the worker pool: the anytime hook fires on the translating thread,
and marshalling every intermediate ranking across a process boundary
would cost more than the translation.  Translation is deterministic and
the gateway differential harness already proves the pooled path
byte-identical to the in-process one, so the final streamed record
matches what the pool would have returned for the same budget.

Two pieces live here:

* :class:`AnytimeEmitter` — the monotone gate.  The translator's
  ``progress`` hook fires once per DP width row, usually with the same
  ranking as last time.  The emitter keys each ranking by its score
  vector (compared lexicographically, longer-is-better on ties) and
  emits only strict improvements — so chunk *k* is never worse than
  chunk *k−1*, the property the conformance suite asserts.
* :class:`ServiceStreamer` — owns one service and runs a request to
  completion, feeding improvements to a caller-supplied ``emit``
  callable and returning the final :class:`ServiceResult`.  Thread-safe
  per request: the per-call ``deadline`` override means concurrent
  streams through one streamer never mutate shared state.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..obs.clock import perf
from ..runtime.service import ServiceResult, TranslationService
from ..sheet import Workbook
from ..translate import Candidate

__all__ = ["AnytimeEmitter", "ServiceStreamer", "result_payload"]


def result_payload(
    result: ServiceResult, workbook: Workbook, top_k: int
) -> dict:
    """The deterministic slice of a result, as the HTTP body renders it.

    This is the object the differential harness compares byte-for-byte
    between the streamed final record and a direct in-process call, so it
    must contain no timing fields (those live under ``"serving"``).
    The shape mirrors the gateway worker's reply dict.
    """
    programs = [
        [str(c.program), c.score] for c in result.candidates[:top_k]
    ]
    top_formula = None
    if result.top is not None:
        try:
            top_formula = result.top.excel(workbook)
        except Exception:  # noqa: BLE001 - a render bug must not kill the reply
            top_formula = None
    return {
        "ok": result.ok,
        "error_code": result.error_code,
        "error": result.error,
        "tier": result.tier,
        "degraded": result.degraded,
        "anytime": result.anytime,
        "n_candidates": len(result.candidates),
        "programs": programs,
        "top_formula": top_formula,
    }


class AnytimeEmitter:
    """Emit an update record only when the ranking strictly improves.

    The ranking key is the tuple of candidate scores in rank order; a
    candidate list is *better* when its key is lexicographically greater
    (a better top-1 wins outright; equal prefixes are broken by having
    more results).  Thread-safe: the translator may drive ``offer`` from
    a worker thread while the event loop drains the queue.
    """

    def __init__(self, top_k: int) -> None:
        self.top_k = top_k
        self._best: tuple[float, ...] | None = None
        self._seq = 0
        self._lock = threading.Lock()

    @staticmethod
    def _key(candidates: list[Candidate]) -> tuple[float, ...]:
        return tuple(c.score for c in candidates)

    def offer(self, tier: str, candidates: list[Candidate]) -> dict | None:
        """An update record for a strict improvement, else ``None``."""
        if not candidates:
            return None
        key = self._key(candidates)
        with self._lock:
            if self._best is not None and key <= self._best:
                return None
            self._best = key
            self._seq += 1
            seq = self._seq
        return {
            "event": "update",
            "seq": seq,
            "tier": tier,
            "n_candidates": len(candidates),
            "top_score": candidates[0].score,
            "programs": [
                [str(c.program), c.score] for c in candidates[: self.top_k]
            ],
        }

    @property
    def updates(self) -> int:
        with self._lock:
            return self._seq


class ServiceStreamer:
    """One in-process service shared by every streaming request.

    ``service`` may be injected directly (tests pass a stub with a
    compatible ``translate`` signature); otherwise one is built over
    ``workbook``.  ``clock`` feeds the service's budget arithmetic, so an
    injectable clock makes streaming deadlines deterministic under test.
    """

    def __init__(
        self,
        workbook: Workbook | None = None,
        *,
        service: TranslationService | None = None,
        config=None,
        cache=None,
        clock: Callable[[], float] = perf,
    ) -> None:
        if service is None:
            if workbook is None:
                raise ValueError("ServiceStreamer needs a workbook or a service")
            service = TranslationService(
                workbook, config=config, cache=cache, clock=clock
            )
        self.service = service

    @property
    def workbook(self) -> Workbook:
        return self.service.workbook

    def run(
        self,
        sentence: str,
        *,
        deadline: float | None,
        top_k: int,
        emit: Callable[[dict], None],
        tracer=None,
    ) -> tuple[ServiceResult, AnytimeEmitter]:
        """Translate ``sentence``, pushing improvements through ``emit``.

        Blocking — the HTTP server calls this in an executor thread.
        ``emit`` receives each update record on the translating thread
        and must be cheap and non-raising (the server's queue bridge is
        both).  Returns the final result and the emitter (whose
        ``updates`` count lands in the stream's summary record).
        """
        emitter = AnytimeEmitter(top_k)

        def on_update(tier: str, candidates: list[Candidate]) -> None:
            record = emitter.offer(tier, candidates)
            if record is not None:
                emit(record)

        result = self.service.translate(
            sentence, tracer=tracer, deadline=deadline, on_update=on_update
        )
        return result, emitter
