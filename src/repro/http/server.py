"""The asyncio HTTP front end over the gateway / cluster.

:class:`HttpServer` exposes the serving stack (docs/HTTP.md) on a TCP
port using nothing but stdlib ``asyncio`` streams:

* ``POST /translate`` — one translation; the JSON body carries the
  sentence, an optional per-request ``deadline_ms`` (mapped onto the
  runtime degradation ladder), and ``stream: true`` to switch to chunked
  NDJSON pushing the anytime ranking each time it improves;
* ``GET /metrics`` — Prometheus text exposition; a cluster backend's
  ``federated_render()`` merges every shard registry into one view,
  otherwise the shared :class:`~repro.obs.MetricsRegistry` is used;
* ``GET /slo`` — the backend's live SLO report (error budgets,
  multi-window burn-rate alerts, recent traffic) as JSON;
* ``GET /traces`` — finished span records as NDJSON;
  ``?sampled=1`` streams the tail sampler's retained request records;
* ``GET /stats`` — the backend's ``snapshot()`` as JSON;
* ``GET /healthz`` — liveness.

**Trace propagation.**  A well-formed incoming ``X-Repro-Trace-Id``
header is honoured: it becomes the request's trace id end to end
(gateway span, worker span, tail sample, histogram exemplar) and is
echoed on the response.  ``POST /translate`` mints a fresh id when the
client sent none, so every translation is traceable; the id also rides
in the JSON body (``trace_id``) and in a stream's ``final`` record.

**Backpressure is layered, never buffered.**  At the connection layer,
an accept beyond ``max_connections`` is answered ``503`` and closed
immediately.  At the request layer, the backend's bounded-queue
admission control decides: a shed (``shed_overload``) or open breaker
surfaces as ``503`` with ``Retry-After`` rather than queueing in the
front end.  A client that disconnects mid-request has its pending
gateway slot withdrawn via :meth:`PendingResult.cancel`, so abandoned
requests release queue capacity instead of occupying a worker.

The ``backend`` seam is anything with ``submit(sentence, ...) ->
PendingResult`` — a :class:`~repro.serve.TranslationGateway`, a
:class:`~repro.cluster.ShardedCluster`, or a test double.  Streaming is
served by an in-process :class:`~repro.http.stream.ServiceStreamer`
(see its module docstring for why the worker pool is bypassed).
"""

from __future__ import annotations

import asyncio
import inspect
import json
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs.clock import monotonic
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, new_trace_id
from ..serve.gateway import GatewayResult
from .protocol import (
    CHUNK_TERMINATOR,
    BufferedConnection,
    Limits,
    ProtocolError,
    Request,
    encode_chunk,
    read_request,
    render_response,
    start_response,
)
from .stream import ServiceStreamer, result_payload

__all__ = ["HttpConfig", "HttpServer", "TRACE_HEADER", "status_for"]

_log = get_logger("http.server")

# Error codes that mean "try again shortly" — the serving tier refused or
# lost the request, it was not wrong.  Mapped to 503 + Retry-After.
RETRYABLE_CODES = frozenset(
    {"shed_overload", "circuit_open", "gateway_closed", "cluster_closed",
     "shard_down"}
)
# Deterministic input rejections (mirrors repro.runtime.INPUT_ERROR_CODES).
INPUT_CODES = frozenset(
    {"empty_description", "description_too_long", "symbols_only"}
)

_JSON = "application/json"
_NDJSON = "application/x-ndjson"

# The trace-propagation header (docs/HTTP.md).  Incoming values are
# honoured only when they match this shape — anything else is replaced
# with a fresh id rather than echoed, so a hostile header can neither
# forge log lines nor smuggle bytes into the Prometheus exemplar export.
TRACE_HEADER = "X-Repro-Trace-Id"
_TRACE_ID_OK = re.compile(r"^[0-9a-zA-Z_-]{1,128}$")


def status_for(
    ok: bool, error_code: str | None, degraded: bool, anytime: bool
) -> int:
    """Map a translation outcome onto an HTTP status (docs/HTTP.md).

    ``200`` full-fidelity success; ``206`` partial — a success served
    degraded (cheaper ladder rung, or an anytime ranking under a tripped
    budget) and a deadline that exhausted with nothing; ``400`` the
    input can never translate; ``503`` + Retry-After the serving tier
    refused (shed, breaker, closed); ``502``/``504`` a worker died or
    timed out; ``500`` anything else.
    """
    if ok:
        return 206 if (degraded or anytime) else 200
    if error_code == "deadline_exhausted":
        return 206
    if error_code in RETRYABLE_CODES:
        return 503
    if error_code in INPUT_CODES:
        return 400
    if error_code == "worker_crashed":
        return 502
    if error_code == "worker_timeout":
        return 504
    return 500


@dataclass(frozen=True)
class HttpConfig:
    """Tunables for one :class:`HttpServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = kernel-assigned (tests); CLI passes a real port
    max_connections: int = 256  # concurrent; beyond this accepts get 503
    max_deadline: float = 30.0  # ceiling on client-requested deadlines
    # Streams must always be bounded: an abandoned stream's executor
    # thread runs to its deadline, so "no deadline" would leak threads.
    stream_default_deadline: float = 10.0
    request_wait: float = 120.0  # backstop on a stuck backend future
    top_k: int = 5
    max_top_k: int = 50
    retry_after: float = 1.0  # seconds, advertised on every 503
    limits: Limits = field(default_factory=Limits)


@dataclass
class _TranslateParams:
    sentence: str
    deadline: float | None  # None = backend default
    stream: bool
    top_k: int
    faults: str | None


class HttpServer:
    """Serve the translation stack over HTTP/1.1.

    ``metrics`` defaults to the backend's registry so ``/metrics`` shows
    one unified exposition; ``tracer`` likewise defaults to the
    backend's.  ``streamer`` defaults to an in-process streamer over the
    backend's default workbook (streaming requests 501 without one).
    Keyword ``overrides`` patch individual :class:`HttpConfig` fields.
    """

    def __init__(
        self,
        backend: Any,
        *,
        config: HttpConfig | None = None,
        streamer: ServiceStreamer | None = None,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        clock: Callable[[], float] = monotonic,
        **overrides: Any,
    ) -> None:
        base = config or HttpConfig()
        if overrides:
            base = dataclass_replace(base, **overrides)
        self.config = base
        self.backend = backend
        self.clock = clock
        self.metrics = (
            metrics
            if metrics is not None
            else getattr(backend, "metrics", None) or MetricsRegistry(clock)
        )
        self.tracer = (
            tracer
            if tracer is not None
            else getattr(backend, "tracer", None) or NULL_TRACER
        )
        if streamer is None:
            workbook = getattr(backend, "default_workbook", None)
            if workbook is not None:
                streamer = ServiceStreamer(workbook, clock=clock)
        self.streamer = streamer

        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections = 0
        self._stopped: asyncio.Event | None = None
        self.port: int | None = None  # actual bound port, set by start()

        m = self.metrics
        self._requests = m.counter(
            "http_requests_total", "HTTP requests by endpoint and status"
        )
        self._request_seconds = m.histogram(
            "http_request_seconds", "HTTP request handling time"
        )
        self._conn_gauge = m.gauge(
            "http_connections", "open HTTP connections"
        )
        self._conn_rejected = m.counter(
            "http_connections_rejected_total",
            "connections refused at the max_connections gate",
        )
        self._disconnects = m.counter(
            "http_disconnects_total",
            "clients that hung up before their response",
        )
        self._cancelled = m.counter(
            "http_cancelled_total",
            "backend requests withdrawn after a client disconnect",
        )
        self._stream_updates = m.counter(
            "http_stream_updates_total", "anytime update records streamed"
        )
        self._protocol_errors = m.counter(
            "http_protocol_errors_total", "malformed/abusive requests by code"
        )
        # Whether backend.submit accepts trace_id (gateway and cluster
        # do; older backends and plain test doubles may not).  Inspected
        # once so the hot path never pays signature reflection.
        self._backend_takes_trace_id = _accepts_trace_id(
            getattr(backend, "submit", None)
        )

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and begin accepting; ``self.port`` holds the bound port."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """``start()`` if needed, then block until :meth:`stop`."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stopped is not None:
            self._stopped.set()

    def request_stop(self) -> None:
        """Thread-safe stop signal (used by tests and signal handlers)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(self.stop())
                )
            except RuntimeError:  # loop torn down under us
                pass

    # -- connection loop ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._connections >= self.config.max_connections:
            # Connection-level backpressure: refuse outright, never queue.
            self._conn_rejected.inc()
            try:
                writer.write(
                    render_response(
                        503,
                        _error_body(
                            "too_many_connections",
                            "connection limit reached; retry shortly",
                        ),
                        keep_alive=False,
                        extra_headers=[
                            ("Retry-After", _retry_after(self.config))
                        ],
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            await _close_writer(writer)
            return

        self._connections += 1
        self._conn_gauge.set(self._connections)
        conn = BufferedConnection(reader)
        try:
            await self._request_loop(conn, writer)
        except (ConnectionError, OSError):
            pass  # peer vanished mid-write; nothing left to tell them
        except asyncio.CancelledError:
            # Loop teardown cancels handler tasks; returning (rather than
            # propagating) keeps asyncio's protocol callback from logging
            # a spurious "Exception in callback" for every open keep-alive
            # connection at shutdown.
            pass
        except Exception:  # noqa: BLE001 - one bad connection must not kill accept
            _log.exception("connection handler failed")
        finally:
            self._connections -= 1
            self._conn_gauge.set(self._connections)
            await _close_writer(writer)

    async def _request_loop(
        self, conn: BufferedConnection, writer: asyncio.StreamWriter
    ) -> None:
        limits = self.config.limits
        while True:
            try:
                request = await read_request(
                    conn, limits, idle_timeout=limits.keep_alive_timeout
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive expired; close quietly
            except ProtocolError as exc:
                self._protocol_errors.inc(code=exc.code)
                self._count(exc.status, "protocol")
                writer.write(
                    render_response(
                        exc.status,
                        _error_body(exc.code, str(exc)),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return  # parser state is unknowable; drop the connection
            if request is None:
                return  # clean EOF between requests
            with self.metrics.timer(
                "http_request_seconds", endpoint=request.path
            ):
                keep_going = await self._dispatch(request, conn, writer)
            if not keep_going or not request.keep_alive:
                return

    # -- routing --------------------------------------------------------------------

    async def _dispatch(
        self,
        request: Request,
        conn: BufferedConnection,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Handle one request; returns False to close the connection."""
        # Valid incoming X-Repro-Trace-Id is echoed on every endpoint;
        # /translate additionally mints one when the client sent none.
        trace_id = _incoming_trace_id(request)
        route = (request.method, request.path)
        if route == ("POST", "/translate"):
            return await self._translate(
                request, conn, writer, trace_id or new_trace_id()
            )
        if route == ("GET", "/healthz"):
            return await self._respond(
                writer, request, 200, _json_bytes({"status": "ok"}),
                trace_id=trace_id,
            )
        if route == ("GET", "/metrics"):
            # A cluster backend federates every shard registry into one
            # exposition; anything else exposes the shared registry.
            federated = getattr(self.backend, "federated_render", None)
            text = (
                federated() if federated is not None else self.metrics.render()
            ).encode("utf-8")
            return await self._respond(
                writer, request, 200, text,
                content_type="text/plain; version=0.0.4",
                trace_id=trace_id,
            )
        if route == ("GET", "/slo"):
            report = None
            slo = getattr(self.backend, "slo_report", None)
            if slo is not None:
                report = slo()
            if report is None:
                return await self._respond(
                    writer, request, 404,
                    _error_body(
                        "not_found",
                        "backend has no SLO engine (telemetry off?)",
                    ),
                    trace_id=trace_id,
                )
            return await self._respond(
                writer, request, 200, _json_bytes(report), trace_id=trace_id
            )
        if route == ("GET", "/stats"):
            snapshot = getattr(self.backend, "snapshot", None)
            if snapshot is None:
                return await self._respond(
                    writer, request, 404,
                    _error_body("not_found", "backend has no snapshot()"),
                    trace_id=trace_id,
                )
            return await self._respond(
                writer, request, 200, _json_bytes(snapshot()),
                trace_id=trace_id,
            )
        if route == ("GET", "/traces"):
            return await self._traces(request, writer, trace_id)
        known = {
            "/translate", "/healthz", "/metrics", "/slo", "/stats", "/traces",
        }
        if request.path in known:
            return await self._respond(
                writer, request, 405,
                _error_body(
                    "method_not_allowed",
                    f"{request.method} not supported on {request.path}",
                ),
                trace_id=trace_id,
            )
        return await self._respond(
            writer, request, 404,
            _error_body("not_found", f"no route for {request.path}"),
            trace_id=trace_id,
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        request: Request,
        status: int,
        body: bytes,
        *,
        content_type: str = _JSON,
        extra_headers: list[tuple[str, str]] | None = None,
        trace_id: str | None = None,
    ) -> bool:
        self._count(status, request.path)
        keep = request.keep_alive
        if trace_id is not None:
            extra_headers = list(extra_headers or [])
            extra_headers.append((TRACE_HEADER, trace_id))
        writer.write(
            render_response(
                status, body,
                content_type=content_type,
                extra_headers=extra_headers,
                keep_alive=keep,
            )
        )
        await writer.drain()
        return keep

    async def _traces(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        trace_id: str | None = None,
    ) -> bool:
        """Stream trace records as NDJSON (chunked).

        Default mode streams finished span records from
        :func:`repro.obs.spans_jsonl`, so a downloaded trace is
        byte-compatible with a ``--trace-out`` span log file.
        ``?sampled=1`` streams the tail sampler's retained request
        records instead (every error/shed/slow request plus a
        probabilistic slice of OK traffic) when the backend has one.
        """
        from ..obs.export import spans_jsonl

        if request.query.get("sampled") in ("1", "true"):
            sampled = getattr(self.backend, "sampled_traces", None)
            if sampled is None:
                return await self._respond(
                    writer, request, 404,
                    _error_body(
                        "not_found",
                        "backend has no tail sampler (telemetry off?)",
                    ),
                    trace_id=trace_id,
                )
            lines = list(sampled())  # \n-terminated JSONL already
        else:
            lines = list(spans_jsonl(self.tracer))
        self._count(200, request.path)
        extra = [(TRACE_HEADER, trace_id)] if trace_id is not None else None
        writer.write(start_response(200, extra_headers=extra))
        for line in lines:
            writer.write(encode_chunk(line.encode("utf-8")))
            await writer.drain()
        writer.write(CHUNK_TERMINATOR)
        await writer.drain()
        return False  # chunked responses advertise Connection: close

    # -- /translate -----------------------------------------------------------------

    def _parse_translate(self, request: Request) -> _TranslateParams:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise ProtocolError(
                400, "bad_request", "body must be a JSON object"
            )
        sentence = payload.get("sentence")
        if not isinstance(sentence, str):
            raise ProtocolError(
                400, "bad_request", '"sentence" (string) is required'
            )
        deadline: float | None = None
        raw_deadline = payload.get("deadline_ms")
        if raw_deadline is not None:
            if not isinstance(raw_deadline, (int, float)) or isinstance(
                raw_deadline, bool
            ) or raw_deadline <= 0:
                raise ProtocolError(
                    400, "bad_request",
                    '"deadline_ms" must be a positive number',
                )
            deadline = min(raw_deadline / 1000.0, self.config.max_deadline)
        stream = payload.get("stream", False)
        if not isinstance(stream, bool):
            raise ProtocolError(
                400, "bad_request", '"stream" must be a boolean'
            )
        top_k = payload.get("top_k", self.config.top_k)
        if not isinstance(top_k, int) or isinstance(top_k, bool) or not (
            1 <= top_k <= self.config.max_top_k
        ):
            raise ProtocolError(
                400, "bad_request",
                f'"top_k" must be an integer in [1, {self.config.max_top_k}]',
            )
        faults = payload.get("faults")
        if faults is not None and not isinstance(faults, str):
            raise ProtocolError(
                400, "bad_request", '"faults" must be a string plan'
            )
        return _TranslateParams(
            sentence=sentence,
            deadline=deadline,
            stream=stream,
            top_k=top_k,
            faults=faults,
        )

    async def _translate(
        self,
        request: Request,
        conn: BufferedConnection,
        writer: asyncio.StreamWriter,
        trace_id: str,
    ) -> bool:
        try:
            params = self._parse_translate(request)
        except ProtocolError as exc:
            self._protocol_errors.inc(code=exc.code)
            return await self._respond(
                writer, request, exc.status, _error_body(exc.code, str(exc)),
                trace_id=trace_id,
            )
        if params.stream:
            return await self._translate_stream(
                request, params, writer, trace_id
            )
        return await self._translate_unary(
            request, params, conn, writer, trace_id
        )

    async def _translate_unary(
        self,
        request: Request,
        params: _TranslateParams,
        conn: BufferedConnection,
        writer: asyncio.StreamWriter,
        trace_id: str,
    ) -> bool:
        loop = asyncio.get_running_loop()
        kwargs: dict[str, Any] = {}
        if params.deadline is not None:
            kwargs["deadline"] = params.deadline
        if params.faults is not None:
            kwargs["faults"] = params.faults
        if self._backend_takes_trace_id:
            kwargs["trace_id"] = trace_id
        try:
            pending = self.backend.submit(params.sentence, **kwargs)
        except Exception as exc:  # noqa: BLE001 - surface, don't crash the conn
            _log.exception("backend submit failed")
            return await self._respond(
                writer, request, 500,
                _error_body("internal_error", f"{type(exc).__name__}: {exc}"),
                trace_id=trace_id,
            )

        future: asyncio.Future = loop.create_future()
        pending.add_done_callback(
            lambda result: _resolve_threadsafe(loop, future, result)
        )
        # The disconnect watch: while the backend works, one read is kept
        # outstanding.  EOF → the client hung up, withdraw the request so
        # its bounded-queue slot frees; data → a pipelined request, push
        # it back for the next loop iteration.
        watcher = asyncio.ensure_future(conn.read_any())
        try:
            result = await self._await_result(pending, future, watcher, conn)
        finally:
            if not watcher.done():
                watcher.cancel()
        if result is None:  # client gone; nothing to write
            self._disconnects.inc(endpoint=request.path)
            return False
        return await self._write_result(
            writer, request, params, result, trace_id
        )

    async def _await_result(self, pending, future, watcher, conn):
        """Wait for the backend, watching for a client disconnect.

        Returns the backend result, or ``None`` if the client hung up.
        """
        deadline = self.clock() + self.config.request_wait
        while True:
            remaining = deadline - self.clock()
            if remaining <= 0:
                pending.cancel()
                return GatewayResult(
                    ok=False,
                    error_code="gateway_error",
                    error="backend future did not resolve within request_wait",
                )
            done, _ = await asyncio.wait(
                {future, watcher},
                timeout=remaining,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if future in done:
                if watcher.done() and not watcher.cancelled():
                    exc = watcher.exception()
                    if exc is None:
                        data = watcher.result()
                        if data:
                            conn.pushback(data)
                return future.result()
            if watcher in done:
                exc = watcher.exception()
                data = b"" if exc is not None else watcher.result()
                if data:
                    # Pipelined bytes, not a disconnect: bank them and
                    # keep waiting for the backend.
                    conn.pushback(data)
                    done2, _ = await asyncio.wait(
                        {future}, timeout=max(0.0, deadline - self.clock())
                    )
                    if future in done2:
                        return future.result()
                    continue
                # EOF (or a transport error): the client is gone.
                if pending.cancel():
                    self._cancelled.inc()
                return None

    async def _write_result(
        self,
        writer: asyncio.StreamWriter,
        request: Request,
        params: _TranslateParams,
        result: Any,
        trace_id: str,
    ) -> bool:
        status = status_for(
            result.ok, result.error_code, result.degraded, result.anytime
        )
        body = {
            "result": _result_of(result, params.top_k),
            "serving": _serving_of(result),
            "trace_id": trace_id,
        }
        extra = None
        if status == 503:
            extra = [("Retry-After", _retry_after(self.config))]
        return await self._respond(
            writer, request, status, _json_bytes(body), extra_headers=extra,
            trace_id=trace_id,
        )

    # -- streaming ------------------------------------------------------------------

    async def _translate_stream(
        self,
        request: Request,
        params: _TranslateParams,
        writer: asyncio.StreamWriter,
        trace_id: str,
    ) -> bool:
        if self.streamer is None:
            return await self._respond(
                writer, request, 501,
                _error_body(
                    "not_implemented",
                    "this server has no in-process streamer configured",
                ),
                trace_id=trace_id,
            )
        loop = asyncio.get_running_loop()
        updates: asyncio.Queue = asyncio.Queue()

        def emit(record: dict) -> None:
            # Called on the executor thread per improvement.
            try:
                loop.call_soon_threadsafe(updates.put_nowait, record)
            except RuntimeError:  # loop closed mid-stream
                pass

        deadline = (
            params.deadline
            if params.deadline is not None
            else self.config.stream_default_deadline
        )
        started = self.clock()
        work = _spawn_stream_work(
            loop,
            lambda: self.streamer.run(
                params.sentence,
                deadline=deadline,
                top_k=params.top_k,
                emit=emit,
            ),
        )
        # The status line goes out before the outcome is known — that is
        # the nature of streaming.  The real status rides in the final
        # record; the conformance suite asserts on it there.
        self._count(200, request.path)
        try:
            writer.write(
                start_response(
                    200, extra_headers=[(TRACE_HEADER, trace_id)]
                )
            )
            await writer.drain()
            await self._pump_stream(
                writer, request, params, work, updates, started, trace_id
            )
        except (ConnectionError, OSError):
            # Client hung up mid-stream.  The executor thread is bounded
            # by the stream deadline; let it finish unobserved.
            self._disconnects.inc(endpoint=request.path)
            work.add_done_callback(_swallow_result)
        return False  # streams always close

    async def _pump_stream(
        self, writer, request, params, work, updates, started, trace_id
    ) -> bool:
        while True:
            getter = asyncio.ensure_future(updates.get())
            done, _ = await asyncio.wait(
                {getter, work}, return_when=asyncio.FIRST_COMPLETED
            )
            if getter in done:
                await self._write_chunk(writer, getter.result(), request)
                continue
            getter.cancel()
            # Drain improvements that raced the finish.
            while True:
                try:
                    record = updates.get_nowait()
                except asyncio.QueueEmpty:
                    break
                await self._write_chunk(writer, record, request)
            break
        try:
            result, emitter = work.result()
        except Exception as exc:  # noqa: BLE001 - report in-band, then close
            _log.exception("streamer failed")
            final = {
                "event": "error",
                "error_code": "internal_error",
                "error": f"{type(exc).__name__}: {exc}",
                "trace_id": trace_id,
            }
            writer.write(_chunk_of(final) + CHUNK_TERMINATOR)
            await writer.drain()
            return True
        status = status_for(
            result.ok, result.error_code, result.degraded, result.anytime
        )
        final = {
            "event": "final",
            "status": status,
            "result": result_payload(
                result, self.streamer.workbook, params.top_k
            ),
            "serving": {
                "elapsed": result.elapsed,
                "budget_spent": result.budget_spent,
                "total_seconds": self.clock() - started,
                "streamed": True,
                "cached": result.cached,
            },
            "updates": emitter.updates,
            "trace_id": trace_id,
        }
        writer.write(_chunk_of(final) + CHUNK_TERMINATOR)
        await writer.drain()
        return True

    async def _write_chunk(self, writer, record: dict, request) -> None:
        self._stream_updates.inc(endpoint=request.path)
        writer.write(_chunk_of(record))
        await writer.drain()

    # -- small helpers --------------------------------------------------------------

    def _count(self, status: int, endpoint: str) -> None:
        self._requests.inc(endpoint=endpoint, status=status)


# -- module helpers ---------------------------------------------------------------


def dataclass_replace(config: HttpConfig, **overrides: Any) -> HttpConfig:
    from dataclasses import replace

    return replace(config, **overrides)


def _incoming_trace_id(request: Request) -> str | None:
    """The client's ``X-Repro-Trace-Id`` if present and well-formed."""
    value = request.headers.get(TRACE_HEADER.lower())
    if value is not None and _TRACE_ID_OK.match(value):
        return value
    return None


def _accepts_trace_id(fn: Any) -> bool:
    """Whether ``fn`` can be called with a ``trace_id=`` keyword."""
    if fn is None:
        return False
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins / C callables
        return False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if param.name == "trace_id" and param.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def _chunk_of(record: dict) -> bytes:
    return encode_chunk(_json_bytes(record) + b"\n")


def _error_body(code: str, message: str) -> bytes:
    return _json_bytes({"error_code": code, "error": message})


def _retry_after(config: HttpConfig) -> str:
    return str(max(1, round(config.retry_after)))


def _result_of(result: Any, top_k: int) -> dict:
    """The deterministic slice of a gateway/cluster result."""
    return {
        "ok": result.ok,
        "error_code": result.error_code,
        "error": result.error,
        "tier": result.tier,
        "degraded": result.degraded,
        "anytime": result.anytime,
        "n_candidates": result.n_candidates,
        "programs": [list(p) for p in result.programs[:top_k]],
        "top_formula": result.top_formula,
    }


def _serving_of(result: Any) -> dict:
    serving = {
        "elapsed": result.elapsed,
        "queue_seconds": result.queue_seconds,
        "total_seconds": result.total_seconds,
        "worker_id": result.worker_id,
        "fingerprint": result.fingerprint,
        "warm": result.warm,
        "cached": result.cached,
        "service_cached": result.service_cached,
    }
    for extra in ("shard_id", "attempts", "rerouted"):  # cluster results
        if hasattr(result, extra):
            serving[extra] = getattr(result, extra)
    return serving


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    except asyncio.CancelledError:
        # Best-effort close racing loop teardown: the transport is torn
        # down with the loop anyway, and propagating here would surface
        # as a spurious asyncio "Exception in callback" log.
        pass


def _spawn_stream_work(
    loop: asyncio.AbstractEventLoop, fn: Callable[[], Any]
) -> asyncio.Future:
    """Run ``fn`` on a dedicated thread; resolve an asyncio future with it.

    Deliberately NOT ``loop.run_in_executor``: ``concurrent.futures``
    guards every ``submit`` with a module-global lock whose
    ``os.register_at_fork`` handlers race the gateway's worker forks —
    under a kill storm the parent's release can fire unpaired and
    ``submit`` dies with ``RuntimeError: release unlocked lock`` before
    the stream head is written.  A plain thread has no fork hooks to
    corrupt, and streams are already bounded by ``max_connections``.
    """
    future: asyncio.Future = loop.create_future()

    def runner() -> None:
        try:
            result = fn()
        except BaseException as exc:  # noqa: BLE001 - reported in-band
            def fail(exc=exc) -> None:
                if not future.done():
                    future.set_exception(exc)
            try:
                loop.call_soon_threadsafe(fail)
            except RuntimeError:  # loop closed; nobody is listening
                pass
        else:
            _resolve_threadsafe(loop, future, result)

    threading.Thread(
        target=runner, name="http-streamer", daemon=True
    ).start()
    return future


def _resolve_threadsafe(
    loop: asyncio.AbstractEventLoop, future: asyncio.Future, result: Any
) -> None:
    """Bridge a PendingResult callback (any thread) onto the loop."""

    def apply() -> None:
        if not future.done():
            future.set_result(result)

    try:
        loop.call_soon_threadsafe(apply)
    except RuntimeError:  # loop already closed; the result is moot
        pass


def _swallow_result(task) -> None:
    try:
        task.exception()
    except (asyncio.CancelledError, Exception):  # noqa: BLE001
        pass
