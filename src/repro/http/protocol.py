"""HTTP/1.1 wire protocol: hardened parsing, rendering, chunked bodies.

This module is deliberately tiny and dependency-free (stdlib ``asyncio``
streams only).  It implements exactly the subset the translation front
end needs, with every limit explicit and tested:

* request line + headers + ``Content-Length`` bodies (no request-side
  chunked encoding — a client that sends ``Transfer-Encoding`` gets
  ``501``);
* byte budgets on every input dimension (request line, header block,
  header count, body) so a hostile peer cannot balloon memory;
* wall-clock budgets on header and body receipt so a slowloris writer
  (one byte per second, forever) is cut off with ``408`` instead of
  pinning a connection;
* response rendering, including ``Transfer-Encoding: chunked`` framing
  for the streaming NDJSON endpoint (docs/HTTP.md).

Every parse failure raises :class:`ProtocolError` carrying the HTTP
status and a machine-readable ``error_code`` — the server turns it into
a well-formed coded response, mirroring the ``ReproError`` convention
used everywhere else in the package.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "CHUNK_TERMINATOR",
    "Limits",
    "ProtocolError",
    "Request",
    "encode_chunk",
    "read_request",
    "render_response",
    "start_response",
    "BufferedConnection",
]

# HTTP reason phrases for every status the server emits.
REASONS = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    414: "URI Too Long",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

CHUNK_TERMINATOR = b"0\r\n\r\n"

_READ_SIZE = 65536


@dataclass(frozen=True)
class Limits:
    """Input budgets for one connection (every axis bounded)."""

    max_request_line: int = 8192
    max_header_bytes: int = 32768
    max_headers: int = 100
    max_body_bytes: int = 1 << 20  # 1 MiB
    header_timeout: float = 5.0  # request line + headers must land in this
    body_timeout: float = 10.0  # the slowloris guard for bodies
    keep_alive_timeout: float = 30.0  # idle wait for the next request


class ProtocolError(Exception):
    """A malformed or abusive request, mapped to one HTTP status."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class Request:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    version: str
    headers: dict[str, str]  # names lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


class BufferedConnection:
    """A pushback-capable buffered reader over an asyncio stream.

    The pushback seam is what lets the server watch for client
    disconnects *while* a request executes (read one chunk; EOF means
    the client hung up, data means a pipelined request — push it back)
    without losing bytes.
    """

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._buffer = b""
        self._eof = False

    def pushback(self, data: bytes) -> None:
        self._buffer = data + self._buffer

    async def read_any(self, timeout: float | None = None) -> bytes:
        """Buffered bytes if any, else one read (``b""`` = clean EOF).

        Raises :class:`asyncio.TimeoutError` if nothing arrives in
        ``timeout`` seconds.
        """
        if self._buffer:
            data, self._buffer = self._buffer, b""
            return data
        if self._eof:
            return b""
        data = await asyncio.wait_for(self._reader.read(_READ_SIZE), timeout)
        if not data:
            self._eof = True
        return data

    async def _fill(self, deadline: float, status: int, code: str) -> None:
        """Read more bytes into the buffer or raise a coded timeout/EOF."""
        if self._eof:
            raise ProtocolError(400, "bad_request", "connection truncated")
        loop = asyncio.get_running_loop()
        remaining = deadline - loop.time()
        if remaining <= 0:
            raise ProtocolError(status, code, "client sent data too slowly")
        try:
            data = await asyncio.wait_for(
                self._reader.read(_READ_SIZE), remaining
            )
        except asyncio.TimeoutError:
            raise ProtocolError(
                status, code, "client sent data too slowly"
            ) from None
        if not data:
            self._eof = True
            raise ProtocolError(400, "bad_request", "connection truncated")
        self._buffer += data

    async def read_line(
        self,
        limit: int,
        deadline: float,
        *,
        over_limit_status: int = 431,
        timeout_code: str = "header_timeout",
    ) -> bytes:
        """One CRLF-terminated line (terminator stripped, bare LF tolerated)."""
        while True:
            idx = self._buffer.find(b"\n")
            if idx >= 0:
                line, self._buffer = (
                    self._buffer[:idx], self._buffer[idx + 1:]
                )
                return line.rstrip(b"\r")
            if len(self._buffer) > limit:
                raise ProtocolError(
                    over_limit_status, "limit_exceeded",
                    f"line exceeds {limit} bytes",
                )
            await self._fill(deadline, 408, timeout_code)

    async def read_exactly(self, n: int, deadline: float) -> bytes:
        """Exactly ``n`` body bytes (coded 400 on truncation, 408 on stall)."""
        while len(self._buffer) < n:
            await self._fill(deadline, 408, "body_timeout")
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data


def _parse_request_line(line: bytes, limits: Limits) -> tuple[str, str, str]:
    if len(line) > limits.max_request_line:
        raise ProtocolError(414, "uri_too_long", "request line too long")
    try:
        text = line.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError(
            400, "bad_request", "request line is not ASCII"
        ) from None
    parts = text.split()
    if len(parts) != 3:
        raise ProtocolError(400, "bad_request", "malformed request line")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(
            400, "bad_request", f"unsupported protocol version {version!r}"
        )
    if not method.isalpha():
        raise ProtocolError(400, "bad_request", "malformed method")
    return method.upper(), target, version


def _parse_headers(lines: list[bytes]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for raw in lines:
        name, sep, value = raw.partition(b":")
        if not sep or not name or name != name.strip():
            raise ProtocolError(
                400, "bad_request", "malformed header line"
            )
        try:
            key = name.decode("ascii").strip().lower()
            headers[key] = value.decode("latin-1").strip()
        except UnicodeDecodeError:
            raise ProtocolError(
                400, "bad_request", "header name is not ASCII"
            ) from None
    return headers


async def read_request(
    conn: BufferedConnection,
    limits: Limits,
    *,
    idle_timeout: float | None = None,
) -> Request | None:
    """Parse one request off the connection.

    Returns ``None`` on a clean EOF before the first byte (the client is
    done with the keep-alive connection).  Raises :class:`ProtocolError`
    for anything malformed, oversized, or too slow, and
    :class:`asyncio.TimeoutError` when ``idle_timeout`` passes with no
    first byte.
    """
    first = await conn.read_any(timeout=idle_timeout)
    if first == b"":
        return None
    conn.pushback(first)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + limits.header_timeout

    line = await conn.read_line(
        limits.max_request_line, deadline, over_limit_status=414
    )
    method, target, version = _parse_request_line(line, limits)

    header_lines: list[bytes] = []
    total = 0
    while True:
        raw = await conn.read_line(limits.max_header_bytes, deadline)
        if raw == b"":
            break
        total += len(raw)
        if total > limits.max_header_bytes or len(header_lines) >= limits.max_headers:
            raise ProtocolError(
                431, "limit_exceeded", "header block too large"
            )
        header_lines.append(raw)
    headers = _parse_headers(header_lines)

    if "transfer-encoding" in headers:
        raise ProtocolError(
            501, "not_implemented", "chunked request bodies are not supported"
        )
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise ProtocolError(
                400, "bad_request", "malformed Content-Length"
            ) from None
        if length < 0:
            raise ProtocolError(400, "bad_request", "negative Content-Length")
        if length > limits.max_body_bytes:
            raise ProtocolError(
                413, "limit_exceeded",
                f"body exceeds {limits.max_body_bytes} bytes",
            )
        body_deadline = loop.time() + limits.body_timeout
        body = await conn.read_exactly(length, body_deadline)

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


def _head(
    status: int,
    headers: list[tuple[str, str]],
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: list[tuple[str, str]] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """A complete fixed-length response as bytes."""
    headers: list[tuple[str, str]] = [
        ("Content-Type", content_type),
        ("Content-Length", str(len(body))),
        ("Connection", "keep-alive" if keep_alive else "close"),
    ]
    headers.extend(extra_headers or [])
    return _head(status, headers) + body


def start_response(
    status: int,
    *,
    content_type: str = "application/x-ndjson",
    extra_headers: list[tuple[str, str]] | None = None,
) -> bytes:
    """The head of a chunked (streaming) response.

    The body follows as :func:`encode_chunk` frames and ends with
    :data:`CHUNK_TERMINATOR`.  Streaming responses always close the
    connection afterwards — the terminator doubles as the end-of-results
    marker the conformance suite asserts on.
    """
    headers: list[tuple[str, str]] = [
        ("Content-Type", content_type),
        ("Transfer-Encoding", "chunked"),
        ("Connection", "close"),
    ]
    headers.extend(extra_headers or [])
    return _head(status, headers)


def encode_chunk(data: bytes) -> bytes:
    """One chunked-transfer frame (empty data encodes nothing, not EOF)."""
    if not data:
        return b""
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"
