"""Annotation of user descriptions (paper §4).

"The annotated version of the description uses highlighting to show the
words that were identified as column names or values from the sheet, red
underlines to show misspelled words, and strike-through indicating words
that were ignored when producing the corresponding expression."

This module computes per-word annotations for a candidate and renders them
as plain text: ``[column]`` / ``{value}`` highlights, ``~struck~`` ignored
words, and ``word(?sp)`` marks a spell-corrected word.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..translate import Candidate
from ..translate.tokenizer import Token


class WordRole(enum.Enum):
    COLUMN = "column"
    VALUE = "value"
    LITERAL = "literal"
    USED = "used"
    IGNORED = "ignored"


@dataclass(frozen=True)
class WordAnnotation:
    """How one input word was treated by a candidate translation."""

    token: Token
    role: WordRole
    misspelled: bool

    def render(self) -> str:
        text = self.token.text
        if self.role is WordRole.COLUMN:
            text = f"[{text}]"
        elif self.role is WordRole.VALUE:
            text = f"{{{text}}}"
        elif self.role is WordRole.IGNORED:
            text = f"~{text}~"
        if self.misspelled:
            text = f"{text}(?sp)"
        return text


def annotate(candidate: Candidate, ctx) -> list[WordAnnotation]:
    """Annotations for every input word under ``candidate``."""
    derivation = candidate.derivation
    out: list[WordAnnotation] = []
    for token in candidate.tokens:
        position = token.index
        if position not in derivation.used:
            role = WordRole.IGNORED
        elif position in derivation.used_cols:
            role = WordRole.COLUMN
        elif token.literal is not None or token.is_cellref:
            role = WordRole.LITERAL
        elif ctx.is_value_word(token.text):
            role = WordRole.VALUE
        else:
            role = WordRole.USED
        out.append(
            WordAnnotation(token=token, role=role, misspelled=token.misspelled)
        )
    return out


def render_annotations(annotations: list[WordAnnotation]) -> str:
    return " ".join(a.render() for a in annotations)
