"""Reusable step scripts (paper §4).

"The sequence of programs produced can be automatically executed to update
the output values if the user changes any input in the spreadsheet.  This
sequence of programs can also be executed on any similar spreadsheets."

A :class:`Script` is the durable form of a session's accepted program
sequence: it serializes to the DSL's textual syntax (one program per line),
parses back, and applies to any workbook with a compatible schema — the
"similar spreadsheets" use case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import Evaluator, ProgramResult, ast
from ..dsl.parser import parse_expr, print_expr
from ..dsl.types import TypeChecker
from ..errors import ReproError
from ..sheet import Workbook


class ScriptError(ReproError):
    """A script could not be applied to the target workbook."""


@dataclass
class Script:
    """An ordered sequence of DSL programs."""

    programs: list[ast.Expr] = field(default_factory=list)
    description: str = ""

    @staticmethod
    def from_session(session) -> "Script":
        """Capture the accepted steps of a session."""
        texts = [step.description for step in session.steps if step.accepted]
        return Script(
            programs=list(session.program),
            description="; ".join(texts),
        )

    # -- persistence --------------------------------------------------------

    def dumps(self) -> str:
        """One program per line, in round-trippable DSL syntax."""
        lines = [f"# {self.description}"] if self.description else []
        lines += [print_expr(p) for p in self.programs]
        return "\n".join(lines) + "\n"

    @staticmethod
    def loads(text: str) -> "Script":
        description = ""
        programs = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                description = line[1:].strip()
                continue
            programs.append(parse_expr(line))
        return Script(programs=programs, description=description)

    # -- application ----------------------------------------------------------

    def check(self, workbook: Workbook) -> list[str]:
        """Schema-compatibility report: one message per program that fails
        the target workbook's Valid check (empty means applicable)."""
        checker = TypeChecker(workbook)
        problems = []
        for program in self.programs:
            if not checker.valid_program(program):
                problems.append(f"not valid on this workbook: {program}")
        return problems

    def apply(self, workbook: Workbook) -> list[ProgramResult]:
        """Execute the whole sequence against ``workbook``.

        Raises :class:`ScriptError` up front when any program does not
        type-check against the target's schema, so a half-applied script
        never mutates the sheet.
        """
        problems = self.check(workbook)
        if problems:
            raise ScriptError("; ".join(problems))
        evaluator = Evaluator(workbook)
        return [evaluator.run(program) for program in self.programs]

    def __len__(self) -> int:
        return len(self.programs)
