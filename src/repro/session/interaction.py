"""The interactive programming model (paper §4).

A :class:`NLyzeSession` wraps a workbook with the add-in's behaviour:

* ``ask`` translates a description into an annotated candidate list (up to
  three candidates above a confidence threshold, like the UI);
* ``accept`` executes the chosen candidate, mutating the workbook — the
  live-programming step model;
* ``run`` is ask-then-accept-top for scripted use;
* the session records every accepted step, and ``replay`` re-executes the
  program sequence (e.g. after editing input values), which is what makes
  a sequence of steps behave like a persistent script.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import ProgramResult, paraphrase
from ..dsl.evaluator import Evaluator
from ..dsl.excel import ExcelEmitter
from ..errors import TranslationError
from ..runtime.service import ServiceResult, TranslationService
from ..sheet import Workbook
from ..translate import Candidate, Translator, TranslatorConfig
from .annotate import WordAnnotation, annotate, render_annotations

MAX_SHOWN = 3
CONFIDENCE_THRESHOLD = 0.02


@dataclass
class CandidateView:
    """One row of the candidate list: annotations + formula + paraphrase."""

    candidate: Candidate
    annotations: list[WordAnnotation]
    excel: str
    english: str

    def render(self) -> str:
        annotated = render_annotations(self.annotations)
        return (
            f"{annotated}\n"
            f"    {self.excel}\n"
            f"    “{self.english}”  (score {self.candidate.score:.3f})"
        )


@dataclass
class Step:
    """One ask: the description and the candidates offered."""

    description: str
    views: list[CandidateView]
    accepted: Candidate | None = None
    result: ProgramResult | None = None
    diagnostics: ServiceResult | None = None

    def render(self) -> str:
        lines = [f"> {self.description}"]
        for i, view in enumerate(self.views, start=1):
            body = view.render().replace("\n", "\n   ")
            lines.append(f"{i}. {body}")
        if not self.views:
            lines.append("   (no interpretation found)")
        if self.diagnostics is not None and self.diagnostics.degraded:
            lines.append(
                f"   [degraded: tier {self.diagnostics.tier}, "
                f"{self.diagnostics.elapsed * 1000:.0f} ms]"
            )
        return "\n".join(lines)


@dataclass
class NLyzeSession:
    """Interactive NL programming over one workbook.

    Every ask is routed through the runtime
    :class:`~repro.runtime.service.TranslationService`, so sessions inherit
    the never-crash/degradation guarantees; ``deadline`` (seconds, optional)
    bounds each translation's wall clock.  Without a deadline the service
    is behaviour-identical to calling the translator directly.
    """

    workbook: Workbook
    config: TranslatorConfig | None = None
    deadline: float | None = None
    tracer: object | None = None  # a repro.obs Tracer, threaded into asks
    steps: list[Step] = field(default_factory=list)
    _translator: Translator | None = field(default=None, repr=False)
    _service: TranslationService | None = field(default=None, repr=False)

    _initial: Workbook | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._initial = self.workbook.clone()
        self._refresh_translator()

    def _refresh_translator(self) -> None:
        """Rebuild the service so the sheet context reflects the current
        workbook state (values, formats, and selections change per step —
        the temporal context of §4)."""
        self._service = TranslationService(
            self.workbook, config=self.config, deadline=self.deadline,
            tracer=self.tracer,
        )
        self._translator = self._service.translator_for(
            self._service.tiers[0]
        )

    # -- asking ----------------------------------------------------------------

    def ask(self, description: str) -> Step:
        """Translate a description into a candidate list (no execution)."""
        self._refresh_translator()
        outcome = self._service.translate(description)
        if not outcome.ok and not outcome.candidates:
            raise TranslationError(
                outcome.error or "translation failed",
                code=outcome.error_code,
            )
        candidates = outcome.candidates
        shown = [
            c for c in candidates[:MAX_SHOWN]
            if c.score >= CONFIDENCE_THRESHOLD
        ] or candidates[:1]
        emitter = ExcelEmitter(self.workbook)
        views = [
            CandidateView(
                candidate=c,
                annotations=annotate(c, self._translator.ctx),
                excel=emitter.emit(c.program),
                english=paraphrase(c.program),
            )
            for c in shown
        ]
        step = Step(
            description=description, views=views, diagnostics=outcome
        )
        self.steps.append(step)
        return step

    # -- executing ----------------------------------------------------------------

    def accept(self, step: Step, choice: int = 0) -> ProgramResult:
        """Execute the chosen candidate of a step (default: top ranked)."""
        if not step.views:
            raise TranslationError(
                f"no candidates for {step.description!r}"
            )
        candidate = step.views[choice].candidate
        result = Evaluator(self.workbook).run(candidate.program)
        step.accepted = candidate
        step.result = result
        self._advance_cursor(result)
        return result

    def _advance_cursor(self, result: ProgramResult) -> None:
        """After a value lands, move the cursor below it (the Excel enter
        gesture), so consecutive steps fill consecutive cells."""
        if result.kind in ("scalar", "vector") and result.addresses:
            last = max(result.addresses)
            from ..sheet import CellAddress

            self.workbook.set_cursor(CellAddress(last.col, last.row + 1))

    def run(self, description: str, choice: int = 0) -> ProgramResult:
        """Ask and accept in one call."""
        return self.accept(self.ask(description), choice)

    def undo(self) -> None:
        """Retract the most recent accepted step.

        The workbook rolls back to its pre-session snapshot and the
        remaining accepted steps replay in order, so every side effect of
        the undone step (placed values, formats, selections, cursor moves)
        disappears while later state stays consistent.
        """
        last = None
        for step in reversed(self.steps):
            if step.accepted is not None:
                last = step
                break
        if last is None:
            raise TranslationError("nothing to undo")
        last.accepted = None
        last.result = None
        self.workbook.restore(self._initial)
        evaluator = Evaluator(self.workbook)
        for step in self.steps:
            if step.accepted is not None:
                step.result = evaluator.run(step.accepted.program)
                self._advance_cursor(step.result)

    # -- the step program ------------------------------------------------------------

    @property
    def program(self) -> list:
        """The accepted DSL programs, in order."""
        return [s.accepted.program for s in self.steps if s.accepted]

    def replay(self) -> list[ProgramResult]:
        """Re-execute the accepted program sequence against the current
        workbook state ("the sequence of programs produced can be
        automatically executed to update the output values if the user
        changes any input")."""
        evaluator = Evaluator(self.workbook)
        return [evaluator.run(p) for p in self.program]

    def transcript(self) -> str:
        return "\n\n".join(step.render() for step in self.steps)
