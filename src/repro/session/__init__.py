"""The interactive programming model: annotated candidates, ambiguity
resolution, and programming in steps (paper §4)."""

from .annotate import WordAnnotation, WordRole, annotate, render_annotations
from .clarify import CLARIFY_MARGIN, Clarification, clarify, needs_clarification
from .script import Script, ScriptError
from .interaction import (
    CONFIDENCE_THRESHOLD,
    MAX_SHOWN,
    CandidateView,
    NLyzeSession,
    Step,
)

__all__ = [
    "CLARIFY_MARGIN",
    "CONFIDENCE_THRESHOLD",
    "Clarification",
    "clarify",
    "needs_clarification",
    "CandidateView",
    "MAX_SHOWN",
    "NLyzeSession",
    "Script",
    "ScriptError",
    "Step",
    "WordAnnotation",
    "WordRole",
    "annotate",
    "render_annotations",
]
