"""Clarification questions for near-tied candidates.

The paper resolves ambiguity by *showing* alternatives (annotated input +
paraphrases) and letting the user pick.  When the top two candidates score
within a small margin, a sharper UX is to ask about the *difference*: this
module diffs two candidate programs and phrases the distinction ("Should
'barista' filter the rows, or did you mean the whole column?"), using the
annotation machinery to find which words the candidates treat differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl import paraphrase
from ..translate import Candidate

# Candidates closer than this (relative) are considered genuinely ambiguous.
CLARIFY_MARGIN = 0.15


@dataclass(frozen=True)
class Clarification:
    """A question distinguishing the two leading candidates."""

    question: str
    first: Candidate
    second: Candidate

    def render(self) -> str:
        return (
            f"{self.question}\n"
            f"  1. {paraphrase(self.first.program)}\n"
            f"  2. {paraphrase(self.second.program)}"
        )


def _word_treatment_diff(a: Candidate, b: Candidate) -> list[str]:
    """Words the two candidates treat differently (used by one, ignored by
    the other)."""
    differing = []
    for token in a.tokens:
        in_a = token.index in a.derivation.used
        in_b = token.index in b.derivation.used
        if in_a != in_b:
            differing.append(token.text)
    return differing


def needs_clarification(candidates: list[Candidate]) -> bool:
    """True when the top two candidates are too close to auto-pick."""
    if len(candidates) < 2:
        return False
    first, second = candidates[0], candidates[1]
    if first.score <= 0:
        return False
    return (first.score - second.score) / first.score < CLARIFY_MARGIN


def clarify(candidates: list[Candidate]) -> Clarification | None:
    """A clarification question for a near-tied candidate list, or None
    when the ranking is decisive."""
    if not needs_clarification(candidates):
        return None
    first, second = candidates[0], candidates[1]
    differing = _word_treatment_diff(first, second)
    if differing:
        words = ", ".join(f"“{w}”" for w in differing[:3])
        question = (
            f"These readings disagree about {words} — which did you mean?"
        )
    else:
        question = (
            "Both readings use the same words but structure them "
            "differently — which did you mean?"
        )
    return Clarification(question=question, first=first, second=second)
