"""Intent clustering (paper §5).

"We performed clustering on the natural language inputs for a given intent
based on the orders of the column names/values and word similarity.  On
average we found 37.7 distinct clusters for each intent."

Descriptions of one task cluster together when (a) their content tokens —
column references, sheet values, literals — appear in the same order, and
(b) their word sets are similar (Jaccard overlap above a threshold).  The
statistic validates that the synthetic corpus recreates the variety the
paper's crowd-sourced corpus exhibited.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataset import Description, all_tasks, build_sheet
from ..translate.context import SheetContext
from ..translate.tokenizer import tokenize

_JACCARD_THRESHOLD = 0.65


@dataclass(frozen=True)
class ClusterReport:
    """Cluster counts per task plus the headline average."""

    per_task: dict[str, int]

    @property
    def average(self) -> float:
        if not self.per_task:
            return 0.0
        return sum(self.per_task.values()) / len(self.per_task)


def _content_signature(text: str, ctx: SheetContext) -> tuple[str, ...]:
    """The ordered sequence of content tokens in a description."""
    signature = []
    for token in tokenize(text):
        if token.literal is not None or token.is_cellref:
            signature.append("#lit")
        elif ctx.is_column_word(token.text):
            signature.append(f"c:{token.text}")
        elif ctx.is_value_word(token.text):
            signature.append(f"v:{token.text}")
    return tuple(signature)


def _word_set(text: str) -> frozenset[str]:
    return frozenset(text.split())


def cluster_descriptions(
    descriptions: list[Description], ctx: SheetContext
) -> int:
    """Greedy single-link clustering; returns the cluster count."""
    clusters: list[tuple[tuple[str, ...], list[frozenset[str]]]] = []
    for d in descriptions:
        signature = _content_signature(d.text, ctx)
        words = _word_set(d.text)
        placed = False
        for cluster_signature, members in clusters:
            if cluster_signature != signature:
                continue
            for member in members:
                union = len(words | member)
                if union and len(words & member) / union >= _JACCARD_THRESHOLD:
                    members.append(words)
                    placed = True
                    break
            if placed:
                break
        if not placed:
            clusters.append((signature, [words]))
    return len(clusters)


def run_clusters(corpus) -> ClusterReport:
    """The §5 clustering statistic over the full corpus."""
    contexts = {
        sheet_id: SheetContext(build_sheet(sheet_id))
        for sheet_id in {t.sheet_id for t in all_tasks()}
    }
    per_task: dict[str, int] = {}
    for task in all_tasks():
        descriptions = corpus.by_task(task.task_id, subset="all")
        per_task[task.task_id] = cluster_descriptions(
            descriptions, contexts[task.sheet_id]
        )
    return ClusterReport(per_task=per_task)
