"""Experiment harness: regenerates every table and figure of paper §5.

Each ``run_*`` function returns structured results and has a matching
``format_*`` printer producing rows in the paper's layout.  The CLI
(``python -m repro.evalkit <experiment>``) and the benchmark suite both sit
on top of these functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataset import (
    SHEET_ORDER,
    Corpus,
    all_tasks,
    build_sheet,
    generate_descriptions,
    user_study_descriptions,
)
from ..obs.clock import perf
from ..translate import TranslatorConfig, ablation_config
from .metrics import Scoreboard, TaskOracle, evaluate_batch

PAPER_TABLE2 = {
    # sheet -> (avg seconds, top1, top3, all) as reported in the paper
    "payroll": (0.010, 0.944, 0.967, 0.975),
    "inventory": (0.015, 0.955, 0.975, 0.991),
    "countries": (0.007, 0.945, 0.973, 0.979),
    "invoices": (0.019, 0.907, 0.967, 0.969),
    "all": (0.011, 0.941, 0.971, 0.982),
}
PAPER_TABLE3 = {
    "rules_only": (0.740, 0.836, 0.898),
    "synthesis_only": (0.674, 0.856, 0.982),
    "combined_prod_only": (0.751, 0.894, 0.982),
    "complete": (0.941, 0.971, 0.982),
}
PAPER_USER_STUDY = (0.903, 0.935, 0.951)
PAPER_CLUSTERS_PER_INTENT = 37.7


@dataclass
class Table2Result:
    per_sheet: dict[str, Scoreboard] = field(default_factory=dict)
    overall: Scoreboard = field(default_factory=Scoreboard)


def run_table2(
    corpus: Corpus | None = None,
    config: TranslatorConfig | None = None,
    limit_per_sheet: int | None = None,
) -> Table2Result:
    """Table 2 — overall performance per sheet on the 30% test split."""
    corpus = corpus or Corpus.default()
    oracle = TaskOracle()
    result = Table2Result()
    for sheet_id in SHEET_ORDER:
        descriptions = corpus.by_sheet(sheet_id, subset="test")
        if limit_per_sheet is not None:
            descriptions = descriptions[:limit_per_sheet]
        board = evaluate_batch(descriptions, config=config, oracle=oracle)
        result.per_sheet[sheet_id] = board
        result.overall.outcomes.extend(board.outcomes)
    return result


def format_table2(result: Table2Result) -> str:
    lines = [
        f"{'Sheet':<12} {'Avg. Time':>10} {'Top Rank':>9} {'Top 3':>7} {'All':>7}",
        "-" * 50,
    ]
    rows = list(result.per_sheet.items()) + [("all", result.overall)]
    for sheet_id, board in rows:
        lines.append(
            f"{sheet_id:<12} {board.avg_seconds:>9.3f}s "
            f"{board.top1_rate:>8.1%} {board.top3_rate:>6.1%} "
            f"{board.recall:>6.1%}"
        )
    overall = result.overall
    lines.append("")
    lines.append(f"F1 (precision=top-1, recall=all): {overall.f1:.1%}")
    return "\n".join(lines)


@dataclass
class Table3Result:
    per_mode: dict[str, Scoreboard] = field(default_factory=dict)


TABLE3_MODES = (
    "rules_only", "synthesis_only", "combined_prod_only", "complete"
)
_MODE_LABELS = {
    "rules_only": "Pattern Rule Only",
    "synthesis_only": "Synthesis Only",
    "combined_prod_only": "Pattern Rule & Synthesis",
    "complete": "Complete Algorithm",
    "no_cover": "Complete w/o CoverSc",
    "no_mix": "Complete w/o MixSc",
}


def run_table3(
    corpus: Corpus | None = None,
    sample: int | None = None,
    modes: tuple[str, ...] = TABLE3_MODES,
) -> Table3Result:
    """Table 3 — component ablation on the test split.

    ``sample`` caps the number of test descriptions (evenly spread across
    the split order) so the quadratic cost of four full runs stays
    tractable for quick checks; ``None`` means the whole split.
    """
    corpus = corpus or Corpus.default()
    descriptions = corpus.test
    if sample is not None and sample < len(descriptions):
        step = len(descriptions) / sample
        descriptions = [
            descriptions[int(k * step)] for k in range(sample)
        ]
    oracle = TaskOracle()
    result = Table3Result()
    for mode in modes:
        board = evaluate_batch(
            descriptions, config=ablation_config(mode), oracle=oracle
        )
        result.per_mode[mode] = board
    return result


def format_table3(result: Table3Result) -> str:
    lines = [
        f"{'Extensions':<26} {'Top Rank':>9} {'Top 3':>7} {'All':>7}",
        "-" * 52,
    ]
    for mode, board in result.per_mode.items():
        label = _MODE_LABELS.get(mode, mode)
        lines.append(
            f"{label:<26} {board.top1_rate:>8.1%} "
            f"{board.top3_rate:>6.1%} {board.recall:>6.1%}"
        )
    return "\n".join(lines)


def run_user_study(config: TranslatorConfig | None = None) -> Scoreboard:
    """§5.2 — the 62-description hard-mode end-user study analog."""
    return evaluate_batch(user_study_descriptions(), config=config)


def format_user_study(board: Scoreboard) -> str:
    return (
        f"end-user study ({board.n} descriptions): "
        f"top-1 {board.top1_rate:.1%}, top-3 {board.top3_rate:.1%}, "
        f"anywhere {board.recall:.1%}"
        f"  (paper: {PAPER_USER_STUDY[0]:.1%} / "
        f"{PAPER_USER_STUDY[1]:.1%} / {PAPER_USER_STUDY[2]:.1%})"
    )


def run_table1(variants_per_task: int = 10) -> dict[str, list[str]]:
    """Table 1 — qualitative variation inventory: sample phrasings of the
    Fig. 1 conditional-sum task plus one description of each other task."""
    tasks = all_tasks()
    flagship = next(t for t in tasks if t.task_id == "payroll-01")
    left = [
        d.text for d in generate_descriptions(flagship, variants_per_task)
    ]
    right = []
    for task in tasks:
        if task.task_id == flagship.task_id:
            continue
        right.append(generate_descriptions(task, 1)[0].text)
    return {"variations": left, "tasks": right[: variants_per_task + 1]}


def format_table1(data: dict[str, list[str]]) -> str:
    lines = ["Variations in language on the same task:"]
    lines += [f"  - {t}" for t in data["variations"]]
    lines.append("")
    lines.append("Variations in task and composition:")
    lines += [f"  - {t}" for t in data["tasks"]]
    return "\n".join(lines)


@dataclass
class ResilienceResult:
    """Deadline sweep over the test split: one scoreboard per deadline."""

    per_deadline: dict[float, Scoreboard] = field(default_factory=dict)


def run_resilience(
    corpus: Corpus | None = None,
    deadlines: tuple[float, ...] = (0.05, 0.5),
    sample: int | None = None,
    config: TranslatorConfig | None = None,
) -> ResilienceResult:
    """Accuracy / latency / degradation under wall-clock deadlines.

    Routes the test split through :class:`~repro.runtime.TranslationService`
    at each deadline (seconds).  Under a tight deadline requests are
    expected to degrade (anytime ranking or cheaper tiers) but never to
    crash; under a generous deadline the numbers must match Table 2.
    """
    corpus = corpus or Corpus.default()
    descriptions = corpus.test
    if sample is not None and sample < len(descriptions):
        step = len(descriptions) / sample
        descriptions = [descriptions[int(k * step)] for k in range(sample)]
    oracle = TaskOracle()
    result = ResilienceResult()
    for deadline in deadlines:
        result.per_deadline[deadline] = evaluate_batch(
            descriptions, config=config, oracle=oracle, deadline=deadline
        )
    return result


def format_resilience(result: ResilienceResult) -> str:
    lines = [
        f"{'Deadline':>9} {'Top Rank':>9} {'All':>7} {'p50':>8} {'p95':>8} "
        f"{'Degraded':>9} {'Errors':>7}",
        "-" * 62,
    ]
    for deadline, board in sorted(result.per_deadline.items()):
        lines.append(
            f"{deadline * 1000:>7.0f}ms {board.top1_rate:>8.1%} "
            f"{board.recall:>6.1%} {board.percentile_seconds(0.5):>7.3f}s "
            f"{board.percentile_seconds(0.95):>7.3f}s "
            f"{board.degraded_rate:>8.1%} {board.error_rate:>6.1%}"
        )
    return "\n".join(lines)


@dataclass
class GatewayReport:
    """One gateway load run: outcomes plus the closing stats snapshot."""

    n: int = 0
    workers: int = 0
    deadline: float | None = None
    wall_seconds: float = 0.0
    outcomes: list = field(default_factory=list)  # GatewayResult, in order
    stats: object | None = None  # closing GatewayStats

    @property
    def throughput(self) -> float:
        return self.n / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def ok_rate(self) -> float:
        return sum(r.ok for r in self.outcomes) / self.n if self.n else 0.0

    @property
    def shed_rate(self) -> float:
        return self.stats.shed_rate if self.stats is not None else 0.0

    def percentile_seconds(self, q: float) -> float:
        if not self.outcomes:
            return 0.0
        latencies = sorted(r.total_seconds for r in self.outcomes)
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    def code_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for outcome in self.outcomes:
            code = outcome.error_code or "ok"
            histogram[code] = histogram.get(code, 0) + 1
        return dict(sorted(histogram.items()))


def run_gateway(
    corpus: Corpus | None = None,
    sample: int | None = 60,
    workers: int = 2,
    deadline: float | None = 5.0,
    queue_limit: int = 256,
    repeat: int = 1,
) -> GatewayReport:
    """Serving throughput/latency through the crash-isolated gateway.

    Routes a test-split sample (all four sheets, so the gateway juggles
    four workbook fingerprints) through
    :class:`~repro.serve.TranslationGateway` and reports throughput, shed
    rate, and latency percentiles — the queue → breaker → pool path the
    chaos tests exercise, measured under healthy load.
    """
    from ..serve import TranslationGateway

    corpus = corpus or Corpus.default()
    descriptions = corpus.test
    if sample is not None and sample < len(descriptions):
        step = len(descriptions) / sample
        descriptions = [descriptions[int(k * step)] for k in range(sample)]
    descriptions = list(descriptions) * max(1, repeat)
    workbooks = {
        sheet_id: build_sheet(sheet_id)
        for sheet_id in {d.sheet_id for d in descriptions}
    }
    report = GatewayReport(
        n=len(descriptions), workers=workers, deadline=deadline
    )
    gateway = TranslationGateway(
        workers=workers, queue_limit=queue_limit, default_deadline=deadline
    )
    try:
        start = perf()
        pendings = [
            gateway.submit(d.text, workbooks[d.sheet_id])
            for d in descriptions
        ]
        report.outcomes = [p.result(timeout=120.0) for p in pendings]
        report.wall_seconds = perf() - start
        report.stats = gateway.stats()
    finally:
        gateway.close(drain=True)
    return report


def format_gateway(report: GatewayReport) -> str:
    stats = report.stats
    lines = [
        f"{report.n} requests / {report.workers} workers / "
        f"deadline {report.deadline * 1000:.0f}ms"
        if report.deadline is not None
        else f"{report.n} requests / {report.workers} workers / no deadline",
        f"throughput {report.throughput:>6.1f} req/s   "
        f"ok {report.ok_rate:.1%}   shed {report.shed_rate:.1%}",
        f"latency p50 {report.percentile_seconds(0.5) * 1000:>7.1f}ms   "
        f"p95 {report.percentile_seconds(0.95) * 1000:>7.1f}ms",
        f"outcomes: {report.code_histogram()}",
    ]
    if stats is not None:
        lines.append(
            f"workers: restarts {stats.restarts}, crashed {stats.crashed}, "
            f"timed out {stats.timed_out}, "
            f"workbooks {stats.registered_workbooks}"
        )
    return "\n".join(lines)


@dataclass
class ShardClusterReport:
    """One sharded-cluster storm: outcomes, failover counts, shard spread."""

    n: int = 0
    shards: int = 0
    workers_per_shard: int = 0
    killed_shard: int | None = None
    wall_seconds: float = 0.0
    outcomes: list = field(default_factory=list)  # ClusterResult, in order
    stats: object | None = None  # closing ClusterStats

    @property
    def throughput(self) -> float:
        return self.n / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def ok_rate(self) -> float:
        return sum(r.ok for r in self.outcomes) / self.n if self.n else 0.0

    def percentile_seconds(self, q: float) -> float:
        if not self.outcomes:
            return 0.0
        latencies = sorted(r.total_seconds for r in self.outcomes)
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    def code_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for outcome in self.outcomes:
            code = outcome.error_code or "ok"
            histogram[code] = histogram.get(code, 0) + 1
        return dict(sorted(histogram.items()))

    def shard_histogram(self) -> dict[object, int]:
        """Requests served per shard (``None`` = the shared cache tier)."""
        histogram: dict[object, int] = {}
        for outcome in self.outcomes:
            histogram[outcome.shard_id] = histogram.get(outcome.shard_id, 0) + 1
        return dict(
            sorted(histogram.items(), key=lambda kv: (kv[0] is None, kv[0]))
        )


def run_cluster(
    corpus: Corpus | None = None,
    sample: int | None = 60,
    shards: int = 3,
    workers_per_shard: int = 2,
    deadline: float | None = 60.0,
    queue_limit: int = 256,
    kill: bool = True,
) -> ShardClusterReport:
    """The sharded cluster under storm load, with an optional shard kill.

    Routes a test-split sample (all four sheets, so rendezvous routing
    spreads fingerprints across shards) through
    :class:`~repro.cluster.ShardedCluster`.  With ``kill=True`` the shard
    serving the most fingerprints is SIGKILLed once it is mid-storm — the
    report then shows the zero-loss failover bar the chaos suite enforces:
    every request resolves, the survivors absorb the victim's share.
    """
    import time as _time

    from ..cluster import ShardedCluster

    corpus = corpus or Corpus.default()
    descriptions = corpus.test
    if sample is not None and sample < len(descriptions):
        step = len(descriptions) / sample
        descriptions = [descriptions[int(k * step)] for k in range(sample)]
    descriptions = list(descriptions)
    workbooks = {
        sheet_id: build_sheet(sheet_id)
        for sheet_id in {d.sheet_id for d in descriptions}
    }
    report = ShardClusterReport(
        n=len(descriptions), shards=shards, workers_per_shard=workers_per_shard
    )
    cluster = ShardedCluster(
        shards=shards,
        workers_per_shard=workers_per_shard,
        queue_limit=queue_limit,
        default_deadline=deadline,
        retry_backoff=0.01,
        retry_backoff_cap=0.2,
    )
    try:
        victim = None
        if kill and shards > 1:
            routed: dict[int, int] = {}
            for workbook in workbooks.values():
                home = cluster.router.route(workbook.fingerprint())
                routed[home] = routed.get(home, 0) + 1
            victim = max(routed, key=routed.get)
        start = perf()
        pendings = [
            cluster.submit(d.text, workbooks[d.sheet_id])
            for d in descriptions
        ]
        if victim is not None:
            gateway = cluster.shards[victim].gateway
            deadline_at = _time.monotonic() + 30.0
            while _time.monotonic() < deadline_at:
                snap = gateway.stats()
                if snap.in_flight >= 1 and any(w.alive for w in snap.workers):
                    break
                _time.sleep(0.002)
            cluster.kill_shard(victim)
            report.killed_shard = victim
        report.outcomes = [p.result(timeout=300.0) for p in pendings]
        report.wall_seconds = perf() - start
        report.stats = cluster.stats()
    finally:
        cluster.close(drain=False)
    return report


def format_cluster(report: ShardClusterReport) -> str:
    stats = report.stats
    kill_note = (
        f"shard {report.killed_shard} SIGKILLed mid-storm"
        if report.killed_shard is not None
        else "no kill"
    )
    lines = [
        f"{report.n} requests / {report.shards} shards x "
        f"{report.workers_per_shard} workers / {kill_note}",
        f"throughput {report.throughput:>6.1f} req/s   "
        f"ok {report.ok_rate:.1%}",
        f"latency p50 {report.percentile_seconds(0.5) * 1000:>7.1f}ms   "
        f"p95 {report.percentile_seconds(0.95) * 1000:>7.1f}ms",
        f"outcomes: {report.code_histogram()}",
        f"served by: {report.shard_histogram()} (None = shared cache)",
    ]
    if stats is not None:
        lines.append(
            f"failover: retries {stats.retries}, failovers {stats.failovers}, "
            f"rerouted {stats.rerouted}, live shards "
            f"{stats.live_shards}/{len(stats.shards)}"
        )
        if stats.shared_cache is not None:
            lines.append(
                f"shared cache: hits {stats.cache_hits}, "
                f"puts {stats.shared_cache['puts']}, "
                f"codec errors {stats.shared_cache['codec_errors']}"
            )
    return "\n".join(lines)


@dataclass
class CacheReport:
    """A cold pass vs a warm (fully memoised) pass through one gateway."""

    n: int = 0
    workers: int = 0
    cold_seconds: float = 0.0
    warm_seconds: float = 0.0
    cache_hits: int = 0
    identical: bool = True
    stats: object | None = None  # closing GatewayStats

    @property
    def speedup(self) -> float:
        return (
            self.cold_seconds / self.warm_seconds if self.warm_seconds else 0.0
        )

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.n if self.n else 0.0


def run_cache(
    corpus: Corpus | None = None,
    sample: int | None = 40,
    workers: int = 2,
    queue_limit: int = 256,
) -> CacheReport:
    """The memoisation experiment: the same test-split sample twice
    through a cache-enabled gateway.  The first (cold) pass populates the
    cache through the workers; the second (warm) pass should resolve in
    the gateway front end.  The report records the wall-clock ratio, the
    warm hit rate, and whether both passes ranked byte-identical
    programs — the differential-correctness claim of :mod:`repro.cache`.
    """
    from ..serve import TranslationGateway

    corpus = corpus or Corpus.default()
    descriptions = corpus.test
    if sample is not None and sample < len(descriptions):
        step = len(descriptions) / sample
        descriptions = [descriptions[int(k * step)] for k in range(sample)]
    descriptions = list(descriptions)
    workbooks = {
        sheet_id: build_sheet(sheet_id)
        for sheet_id in {d.sheet_id for d in descriptions}
    }
    report = CacheReport(n=len(descriptions), workers=workers)
    gateway = TranslationGateway(
        workers=workers, queue_limit=queue_limit, cache=True
    )
    try:
        start = perf()
        cold = [
            p.result(timeout=120.0)
            for p in [
                gateway.submit(d.text, workbooks[d.sheet_id])
                for d in descriptions
            ]
        ]
        report.cold_seconds = perf() - start
        start = perf()
        warm = [
            p.result(timeout=120.0)
            for p in [
                gateway.submit(d.text, workbooks[d.sheet_id])
                for d in descriptions
            ]
        ]
        report.warm_seconds = perf() - start
        report.cache_hits = sum(r.cached for r in warm)
        report.identical = all(
            a.programs == b.programs and a.error_code == b.error_code
            for a, b in zip(cold, warm)
        )
        report.stats = gateway.stats()
    finally:
        gateway.close(drain=True)
    return report


def format_cache(report: CacheReport) -> str:
    lines = [
        f"{report.n} requests twice / {report.workers} workers / cache on",
        f"cold pass {report.cold_seconds * 1000:>8.1f}ms   "
        f"warm pass {report.warm_seconds * 1000:>8.1f}ms   "
        f"speedup {report.speedup:>5.1f}x",
        f"warm hit rate {report.hit_rate:.1%}   "
        f"identical rankings: {'yes' if report.identical else 'NO'}",
    ]
    if report.stats is not None and report.stats.cache is not None:
        c = report.stats.cache
        lines.append(
            f"cache: hits {c.hits}, misses {c.misses}, size {c.size}/"
            f"{c.capacity}, avg hit {c.avg_hit_seconds * 1e6:.0f}us, "
            f"avg miss {c.avg_miss_seconds * 1000:.1f}ms"
        )
    return "\n".join(lines)


_PROFILE_STAGES = {
    # span name -> reported stage (the pipeline breakdown of §3.1/§5)
    "translate.tokenize": "tokenize",
    "translate.seeds": "seeds",
    "translate.rules": "rules",
    "translate.synthesis": "synthesis",
    "translate.rank": "rank",
    "cache.probe": "cache",
    "cache.commit": "cache",
    "gateway.queue": "queue-wait",
    "worker.translate": "worker",
}


@dataclass
class ProfileReport:
    """Per-stage time breakdown of a traced pass over the test split."""

    n: int = 0
    workers: int = 0
    wall_seconds: float = 0.0
    spans: int = 0
    traces: int = 0
    # stage -> (calls, total seconds)
    stages: dict[str, tuple[int, float]] = field(default_factory=dict)
    ok: int = 0

    def stage_seconds(self, stage: str) -> float:
        return self.stages.get(stage, (0, 0.0))[1]


def run_profile(
    corpus: Corpus | None = None,
    sample: int | None = 40,
    workers: int = 2,
    deadline: float | None = None,
) -> ProfileReport:
    """The observability experiment: a traced gateway pass over the
    Table 2 split, aggregated into a per-stage time breakdown.

    Every request flows through the full serving stack (admission →
    queue → worker process → DP translation) with a live
    :class:`~repro.obs.Tracer`; the report folds the stitched span trees
    into seconds-per-stage (seeds / rules / synthesis / rank / cache /
    queue-wait / worker) — where the paper's interactivity budget
    actually goes.
    """
    from ..obs import Tracer
    from ..serve import TranslationGateway

    corpus = corpus or Corpus.default()
    descriptions = corpus.test
    if sample is not None and sample < len(descriptions):
        step = len(descriptions) / sample
        descriptions = [descriptions[int(k * step)] for k in range(sample)]
    descriptions = list(descriptions)
    workbooks = {
        sheet_id: build_sheet(sheet_id)
        for sheet_id in {d.sheet_id for d in descriptions}
    }
    tracer = Tracer()
    report = ProfileReport(n=len(descriptions), workers=workers)
    gateway = TranslationGateway(
        workers=workers, queue_limit=max(256, len(descriptions)),
        default_deadline=deadline, cache=True, tracer=tracer,
    )
    try:
        start = perf()
        pendings = [
            gateway.submit(d.text, workbooks[d.sheet_id])
            for d in descriptions
        ]
        results = [p.result(timeout=120.0) for p in pendings]
        report.wall_seconds = perf() - start
        report.ok = sum(r.ok for r in results)
    finally:
        gateway.close(drain=True)
    records = tracer.finished()
    report.spans = len(records)
    report.traces = len({r["trace_id"] for r in records})
    stages: dict[str, tuple[int, float]] = {}
    for record in records:
        stage = _PROFILE_STAGES.get(record["name"])
        if stage is None:
            continue
        calls, total = stages.get(stage, (0, 0.0))
        stages[stage] = (calls + 1, total + (record.get("duration") or 0.0))
    report.stages = stages
    return report


_PROFILE_ORDER = (
    "tokenize", "seeds", "rules", "synthesis", "rank",
    "cache", "queue-wait", "worker",
)


def format_profile(report: ProfileReport) -> str:
    worker_total = report.stage_seconds("worker")
    lines = [
        f"{report.n} requests / {report.workers} workers / "
        f"{report.traces} traces, {report.spans} spans, ok {report.ok}",
        f"{'stage':<12} {'calls':>6} {'total':>9} {'mean':>9} {'share':>7}",
    ]
    for stage in _PROFILE_ORDER:
        calls, total = report.stages.get(stage, (0, 0.0))
        mean_ms = (total / calls * 1000) if calls else 0.0
        # Translation stages as a share of total worker-side time; the
        # two non-worker rows (queue-wait and the front-end half of
        # cache) are reported against wall clock instead.
        base = worker_total if stage not in ("queue-wait",) else (
            report.wall_seconds
        )
        share = (total / base) if base else 0.0
        lines.append(
            f"{stage:<12} {calls:>6} {total:>8.3f}s {mean_ms:>7.2f}ms "
            f"{share:>6.1%}"
        )
    lines.append(
        f"{'wall':<12} {'':>6} {report.wall_seconds:>8.3f}s"
    )
    return "\n".join(lines)


def run_fig1() -> str:
    """Fig. 1 — the running example's annotated candidate list."""
    from ..session import NLyzeSession

    workbook = build_sheet("payroll")
    session = NLyzeSession(workbook)
    step = session.ask("sum the totalpay for the capitol hill baristas")
    lines = [workbook.default_table.render(max_rows=6), ""]
    lines.append(step.render())
    return "\n".join(lines)


@dataclass
class SloLaneReport:
    """One telemetry-plane pass: good traffic, an error burst, ``/slo``."""

    n: int = 0
    errors_injected: int = 0
    workers: int = 0
    wall_seconds: float = 0.0
    ok: int = 0
    report: dict = field(default_factory=dict)
    sampled: list = field(default_factory=list)
    error_ids: list = field(default_factory=list)

    @property
    def retained_error_ids(self) -> set:
        import json as _json

        return {
            record["trace_id"]
            for record in map(_json.loads, self.sampled)
            if record.get("verdict") == "error"
        }


def run_slo(
    corpus: Corpus | None = None,
    sample: int | None = 60,
    errors: int = 12,
    workers: int = 2,
) -> SloLaneReport:
    """The telemetry plane end to end: serve a test-split sample through
    a telemetry-on gateway, inject a fault burst under known trace ids,
    and read back the ``/slo`` document and the tail-sampled traces.
    """
    from ..serve import TranslationGateway

    corpus = corpus or Corpus.default()
    descriptions = corpus.test
    if sample is not None and sample < len(descriptions):
        step = len(descriptions) / sample
        descriptions = [descriptions[int(k * step)] for k in range(sample)]
    workbooks = {
        sheet_id: build_sheet(sheet_id)
        for sheet_id in {d.sheet_id for d in descriptions}
    }
    lane = SloLaneReport(
        n=len(descriptions), errors_injected=errors, workers=workers,
        error_ids=[f"slo-err-{i}" for i in range(errors)],
    )
    gateway = TranslationGateway(workers=workers, queue_limit=512)
    try:
        start = perf()
        pendings = [
            gateway.submit(
                d.text, workbooks[d.sheet_id], trace_id=f"slo-good-{i}"
            )
            for i, d in enumerate(descriptions)
        ]
        pendings += [
            gateway.submit(
                descriptions[0].text,
                workbooks[descriptions[0].sheet_id],
                faults="tokenize:raise:runtime",
                trace_id=trace_id,
            )
            for trace_id in lane.error_ids
        ]
        outcomes = [p.result(timeout=120.0) for p in pendings]
        lane.wall_seconds = perf() - start
        lane.ok = sum(1 for r in outcomes if r.ok)
        lane.report = gateway.slo_report() or {}
        lane.sampled = gateway.sampled_traces()
    finally:
        gateway.close(drain=True)
    return lane


def format_slo(lane: SloLaneReport) -> str:
    report = lane.report
    lines = [
        f"{lane.n} requests + {lane.errors_injected} injected errors / "
        f"{lane.workers} workers / wall {lane.wall_seconds:.2f}s / "
        f"ok {lane.ok}",
        f"{'slo':<16} {'objective':>9} {'good':>6} {'bad':>5} "
        f"{'burn(1h)':>9} {'budget':>7}  alerts",
    ]
    for slo in report.get("slos", []):
        windows = slo["windows"]
        fired = [a["rule"] for a in slo["alerts"] if a["fired"]]
        lines.append(
            f"{slo['name']:<16} {slo['objective']:>9.3f} "
            f"{int(windows['6h']['good']):>6} {int(windows['6h']['bad']):>5} "
            f"{windows['1h']['burn_rate']:>9.2f} "
            f"{slo['budget_remaining']:>6.1%}  "
            f"{','.join(fired) if fired else '-'}"
        )
    sampler = report.get("sampler", {})
    retained = lane.retained_error_ids
    lines.append(
        f"sampler: {sampler.get('entries', 0)} traces / "
        f"{sampler.get('bytes', 0)} of {sampler.get('max_bytes', 0)} bytes / "
        f"errors retained {len(retained & set(lane.error_ids))}"
        f"/{len(lane.error_ids)}"
    )
    lines.append(f"healthy: {report.get('healthy')}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Large-sheet stress (the columnar backend's home regime)
# ---------------------------------------------------------------------------


@dataclass
class LargeSheetReport:
    """Cold translation against a generated large workbook.

    "Cold" here is the serving-cold path: a fresh ``Translator`` per
    request (as a gateway worker builds one on first contact with a
    workbook fingerprint), result cache off.  The first request also pays
    the columnar index build — the index is memoised per sheet revision,
    which is exactly the production behaviour being measured.
    """

    rows: int = 0
    n: int = 0
    build_seconds: float = 0.0
    first_ms: float = 0.0          # first request: index build + translate
    median_ms: float = 0.0         # steady-state cold request
    mean_ms: float = 0.0
    answered: int = 0
    columnar: bool = True
    numpy: bool = False
    distinct_values: int = 0
    text_cells: int = 0


def run_largesheet(
    rows: int = 10_000,
    sample: int | None = None,
    seed: int | None = None,
) -> LargeSheetReport:
    """Translate a deterministic workload against a ``rows``-row stress
    workbook (:mod:`repro.dataset.stress`) in the *current* columnar mode
    (flip with ``REPRO_NO_COLUMNAR=1``; the perf bench runs the A/B)."""
    from statistics import mean, median

    from ..dataset.stress import (
        DEFAULT_STRESS_SEED,
        stress_sentences,
        stress_workbook,
    )
    from ..sheet import columnar
    from ..translate import Translator

    report = LargeSheetReport(rows=rows)
    report.columnar = columnar.columnar_enabled()
    report.numpy = columnar.HAVE_NUMPY

    start = perf()
    workbook = stress_workbook(rows, seed=DEFAULT_STRESS_SEED if seed is None else seed)
    report.build_seconds = perf() - start
    sentences = stress_sentences(workbook, count=sample or 12)
    report.n = len(sentences)

    # Warm process-level one-time costs (imports, rule parsing) on a tiny
    # sheet so they do not masquerade as per-request latency; the stress
    # workbook itself stays cold.
    Translator(build_sheet(SHEET_ORDER[0])).translate("sum the hours")

    timings: list[float] = []
    for text in sentences:
        start = perf()
        translator = Translator(workbook)
        candidates = translator.translate(text)
        timings.append((perf() - start) * 1000.0)
        if candidates:
            report.answered += 1
    report.first_ms = timings[0]
    report.median_ms = median(timings[1:] or timings)
    report.mean_ms = mean(timings)
    if report.columnar:
        index = workbook.columnar_index()
        report.distinct_values = index.n_values
        report.text_cells = index.n_cells()
    return report


def format_largesheet(report: LargeSheetReport) -> str:
    mode = "columnar" if report.columnar else "row-backed (REPRO_NO_COLUMNAR)"
    lines = [
        f"{report.rows} rows / {report.n} cold requests / {mode}"
        + (", numpy" if report.columnar and report.numpy else ""),
        f"workbook build {report.build_seconds:>6.2f}s   "
        f"first request {report.first_ms:>8.1f}ms (includes index build)",
        f"per request: median {report.median_ms:>7.1f}ms   "
        f"mean {report.mean_ms:>7.1f}ms   "
        f"answered {report.answered}/{report.n}",
    ]
    if report.columnar:
        lines.append(
            f"index: {report.distinct_values} distinct values over "
            f"{report.text_cells} text cells"
        )
    return "\n".join(lines)
