"""Accuracy metrics: top-k rates, recall, precision, F1 (paper §5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataset import Description, all_tasks, build_sheet
from ..dsl import ast
from ..obs.clock import Clock, perf
from ..runtime.service import ServiceResult, TranslationService
from ..sheet import Workbook
from ..translate import Translator, TranslatorConfig
from .canonical import canonicalize


@dataclass
class EvalOutcome:
    """Result of translating one description."""

    description: Description
    rank: int | None  # 0-based rank of the gold program, None = not found
    seconds: float
    degraded: bool = False  # the service fell back to a cheaper tier/anytime
    error_code: str | None = None  # structured failure instead of candidates

    @property
    def top1(self) -> bool:
        return self.rank == 0

    @property
    def top3(self) -> bool:
        return self.rank is not None and self.rank < 3

    @property
    def found(self) -> bool:
        return self.rank is not None


@dataclass
class Scoreboard:
    """Aggregated rates over a batch of outcomes."""

    outcomes: list[EvalOutcome] = field(default_factory=list)

    def add(self, outcome: EvalOutcome) -> None:
        self.outcomes.append(outcome)

    @property
    def n(self) -> int:
        return len(self.outcomes)

    def _rate(self, selector) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if selector(o)) / self.n

    @property
    def top1_rate(self) -> float:
        return self._rate(lambda o: o.top1)

    @property
    def top3_rate(self) -> float:
        return self._rate(lambda o: o.top3)

    @property
    def recall(self) -> float:
        """The paper's "All" column: gold anywhere in the result list."""
        return self._rate(lambda o: o.found)

    @property
    def avg_seconds(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.seconds for o in self.outcomes) / self.n

    def percentile_seconds(self, q: float) -> float:
        """Latency percentile (``q`` in [0, 1], nearest-rank)."""
        if not self.outcomes:
            return 0.0
        ordered = sorted(o.seconds for o in self.outcomes)
        k = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[k]

    @property
    def degraded_rate(self) -> float:
        """Fraction of requests served by a fallback tier / anytime path."""
        return self._rate(lambda o: o.degraded)

    @property
    def error_rate(self) -> float:
        """Fraction of requests that ended in a structured error."""
        return self._rate(lambda o: o.error_code is not None)

    @property
    def f1(self) -> float:
        """F1 with precision == top-1 rate and recall == the All column,
        the user-facing combination the paper reports (97.6%)."""
        p, r = self.top1_rate, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


class TaskOracle:
    """Canonical gold programs per task over fresh per-sheet workbooks."""

    def __init__(self) -> None:
        self.workbooks: dict[str, Workbook] = {}
        self._gold: dict[str, ast.Expr] = {}
        for task in all_tasks():
            wb = self.workbooks.setdefault(task.sheet_id, build_sheet(task.sheet_id))
            self._gold[task.task_id] = canonicalize(task.gold(wb), wb)

    def workbook(self, sheet_id: str) -> Workbook:
        return self.workbooks[sheet_id]

    def gold(self, task_id: str) -> ast.Expr:
        return self._gold[task_id]


def evaluate_description(
    translator: Translator | TranslationService,
    oracle: TaskOracle,
    description: Description,
    clock: Clock = perf,
) -> EvalOutcome:
    """Translate one description and locate the gold program in the ranked
    candidate list.  Accepts a bare :class:`Translator` or a resilient
    :class:`TranslationService` (whose degradation diagnostics are folded
    into the outcome).  ``clock`` is the injectable timing source
    (:mod:`repro.obs.clock`)."""
    workbook = oracle.workbook(description.sheet_id)
    gold = oracle.gold(description.task_id)
    degraded = False
    error_code = None
    start = clock()
    produced = translator.translate(description.text)
    elapsed = clock() - start
    if isinstance(produced, ServiceResult):
        candidates = produced.candidates
        degraded = produced.degraded
        error_code = produced.error_code
    else:
        candidates = produced
    rank = None
    for k, candidate in enumerate(candidates):
        if canonicalize(candidate.program, workbook) == gold:
            rank = k
            break
    return EvalOutcome(
        description=description,
        rank=rank,
        seconds=elapsed,
        degraded=degraded,
        error_code=error_code,
    )


def evaluate_batch(
    descriptions: list[Description],
    config: TranslatorConfig | None = None,
    oracle: TaskOracle | None = None,
    translators: dict[str, Translator | TranslationService] | None = None,
    deadline: float | None = None,
) -> Scoreboard:
    """Evaluate a batch, reusing one translation engine per sheet.

    Engines are :class:`TranslationService` instances (so every experiment
    inherits the runtime guarantees); with ``deadline=None`` the service is
    behaviour-identical to the bare translator.  Pre-built engines (either
    kind) can be passed via ``translators``.
    """
    oracle = oracle or TaskOracle()
    if translators is None:
        translators = {}
    board = Scoreboard()
    for description in descriptions:
        translator = translators.get(description.sheet_id)
        if translator is None:
            translator = TranslationService(
                oracle.workbook(description.sheet_id),
                config=config,
                deadline=deadline,
            )
            translators[description.sheet_id] = translator
        board.add(evaluate_description(translator, oracle, description))
    return board
