"""CLI for the experiment harness.

Usage::

    python -m repro.evalkit table2 [--sample N]
    python -m repro.evalkit table3 [--sample N]
    python -m repro.evalkit table1
    python -m repro.evalkit fig1
    python -m repro.evalkit userstudy
    python -m repro.evalkit clusters
    python -m repro.evalkit cluster [--sample N]
    python -m repro.evalkit profile [--sample N]
    python -m repro.evalkit slo [--sample N]
    python -m repro.evalkit largesheet [--rows R] [--sample N]
    python -m repro.evalkit all [--sample N]
"""

from __future__ import annotations

import argparse

from ..dataset import Corpus
from . import harness
from .clusters import run_clusters


def _table2(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    limit = args.sample // 4 if args.sample else None
    result = harness.run_table2(corpus, limit_per_sheet=limit)
    print("Table 2 — overall performance (measured)")
    print(harness.format_table2(result))
    print()
    print("Paper reference:")
    for sheet, (t, a, b, c) in harness.PAPER_TABLE2.items():
        print(f"  {sheet:<12} {t:>9.3f}s {a:>8.1%} {b:>6.1%} {c:>6.1%}")


def _table3(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    result = harness.run_table3(corpus, sample=args.sample)
    print("Table 3 — algorithm components (measured)")
    print(harness.format_table3(result))
    print()
    print("Paper reference:")
    for mode, (a, b, c) in harness.PAPER_TABLE3.items():
        print(f"  {mode:<26} {a:>8.1%} {b:>6.1%} {c:>6.1%}")


def _table1(args: argparse.Namespace) -> None:
    print(harness.format_table1(harness.run_table1()))


def _fig1(args: argparse.Namespace) -> None:
    print(harness.run_fig1())


def _userstudy(args: argparse.Namespace) -> None:
    print(harness.format_user_study(harness.run_user_study()))


def _resilience(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    result = harness.run_resilience(corpus, sample=args.sample)
    print("Resilience — service accuracy/latency under deadlines (measured)")
    print(harness.format_resilience(result))


def _gateway(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    result = harness.run_gateway(corpus, sample=args.sample or 60)
    print("Gateway — serving throughput/latency via the worker pool (measured)")
    print(harness.format_gateway(result))


def _cluster(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    result = harness.run_cluster(corpus, sample=args.sample or 60)
    print(
        "Cluster — sharded serving with a mid-storm shard kill (measured)"
    )
    print(harness.format_cluster(result))


def _cache(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    result = harness.run_cache(corpus, sample=args.sample or 40)
    print("Cache — cold vs memoised pass through the gateway (measured)")
    print(harness.format_cache(result))


def _profile(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    result = harness.run_profile(corpus, sample=args.sample or 40)
    print("Profile — per-stage time breakdown over the test split (traced)")
    print(harness.format_profile(result))


def _largesheet(args: argparse.Namespace) -> None:
    result = harness.run_largesheet(
        rows=args.rows, sample=args.sample
    )
    print(
        "Large sheet — cold translation against a generated stress "
        "workbook (measured)"
    )
    print(harness.format_largesheet(result))


def _slo(args: argparse.Namespace) -> None:
    corpus = Corpus.default()
    result = harness.run_slo(corpus, sample=args.sample or 60)
    print("SLO — telemetry plane over live traffic + error burst (measured)")
    print(harness.format_slo(result))


def _clusters(args: argparse.Namespace) -> None:
    report = run_clusters(Corpus.default())
    print(
        f"distinct clusters per intent: {report.average:.1f} average "
        f"(paper: {harness.PAPER_CLUSTERS_PER_INTENT})"
    )
    for task_id, count in sorted(report.per_task.items()):
        print(f"  {task_id}: {count}")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.evalkit")
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "fig1", "userstudy",
                 "clusters", "resilience", "gateway", "cluster", "cache",
                 "profile", "slo", "largesheet", "all"],
    )
    parser.add_argument(
        "--sample", type=int, default=None,
        help="cap the number of evaluated descriptions (table2/table3)",
    )
    parser.add_argument(
        "--rows", type=int, default=10_000,
        help="stress workbook size for the largesheet experiment",
    )
    args = parser.parse_args(argv)
    runners = {
        "table1": _table1,
        "table2": _table2,
        "table3": _table3,
        "fig1": _fig1,
        "userstudy": _userstudy,
        "clusters": _clusters,
        "resilience": _resilience,
        "gateway": _gateway,
        "cluster": _cluster,
        "cache": _cache,
        "profile": _profile,
        "slo": _slo,
        "largesheet": _largesheet,
    }
    if args.experiment == "all":
        for name in ["table1", "fig1", "table2", "table3", "userstudy",
                     "clusters"]:
            print(f"\n=== {name} ===")
            runners[name](args)
    else:
        runners[args.experiment](args)


if __name__ == "__main__":
    main()
