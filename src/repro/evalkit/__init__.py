"""Evaluation kit: canonical program equivalence, accuracy metrics, and the
experiment harness regenerating every table and figure of paper §5."""

from .canonical import canonicalize, equivalent
from .clusters import ClusterReport, cluster_descriptions, run_clusters
from .harness import (
    PAPER_CLUSTERS_PER_INTENT,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_USER_STUDY,
    ResilienceResult,
    Table2Result,
    Table3Result,
    format_resilience,
    format_table1,
    format_table2,
    format_table3,
    format_user_study,
    run_fig1,
    run_resilience,
    run_table1,
    run_table2,
    run_table3,
    run_user_study,
)
from .metrics import (
    EvalOutcome,
    Scoreboard,
    TaskOracle,
    evaluate_batch,
    evaluate_description,
)

__all__ = [
    "ClusterReport",
    "EvalOutcome",
    "PAPER_CLUSTERS_PER_INTENT",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_USER_STUDY",
    "ResilienceResult",
    "Scoreboard",
    "Table2Result",
    "Table3Result",
    "TaskOracle",
    "canonicalize",
    "cluster_descriptions",
    "equivalent",
    "evaluate_batch",
    "evaluate_description",
    "format_resilience",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_user_study",
    "run_clusters",
    "run_fig1",
    "run_resilience",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_user_study",
]
