"""Canonical forms for program equivalence.

"The intended interpretation" in the paper's metrics means semantic, not
syntactic, identity: ``And(a, b)`` equals ``And(b, a)``, ``Lt(C, v)``
equals ``Gt(v, C)``, and a column reference may or may not carry an explicit
table qualifier depending on how it was produced.  This module rewrites
programs into a canonical form so equivalence is a structural comparison:

* column references are fully resolved to their in-scope table,
* comparisons put the column (or the lexically smaller operand) on the left,
* ``And``/``Or`` chains are flattened and sorted,
* commutative arithmetic (``Add``/``Mult``) sorts its operands.
"""

from __future__ import annotations

from ..dsl import ast
from ..sheet import Workbook


def canonicalize(expr: ast.Expr, workbook: Workbook) -> ast.Expr:
    """The canonical form of a complete program over ``workbook``."""
    default = workbook.default_table.name.strip().lower()
    return _rewrite(expr, workbook, default)


def equivalent(a: ast.Expr, b: ast.Expr, workbook: Workbook) -> bool:
    """Semantic equivalence of two complete programs."""
    return canonicalize(a, workbook) == canonicalize(b, workbook)


_FLIP = {ast.RelOp.LT: ast.RelOp.GT, ast.RelOp.GT: ast.RelOp.LT,
         ast.RelOp.EQ: ast.RelOp.EQ}


def _rewrite(e: ast.Expr, wb: Workbook, scope: str) -> ast.Expr:
    if isinstance(e, ast.ColumnRef):
        return _resolve_column(e, wb, scope)
    if isinstance(e, ast.Compare):
        return _canonical_compare(e, wb, scope)
    if isinstance(e, (ast.And, ast.Or)):
        return _canonical_chain(e, wb, scope)
    if isinstance(e, ast.BinOp):
        left = _rewrite(e.left, wb, scope)
        right = _rewrite(e.right, wb, scope)
        if e.op in (ast.BinaryOp.ADD, ast.BinaryOp.MULT) and str(left) > str(right):
            left, right = right, left
        return ast.BinOp(e.op, left, right)
    if isinstance(e, ast.Reduce):
        inner = _source_scope(e.source, wb, scope)
        return ast.Reduce(
            e.op,
            _rewrite(e.column, wb, inner),
            _rewrite(e.source, wb, scope),
            _rewrite(e.condition, wb, inner),
        )
    if isinstance(e, ast.Count):
        inner = _source_scope(e.source, wb, scope)
        return ast.Count(
            _rewrite(e.source, wb, scope), _rewrite(e.condition, wb, inner)
        )
    if isinstance(e, ast.Lookup):
        inner = _source_scope(e.source, wb, scope)
        return ast.Lookup(
            _rewrite(e.needle, wb, scope),
            _rewrite(e.source, wb, scope),
            _rewrite(e.key, wb, inner),
            _rewrite(e.out, wb, inner),
        )
    if isinstance(e, ast.SelectRows):
        inner = _source_scope(e.source, wb, scope)
        return ast.SelectRows(
            _rewrite(e.source, wb, scope), _rewrite(e.condition, wb, inner)
        )
    if isinstance(e, ast.SelectCells):
        inner = _source_scope(e.source, wb, scope)
        return ast.SelectCells(
            tuple(sorted(
                (_rewrite(c, wb, inner) for c in e.columns), key=str
            )),
            _rewrite(e.source, wb, scope),
            _rewrite(e.condition, wb, inner),
        )
    if isinstance(e, ast.GetTable):
        name = (e.table or "").strip().lower()
        default = wb.default_table.name.strip().lower()
        # normalize: explicit default-table reference == implicit reference
        return ast.GetTable(None if not name or name == default else name)
    if isinstance(e, ast.GetFormat):
        name = (e.table or "").strip().lower()
        default = wb.default_table.name.strip().lower()
        return ast.GetFormat(
            ast.FormatSpec(tuple(sorted(e.spec.fns, key=repr))),
            None if not name or name == default else name,
        )
    if isinstance(e, ast.FormatSpec):
        return ast.FormatSpec(tuple(sorted(e.fns, key=repr)))
    children = e.children()
    if not children:
        return e
    return e.replace_children(
        tuple(_rewrite(c, wb, scope) for c in children)
    )


def _resolve_column(c: ast.ColumnRef, wb: Workbook, scope: str) -> ast.ColumnRef:
    table_key = c.table.strip().lower() if c.table else scope
    try:
        table = wb.table(table_key)
        name = table.column(c.name).name
    except Exception:
        # Unresolvable references keep their spelling (the comparison will
        # simply fail, which is the right outcome for a wrong program).
        return ast.ColumnRef(c.name.strip().lower(), table_key)
    return ast.ColumnRef(name, table.name.strip().lower())


def _source_scope(source: ast.Expr, wb: Workbook, scope: str) -> str:
    if isinstance(source, (ast.GetTable, ast.GetFormat)) and source.table:
        return source.table.strip().lower()
    return wb.default_table.name.strip().lower()


def _canonical_compare(e: ast.Compare, wb: Workbook, scope: str) -> ast.Expr:
    left = _rewrite(e.left, wb, scope)
    right = _rewrite(e.right, wb, scope)
    op = e.op
    left_col = isinstance(left, ast.ColumnRef)
    right_col = isinstance(right, ast.ColumnRef)
    if (right_col and not left_col) or (
        left_col == right_col and str(left) > str(right)
    ):
        left, right, op = right, left, _FLIP[op]
    return ast.Compare(op, left, right)


def _canonical_chain(e: ast.Expr, wb: Workbook, scope: str) -> ast.Expr:
    kind = type(e)
    operands: list[ast.Expr] = []

    def flatten(node: ast.Expr) -> None:
        if isinstance(node, kind):
            flatten(node.left)
            flatten(node.right)
        else:
            operands.append(_rewrite(node, wb, scope))

    flatten(e)
    operands.sort(key=str)
    combined = operands[0]
    for operand in operands[1:]:
        combined = kind(combined, operand)
    return combined
