"""Rule learning from (description, program) pairs (paper §3.3.1)."""

from .clustering import TemplateCluster, cluster_templates, generalize
from .extraction import (
    CandidateTemplate,
    TrainingExample,
    extract_template,
    find_unifying_subexpression,
    unify,
)
from .pipeline import LearningTarget, default_targets, extract_all, learn_rules
from .selection import RuleStats, finalize, prune, score_rules

__all__ = [
    "CandidateTemplate",
    "LearningTarget",
    "RuleStats",
    "TemplateCluster",
    "TrainingExample",
    "cluster_templates",
    "default_targets",
    "extract_all",
    "extract_template",
    "finalize",
    "find_unifying_subexpression",
    "generalize",
    "learn_rules",
    "prune",
    "score_rules",
    "unify",
]
