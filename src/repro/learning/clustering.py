"""Clustering and generalization of candidate templates (paper §3.3.1).

Extracted templates cluster by their placeholder signature (the order of
slots and the anchor position).  Each cluster generalizes into one rule
template: anchor words across members become a MustPat alternation, and the
filler words observed between consecutive slots become OptPat option sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..translate.patterns import (
    ColumnPat,
    LiteralPat,
    MustPat,
    OptPat,
    Pattern,
    SpanPat,
    ValuePat,
)
from .extraction import CandidateTemplate


@dataclass
class TemplateCluster:
    """Templates sharing a placeholder signature."""

    signature: tuple[str, ...]
    target_name: str
    members: list[CandidateTemplate] = field(default_factory=list)

    @property
    def support(self) -> int:
        return len(self.members)


def cluster_templates(
    templates: list[CandidateTemplate],
) -> list[TemplateCluster]:
    clusters: dict[tuple, TemplateCluster] = {}
    for template in templates:
        key = (template.target_name, template.signature())
        cluster = clusters.get(key)
        if cluster is None:
            cluster = TemplateCluster(
                signature=template.signature(),
                target_name=template.target_name,
            )
            clusters[key] = cluster
        cluster.members.append(template)
    return list(clusters.values())


def _slot_pattern(marker: str) -> Pattern:
    kind, digits = marker[1:2], marker[2:]
    if marker[1].isdigit():
        return SpanPat(int(marker[1:]))
    ident = int(digits)
    return {"C": ColumnPat, "V": ValuePat, "L": LiteralPat}[kind](ident)


def generalize(cluster: TemplateCluster, min_support: int = 1) -> tuple[Pattern, ...] | None:
    """One generalized rule template from a cluster, or None when support
    is below ``min_support``.

    Walks the shared signature; the words each member exhibits in the same
    inter-slot gap become the gap's OptPat options; anchor words across
    members become the MustPat alternation.
    """
    if cluster.support < min_support:
        return None
    anchor_options: set[tuple[str, ...]] = set()
    # gap index -> set of filler words; gap g precedes signature element g
    gaps: dict[int, set[str]] = {}
    for member in cluster.members:
        gap = 0
        for kind, value in member.items:
            if kind == "word":
                gaps.setdefault(gap, set()).add(value)
            elif kind == "anchor":
                anchor_options.add((value,))
                gap += 1
            else:
                gap += 1
    if not anchor_options:
        return None

    patterns: list[Pattern] = []
    for g, element in enumerate(cluster.signature):
        if g in gaps:
            patterns.append(OptPat(frozenset(gaps[g]), slack=True))
        if element == "ANCHOR":
            patterns.append(MustPat(tuple(sorted(anchor_options))))
        else:
            patterns.append(_slot_pattern(element))
    trailing = len(cluster.signature)
    if trailing in gaps:
        patterns.append(OptPat(frozenset(gaps[trailing]), slack=True))
    return tuple(patterns)
