"""Rule selection and scoring (paper §3.3.1).

From the over-approximated candidate set:

* each rule's **goodness** is ``pos² / (pos + neg)``, where pos counts
  training examples the rule translated correctly (it applied and one of
  its instantiations matches the gold subprogram) and neg counts examples
  where it applied but none matched;
* rules below a goodness floor are discarded, as are rules *subsumed* by a
  more generally applicable rule with at least the same goodness;
* surviving rules receive a Naive-Bayes-style score estimate — the
  Laplace-smoothed probability that an application is correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl.types import TypeChecker
from ..evalkit.canonical import canonicalize
from ..translate.context import SheetContext
from ..translate.rule_translator import RuleTranslator
from ..translate.rules import Rule, RuleSet
from ..translate.tokenizer import tokenize
from .extraction import TrainingExample

_GOODNESS_FLOOR = 0.5


@dataclass
class RuleStats:
    """Per-rule application statistics over the training set."""

    rule: Rule
    pos: set[int] = field(default_factory=set)
    neg: set[int] = field(default_factory=set)

    @property
    def applied(self) -> set[int]:
        return self.pos | self.neg

    @property
    def goodness(self) -> float:
        applied = len(self.pos) + len(self.neg)
        if applied == 0:
            return 0.0
        return len(self.pos) ** 2 / applied

    @property
    def naive_bayes_score(self) -> float:
        """Laplace-smoothed correctness probability, clipped to [0.3, 0.95]
        so learned rules slot into the same score regime as the base set."""
        p = (len(self.pos) + 1) / (len(self.pos) + len(self.neg) + 2)
        return min(max(p, 0.3), 0.95)


def _seed_tmap(tokens, ctx: SheetContext) -> dict:
    """A keyword-seed-only TMap so span holes have binding candidates
    during rule scoring (atoms, implicit filters, lookups) — a cheap stand-
    in for the full pipeline the paper re-runs each pruning iteration."""
    from ..translate.seeds import column_seeds, literal_seeds, value_seeds

    n = len(tokens)
    tmap: dict[tuple[int, int], list] = {}
    for width in range(1, n + 1):
        for i in range(0, n - width + 1):
            j = i + width
            derivs = []
            if width == 1:
                derivs += literal_seeds(tokens[i], i)
            derivs += column_seeds(ctx, tokens, i, j, 0)
            derivs += value_seeds(ctx, tokens, i, j, 0)
            if width >= 2:
                derivs = tmap[(i, j - 1)] + tmap[(i + 1, j)] + derivs
            seen: dict = {}
            for d in derivs:
                seen.setdefault(d.key(), d)
            tmap[(i, j)] = list(seen.values())
    return tmap


def score_rules(
    rules: list[Rule], examples: list[TrainingExample]
) -> list[RuleStats]:
    """Apply each rule to each example (over every sentence span) and count
    correct / incorrect applications.

    An application is *correct* when one of the produced expressions equals
    (canonically) a subexpression of the gold program.
    """
    stats = [RuleStats(rule=r) for r in rules]
    contexts: dict[int, tuple[SheetContext, TypeChecker]] = {}
    for index, example in enumerate(examples):
        key = id(example.workbook)
        if key not in contexts:
            contexts[key] = (
                SheetContext(example.workbook),
                TypeChecker(example.workbook, content_check=True),
            )
        ctx, checker = contexts[key]
        tokens = tokenize(example.text)
        tmap = _seed_tmap(tokens, ctx)
        gold_parts = {
            canonicalize(node, example.workbook)
            for node in example.program.walk()
        }
        for st in stats:
            translator = RuleTranslator(RuleSet([st.rule]), ctx, checker)
            produced = []
            n = len(tokens)
            for width in range(1, n + 1):
                for i in range(0, n - width + 1):
                    produced.extend(
                        translator.translate_span(tokens, i, i + width, tmap)
                    )
                if produced:
                    break  # the smallest applying span decides
            if not produced:
                continue
            correct = any(
                _matches_gold(d.expr, gold_parts, example) for d in produced
            )
            if correct:
                st.pos.add(index)
            else:
                st.neg.add(index)
    return stats


def _matches_gold(expr, gold_parts, example: TrainingExample) -> bool:
    """A complete production must equal a gold subexpression; a partial
    production (open holes, to be filled by synthesis) counts as correct
    when some gold subexpression unifies with it."""
    from ..dsl.holes import is_complete
    from .extraction import unify

    rewritten = canonicalize(expr, example.workbook)
    if is_complete(rewritten):
        return rewritten in gold_parts
    return any(unify(part, rewritten) is not None for part in gold_parts)


def prune(stats: list[RuleStats]) -> list[RuleStats]:
    """Drop low-goodness rules, then subsumed rules.

    Rule A is subsumed by rule B when B produces the same expression, B
    applied (correctly) everywhere A did, and B's goodness is at least A's.
    """
    kept = [s for s in stats if s.goodness >= _GOODNESS_FLOOR and s.pos]
    survivors: list[RuleStats] = []
    for a in kept:
        subsumed = False
        for b in kept:
            if a is b or a.rule.expr != b.rule.expr:
                continue
            if a.pos < b.pos and b.goodness >= a.goodness:
                subsumed = True
                break
            if (
                a.pos == b.pos
                and b.goodness > a.goodness
            ):
                subsumed = True
                break
        if not subsumed:
            survivors.append(a)
    return survivors


def finalize(stats: list[RuleStats]) -> RuleSet:
    """The learned rule set with Naive-Bayes scores."""
    out = RuleSet()
    for st in stats:
        out.add(
            Rule(
                name=st.rule.name,
                template=st.rule.template,
                expr=st.rule.expr,
                score=st.naive_bayes_score,
            )
        )
    return out
