"""The end-to-end rule learning pipeline (paper §3.3.1).

``learn_rules(examples, targets)`` runs extract -> cluster -> generalize ->
score -> prune -> finalize, producing a :class:`RuleSet` that the
translator can use directly (see ``benchmarks/bench_learning.py`` for the
train/test evaluation of a learned set).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl import ast
from ..translate.rules import Rule, RuleSet
from .clustering import cluster_templates, generalize
from .extraction import CandidateTemplate, TrainingExample, extract_template
from .selection import finalize, prune, score_rules

_H = ast.Hole
_C = ast.HoleKind.COLUMN
_G = ast.HoleKind.GENERAL


@dataclass(frozen=True)
class LearningTarget:
    """One partial expression to learn rules for."""

    name: str
    expr: ast.Expr
    anchor_concept: str


def default_targets() -> list[LearningTarget]:
    """The reduce/count family — the workhorse rules of the system."""
    targets = []
    for op, concept in (
        (ast.ReduceOp.SUM, "sum"),
        (ast.ReduceOp.AVG, "avg"),
        (ast.ReduceOp.MIN, "min"),
        (ast.ReduceOp.MAX, "max"),
    ):
        targets.append(
            LearningTarget(
                name=f"learned_{concept}",
                expr=ast.Reduce(op, _H(1, _C), ast.GetTable(), _H(2, _G)),
                anchor_concept=concept,
            )
        )
    targets.append(
        LearningTarget(
            name="learned_count",
            expr=ast.Count(ast.GetTable(), _H(1, _G)),
            anchor_concept="count",
        )
    )
    return targets


def extract_all(
    examples: list[TrainingExample], targets: list[LearningTarget]
) -> list[CandidateTemplate]:
    out: list[CandidateTemplate] = []
    for target in targets:
        for example in examples:
            template = extract_template(
                example, target.expr, target.name, target.anchor_concept
            )
            if template is not None:
                out.append(template)
    return out


def learn_rules(
    examples: list[TrainingExample],
    targets: list[LearningTarget] | None = None,
    min_support: int = 2,
    score_sample: int | None = 120,
) -> RuleSet:
    """Learn a rule set from training pairs.

    ``min_support`` drops one-off clusters; ``score_sample`` caps the
    number of examples used for goodness scoring (scoring is quadratic in
    rules x examples).
    """
    targets = targets or default_targets()
    by_name = {t.name: t for t in targets}
    templates = extract_all(examples, targets)
    clusters = cluster_templates(templates)

    candidates: list[Rule] = []
    for k, cluster in enumerate(clusters):
        pattern_seq = generalize(cluster, min_support=min_support)
        if pattern_seq is None:
            continue
        target = by_name[cluster.target_name]
        candidates.append(
            Rule(
                name=f"{cluster.target_name}_{k}",
                template=pattern_seq,
                expr=target.expr,
                score=0.7,
            )
        )
    scoring_examples = examples[:score_sample] if score_sample else examples
    stats = score_rules(candidates, scoring_examples)
    return finalize(prune(stats))
