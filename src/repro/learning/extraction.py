"""Candidate rule extraction (paper §3.3.1, after Kate et al.).

Given training pairs (sentence, gold program) and a *target* partial
expression such as ``Sum(□C1, □G2)``:

1. find a subexpression of the gold program that unifies with the target,
   producing hole bindings (``□C1 -> totalpay``, ``□G2 -> Lt(hours, 20)``);
2. attribute sentence words to the bindings — column words to C holes,
   value words to V holes, literal tokens to L holes, the words evoking the
   bound general subexpression to its span hole — and operator-synonym
   words to the target's root operator (the anchor);
3. replace attributed words with their pattern placeholders, keeping the
   anchor as a must word, to obtain a candidate template.

Examples whose attributed words are non-contiguous for a span hole are
skipped (the paper's heuristic deletion step has the same effect).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl import ast
from ..dsl.holes import holes_of
from ..sheet import Workbook
from ..translate.context import SheetContext
from ..translate.lexicon import SYNONYMS
from ..translate.tokenizer import tokenize

# Root-operator anchors: AST class/op -> synonym concept.
_ANCHOR_CONCEPTS = {
    ast.ReduceOp.SUM: "sum",
    ast.ReduceOp.AVG: "avg",
    ast.ReduceOp.MIN: "min",
    ast.ReduceOp.MAX: "max",
}


@dataclass(frozen=True)
class TrainingExample:
    """One (description, gold program) pair over a sheet."""

    text: str
    program: ast.Expr
    workbook: Workbook


@dataclass(frozen=True)
class CandidateTemplate:
    """An extracted template: a sequence of items, each either
    ``("word", w)``, ``("slot", "%C1")``-style placeholders, or
    ``("anchor", w)`` for the operator word."""

    items: tuple[tuple[str, str], ...]
    target_name: str

    def signature(self) -> tuple[str, ...]:
        """Placeholder order — the clustering key.  Anchor words normalize
        to a common marker so "sum ..." and "total ..." templates cluster
        together and merge into one MustPat alternation."""
        return tuple(
            "ANCHOR" if kind == "anchor" else value
            for kind, value in self.items
            if kind in ("slot", "anchor")
        )

    def anchor_words(self) -> tuple[str, ...]:
        return tuple(v for k, v in self.items if k == "anchor")


def unify(expr: ast.Expr, target: ast.Expr) -> dict[int, ast.Expr] | None:
    """Match ``expr`` against ``target``; target holes capture subtrees.

    Returns hole-ident -> captured subexpression, or None on mismatch.
    A hole's restriction must accept what it captures.
    """
    bindings: dict[int, ast.Expr] = {}

    def walk(e: ast.Expr, t: ast.Expr) -> bool:
        if isinstance(t, ast.Hole):
            from ..dsl.holes import consistent

            if not consistent(e, t.kind) and t.kind is not ast.HoleKind.GENERAL:
                return False
            captured = bindings.get(t.ident)
            if captured is not None:
                return captured == e
            bindings[t.ident] = e
            return True
        if type(e) is not type(t):
            return False
        ec, tc = e.children(), t.children()
        if len(ec) != len(tc):
            return False
        for field_name in ("op",):
            if getattr(e, field_name, None) != getattr(t, field_name, None):
                return False
        return all(walk(a, b) for a, b in zip(ec, tc))

    return bindings if walk(expr, target) else None


def find_unifying_subexpression(
    program: ast.Expr, target: ast.Expr
) -> dict[int, ast.Expr] | None:
    """The first (pre-order) subexpression of ``program`` unifying with
    ``target``."""
    for node in program.walk():
        bindings = unify(node, target)
        if bindings is not None:
            return bindings
    return None


def _atom_words(expr: ast.Expr, ctx: SheetContext) -> set[str]:
    """Sentence words plausibly evoking ``expr``: its column/value/literal
    atoms plus operator synonyms of its internal operators."""
    words: set[str] = set()
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            key = node.name.strip().lower()
            words.add(key)
            words.update(key.split())
        elif isinstance(node, ast.Lit):
            rendered = str(node.value.payload).strip().lower()
            words.update(rendered.split())
            words.add(rendered)
        elif isinstance(node, ast.Compare):
            concept = {"Lt": "lt", "Gt": "gt", "Eq": "eq"}[node.op.value]
            words.update(SYNONYMS[concept])
        elif isinstance(node, ast.Not):
            words.update(SYNONYMS["not"])
        elif isinstance(node, (ast.And,)):
            words.update(SYNONYMS["and"])
        elif isinstance(node, (ast.Or,)):
            words.update(SYNONYMS["or"])
        elif isinstance(node, ast.Reduce):
            words.update(SYNONYMS[_ANCHOR_CONCEPTS[node.op]])
    return words


def extract_template(
    example: TrainingExample,
    target: ast.Expr,
    target_name: str,
    anchor_concept: str,
) -> CandidateTemplate | None:
    """One candidate template from one example, or None when the example
    does not fit the target cleanly."""
    bindings = find_unifying_subexpression(example.program, target)
    if bindings is None:
        return None
    ctx = SheetContext(example.workbook)
    tokens = tokenize(example.text)
    target_holes = {h.ident: h for h in holes_of(target)}

    # classify tokens
    labels: list[tuple[str, str]] = []
    anchor_synonyms = SYNONYMS[anchor_concept]
    slot_words: dict[int, set[str]] = {}
    for ident, captured in bindings.items():
        hole = target_holes[ident]
        if hole.kind is ast.HoleKind.GENERAL:
            slot_words[ident] = _atom_words(captured, ctx)
        else:
            slot_words[ident] = _atom_words(captured, ctx)

    used_anchor = False
    for token in tokens:
        word = token.text
        slot_hit = None
        for ident, words in slot_words.items():
            if word in words or (word.endswith("s") and word[:-1] in words):
                slot_hit = ident
                break
        if slot_hit is not None:
            hole = target_holes[slot_hit]
            marker = {
                ast.HoleKind.COLUMN: f"%C{slot_hit}",
                ast.HoleKind.VALUE: f"%V{slot_hit}",
                ast.HoleKind.LITERAL: f"%L{slot_hit}",
                ast.HoleKind.GENERAL: f"%{slot_hit}",
            }[hole.kind]
            labels.append(("slot", marker))
        elif token.literal is not None and any(
            target_holes[i].kind is ast.HoleKind.LITERAL for i in bindings
        ):
            ident = next(
                i for i in bindings
                if target_holes[i].kind is ast.HoleKind.LITERAL
            )
            labels.append(("slot", f"%L{ident}"))
        elif not used_anchor and word in anchor_synonyms:
            labels.append(("anchor", word))
            used_anchor = True
        else:
            labels.append(("word", word))

    if not used_anchor:
        return None
    # Merge each slot's occurrences into one contiguous range.  Function
    # words inside the range ("hours less THAN 20") belong to the span and
    # are dropped; an interleaved *different* slot or the anchor means the
    # example does not fit the target shape and is skipped.
    first: dict[str, int] = {}
    last: dict[str, int] = {}
    for idx, (kind, value) in enumerate(labels):
        if kind == "slot":
            first.setdefault(value, idx)
            last[value] = idx
    for value in first:
        for idx in range(first[value], last[value] + 1):
            kind_2, value_2 = labels[idx]
            if kind_2 == "anchor":
                return None
            if kind_2 == "slot" and value_2 != value:
                return None
    compressed: list[tuple[str, str]] = []
    seen_slots: set[str] = set()
    skip_until = -1
    for idx, (kind, value) in enumerate(labels):
        if idx <= skip_until:
            continue
        if kind == "slot":
            seen_slots.add(value)
            compressed.append((kind, value))
            skip_until = last[value]
        else:
            compressed.append((kind, value))
    # every bound hole must surface in the template
    required = {
        f"%{'' if target_holes[i].kind is ast.HoleKind.GENERAL else target_holes[i].kind.value}{i}"
        for i in bindings
    }
    if not required <= seen_slots:
        return None
    return CandidateTemplate(
        items=tuple(compressed), target_name=target_name
    )
