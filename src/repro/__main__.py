"""Package CLI.

Usage::

    python -m repro translate "sum the hours" --sheet payroll [--top 3]
    python -m repro translate "total the amount" --csv data.csv [...]
    python -m repro repl [--sheet payroll] [--csv data.csv ...]
    python -m repro serve [--workers N] [--shards N] [--deadline MS]
    python -m repro serve --http PORT [--host ADDR] [...]
    python -m repro batch FILE [--workers N] [--shards N] [--deadline MS] [--repeat K]
    python -m repro corpus --dump out.txt [--seed 2014]
    python -m repro rules [--learned]

``serve`` and ``batch`` route requests through the crash-isolated
:class:`repro.serve.TranslationGateway` (worker pool + admission control
+ per-workbook circuit breakers) instead of an in-process translator.
With ``--shards N`` (N > 1) they route through a
:class:`repro.cluster.ShardedCluster` instead: N gateways behind
rendezvous routing, health-checked failover, and a shared cache tier
(see docs/CLUSTER.md).

Experiments live under ``python -m repro.evalkit`` (see README).
"""

from __future__ import annotations

import argparse
import sys

from .dataset import SHEET_ORDER, build_sheet
from .errors import ReproError
from .session import NLyzeSession
from .sheet import Workbook


def _workbook(args: argparse.Namespace) -> Workbook:
    if getattr(args, "csv", None):
        from .sheet.io import load_workbook

        return load_workbook(args.csv)
    return build_sheet(args.sheet)


def _deadline(args: argparse.Namespace) -> float | None:
    ms = getattr(args, "deadline", None)
    return ms / 1000.0 if ms is not None else None


def _make_tracer(args: argparse.Namespace):
    """A live Tracer when any observability output is requested, else None."""
    if getattr(args, "trace_out", None) or getattr(args, "metrics_out", None):
        from .obs import Tracer

        return Tracer()
    return None


def _write_obs(args: argparse.Namespace, tracer, registry=None) -> None:
    """Flush ``--trace-out`` / ``--metrics-out`` files, if requested.

    Without a registry of its own (the single-translation path), metrics
    are derived from the trace (``span_seconds`` by span name).
    """
    from .obs import span_duration_metrics, write_metrics, write_trace

    if getattr(args, "trace_out", None) and tracer is not None:
        n = write_trace(tracer, args.trace_out)
        print(f"# wrote {n} trace records to {args.trace_out}", file=sys.stderr)
    if getattr(args, "metrics_out", None):
        if registry is None and tracer is not None:
            registry = span_duration_metrics(tracer)
        if registry is not None:
            write_metrics(registry, args.metrics_out)
            print(f"# wrote metrics to {args.metrics_out}", file=sys.stderr)


def _cmd_translate(args: argparse.Namespace) -> None:
    workbook = _workbook(args)
    tracer = _make_tracer(args)
    session = NLyzeSession(workbook, deadline=_deadline(args), tracer=tracer)
    step = session.ask(args.description)
    print(step.render())
    if args.execute and step.views:
        result = session.accept(step)
        print(f"-> {result.display()}")
    _write_obs(args, tracer)


def _cmd_repl(args: argparse.Namespace) -> None:
    workbook = _workbook(args)
    print(workbook.default_table.render(max_rows=10))
    session = NLyzeSession(workbook, deadline=_deadline(args))
    print("\nDescribe a task (:quit to exit).")
    while True:
        try:
            line = input("nlyze> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in (":quit", ":q"):
            break
        try:
            step = session.ask(line)
        except ReproError as exc:  # surface, keep the loop alive
            print(f"error [{exc.code}]: {exc}")
            continue
        print(step.render())
        if step.views:
            result = session.accept(step)
            print(f"-> {result.display()}")


def _render_gateway_result(result) -> str:
    if not result.ok:
        return f"error [{result.error_code}]: {result.error}"
    label = result.tier or "?"
    if result.degraded:
        label += ",degraded"
    formula = result.top_formula or result.top_program or "(no candidates)"
    return f"[{label}] {formula}"


def _print_gateway_stats(gateway) -> None:
    stats = gateway.stats()
    print(
        f"# queue={stats.queue_depth} in_flight={stats.in_flight} "
        f"submitted={stats.submitted} ok={stats.ok} shed={stats.shed} "
        f"crashed={stats.crashed} timed_out={stats.timed_out} "
        f"circuit_open={stats.circuit_rejected} restarts={stats.restarts}"
    )
    if stats.cache is not None:
        print(
            f"#   cache: hits={stats.cache.hits} misses={stats.cache.misses} "
            f"hit_rate={stats.cache.hit_rate:.1%} size={stats.cache.size}/"
            f"{stats.cache.capacity} evictions={stats.cache.evictions} "
            f"invalidated={stats.cache.invalidated}"
        )
    for worker in stats.workers:
        print(
            f"#   worker {worker.worker_id}: alive={worker.alive} "
            f"served={worker.served} restarts={worker.restarts} "
            f"warm={worker.warm_fingerprints}"
        )


def _print_cluster_stats(cluster) -> None:
    stats = cluster.stats()
    print(
        f"# cluster: shards {stats.live_shards}/{len(stats.shards)} live, "
        f"submitted={stats.submitted} ok={stats.ok} failed={stats.failed} "
        f"retries={stats.retries} failovers={stats.failovers} "
        f"rerouted={stats.rerouted} shard_down={stats.shard_down}"
    )
    if stats.shared_cache is not None:
        sc = stats.shared_cache
        print(
            f"#   shared cache: hits={sc['hits']} misses={sc['misses']} "
            f"puts={sc['puts']} size={sc['size']} "
            f"codec_errors={sc['codec_errors']}"
        )
    if stats.hot is not None and stats.hot.hot_shards:
        print(f"#   hot shards: {stats.hot.hot_shards}")
    for shard in stats.shards:
        gw = shard.gateway
        print(
            f"#   shard {shard.shard_id} [{shard.state}]: "
            f"queue={gw.queue_depth} in_flight={gw.in_flight} "
            f"ok={gw.ok} crashed={gw.crashed} restarts={gw.restarts}"
        )


def _print_stats(service) -> None:
    if hasattr(service, "shards"):
        _print_cluster_stats(service)
    else:
        _print_gateway_stats(service)


def _make_gateway(args: argparse.Namespace, tracer=None):
    if getattr(args, "shards", 1) > 1:
        from .cluster import ShardedCluster

        return ShardedCluster(
            _workbook(args),
            shards=args.shards,
            workers_per_shard=args.workers,
            queue_limit=args.queue_limit,
            default_deadline=_deadline(args),
            shared_cache=args.cache,
            tracer=tracer,
        )
    from .serve import TranslationGateway

    return TranslationGateway(
        _workbook(args),
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline=_deadline(args),
        cache=args.cache,
        tracer=tracer,
    )


def _serve_http(args: argparse.Namespace, gateway, tracer) -> None:
    """Run the asyncio HTTP front end over the gateway until interrupted."""
    import asyncio

    from .http import HttpServer

    server = HttpServer(gateway, host=args.host, port=args.http)

    async def run() -> None:
        await server.start()
        print(
            f"# http up: http://{args.host}:{server.port} "
            f"(POST /translate, GET /healthz /metrics /stats /traces; "
            f"Ctrl-C to exit)",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass


def _cmd_serve(args: argparse.Namespace) -> None:
    """Line-oriented gateway service: one description in, one result out."""
    tracer = _make_tracer(args)
    gateway = _make_gateway(args, tracer=tracer)
    if args.http is not None:
        try:
            _serve_http(args, gateway, tracer)
        finally:
            gateway.close(drain=True)
            _write_obs(args, tracer, gateway.metrics)
        return
    if args.shards > 1:
        banner = (
            f"# cluster up: {args.shards} shards x {args.workers} workers"
        )
    else:
        banner = f"# gateway up: {args.workers} workers"
    print(
        f"{banner}, queue limit {args.queue_limit} "
        f"(:stats for diagnostics, :quit to exit)",
        flush=True,
    )
    try:
        while True:
            try:
                line = input()
            except (EOFError, KeyboardInterrupt):
                break
            line = line.strip()
            if not line:
                continue
            if line in (":quit", ":q"):
                break
            if line == ":stats":
                _print_stats(gateway)
                continue
            print(_render_gateway_result(gateway.translate(line)), flush=True)
    finally:
        gateway.close(drain=True)
        _write_obs(args, tracer, gateway.metrics)


def _cmd_batch(args: argparse.Namespace) -> None:
    """Push a file of descriptions through the gateway; report serving stats."""
    from .obs.clock import perf

    if args.file == "-":
        lines = [line.strip() for line in sys.stdin]
    else:
        with open(args.file) as handle:
            lines = [line.strip() for line in handle]
    sentences = [line for line in lines if line] * max(1, args.repeat)
    if not sentences:
        print("error [empty_batch]: no descriptions in input", file=sys.stderr)
        sys.exit(2)
    tracer = _make_tracer(args)
    gateway = _make_gateway(args, tracer=tracer)
    try:
        start = perf()
        results = gateway.translate_many(sentences)
        wall = perf() - start
        for sentence, result in zip(sentences, results):
            print(f"{_render_gateway_result(result)}  <- {sentence}")
        latencies = sorted(r.total_seconds for r in results)
        p = lambda q: latencies[min(len(latencies) - 1, int(q * len(latencies)))]
        stats = gateway.stats()
        if hasattr(gateway, "shards"):
            extra = (
                f"retries {stats.retries}, failovers {stats.failovers}, "
                f"shards {stats.live_shards}/{len(stats.shards)} live"
            )
        else:
            extra = f"shed {stats.shed} ({stats.shed_rate:.1%}), crashed {stats.crashed}"
        print(
            f"# {len(results)} requests in {wall:.2f}s "
            f"({len(results) / wall:.1f} req/s), "
            f"ok {sum(r.ok for r in results)}, {extra}, "
            f"cache hits {stats.cache_hits} ({stats.cache_hit_rate:.1%}), "
            f"p50 {p(0.5) * 1000:.1f}ms, p95 {p(0.95) * 1000:.1f}ms"
        )
    finally:
        gateway.close(drain=True)
        _write_obs(args, tracer, gateway.metrics)


def _cmd_corpus(args: argparse.Namespace) -> None:
    from .dataset import Corpus

    corpus = Corpus.default(seed=args.seed)
    lines = [
        f"{d.task_id}\t{d.sheet_id}\t{d.text}" for d in corpus.descriptions
    ]
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} descriptions to {args.dump}")
    else:
        print("\n".join(lines[: args.head]))


def _cmd_rules(args: argparse.Namespace) -> None:
    if args.learned:
        from .dataset import Corpus, all_tasks
        from .learning import TrainingExample, learn_rules

        corpus = Corpus.default()
        tasks = {t.task_id: t for t in all_tasks()}
        workbooks = {}
        examples = []
        for d in corpus.train[:400]:
            wb = workbooks.setdefault(d.sheet_id, build_sheet(d.sheet_id))
            examples.append(TrainingExample(
                text=d.text, program=tasks[d.task_id].gold(wb), workbook=wb
            ))
        rules = learn_rules(examples)
    else:
        from .rules import builtin_rules

        rules = builtin_rules()
    for rule in rules:
        print(rule.render())
    print(f"({len(rules)} rules)", file=sys.stderr)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_options(p):
        p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write spans on exit (.jsonl -> span log, "
                            "else Chrome trace JSON for Perfetto)")
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write Prometheus-style metrics text on exit")

    p = sub.add_parser("translate", help="translate one description")
    p.add_argument("description")
    p.add_argument("--sheet", choices=SHEET_ORDER, default="payroll")
    p.add_argument("--csv", nargs="*", help="CSV files instead of a demo sheet")
    p.add_argument("--execute", action="store_true",
                   help="execute the top candidate")
    p.add_argument("--deadline", type=float, default=None, metavar="MS",
                   help="wall-clock budget per translation (milliseconds)")
    add_obs_options(p)
    p.set_defaults(func=_cmd_translate)

    p = sub.add_parser("repl", help="interactive session")
    p.add_argument("--sheet", choices=SHEET_ORDER, default="payroll")
    p.add_argument("--csv", nargs="*")
    p.add_argument("--deadline", type=float, default=None, metavar="MS",
                   help="wall-clock budget per translation (milliseconds)")
    p.set_defaults(func=_cmd_repl)

    def add_gateway_options(p):
        p.add_argument("--sheet", choices=SHEET_ORDER, default="payroll")
        p.add_argument("--csv", nargs="*")
        p.add_argument("--workers", type=int, default=2,
                       help="worker processes in the gateway pool "
                            "(per shard when --shards > 1)")
        p.add_argument("--shards", type=int, default=1,
                       help="gateway shards; >1 serves through a "
                            "fingerprint-sharded cluster with failover")
        p.add_argument("--queue-limit", type=int, default=64,
                       help="bounded admission queue depth")
        p.add_argument("--deadline", type=float, default=None, metavar="MS",
                       help="per-request deadline (milliseconds)")
        p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="memoise translation results per "
                            "(sentence, workbook) [default: on]")
        add_obs_options(p)

    p = sub.add_parser(
        "serve", help="line-oriented gateway service on stdin/stdout "
                      "(or HTTP with --http PORT)"
    )
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   help="serve HTTP instead of stdin/stdout (0 = ephemeral "
                        "port; see docs/HTTP.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="HTTP bind address [default: 127.0.0.1]")
    add_gateway_options(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "batch", help="run a file of descriptions through the gateway"
    )
    p.add_argument("file", help="one description per line ('-' for stdin)")
    p.add_argument("--repeat", type=int, default=1,
                   help="duplicate the batch K times (load testing)")
    add_gateway_options(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("corpus", help="print or dump the evaluation corpus")
    p.add_argument("--seed", type=int, default=2014)
    p.add_argument("--dump", help="write the corpus to a file")
    p.add_argument("--head", type=int, default=20)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser("rules", help="print the rule set")
    p.add_argument("--learned", action="store_true",
                   help="learn rules from the training split first")
    p.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    try:
        args.func(args)
    except ReproError as exc:
        # A library error is a user-facing condition (bad CSV, bad
        # description, budget exhausted...), not a crash: one line, exit 2.
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
