"""Package CLI.

Usage::

    python -m repro translate "sum the hours" --sheet payroll [--top 3]
    python -m repro translate "total the amount" --csv data.csv [...]
    python -m repro repl [--sheet payroll] [--csv data.csv ...]
    python -m repro corpus --dump out.txt [--seed 2014]
    python -m repro rules [--learned]

Experiments live under ``python -m repro.evalkit`` (see README).
"""

from __future__ import annotations

import argparse
import sys

from .dataset import SHEET_ORDER, build_sheet
from .errors import ReproError
from .session import NLyzeSession
from .sheet import Workbook


def _workbook(args: argparse.Namespace) -> Workbook:
    if getattr(args, "csv", None):
        from .sheet.io import load_workbook

        return load_workbook(args.csv)
    return build_sheet(args.sheet)


def _deadline(args: argparse.Namespace) -> float | None:
    ms = getattr(args, "deadline", None)
    return ms / 1000.0 if ms is not None else None


def _cmd_translate(args: argparse.Namespace) -> None:
    workbook = _workbook(args)
    session = NLyzeSession(workbook, deadline=_deadline(args))
    step = session.ask(args.description)
    print(step.render())
    if args.execute and step.views:
        result = session.accept(step)
        print(f"-> {result.display()}")


def _cmd_repl(args: argparse.Namespace) -> None:
    workbook = _workbook(args)
    print(workbook.default_table.render(max_rows=10))
    session = NLyzeSession(workbook, deadline=_deadline(args))
    print("\nDescribe a task (:quit to exit).")
    while True:
        try:
            line = input("nlyze> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in (":quit", ":q"):
            break
        try:
            step = session.ask(line)
        except ReproError as exc:  # surface, keep the loop alive
            print(f"error [{exc.code}]: {exc}")
            continue
        print(step.render())
        if step.views:
            result = session.accept(step)
            print(f"-> {result.display()}")


def _cmd_corpus(args: argparse.Namespace) -> None:
    from .dataset import Corpus

    corpus = Corpus.default(seed=args.seed)
    lines = [
        f"{d.task_id}\t{d.sheet_id}\t{d.text}" for d in corpus.descriptions
    ]
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} descriptions to {args.dump}")
    else:
        print("\n".join(lines[: args.head]))


def _cmd_rules(args: argparse.Namespace) -> None:
    if args.learned:
        from .dataset import Corpus, all_tasks
        from .learning import TrainingExample, learn_rules

        corpus = Corpus.default()
        tasks = {t.task_id: t for t in all_tasks()}
        workbooks = {}
        examples = []
        for d in corpus.train[:400]:
            wb = workbooks.setdefault(d.sheet_id, build_sheet(d.sheet_id))
            examples.append(TrainingExample(
                text=d.text, program=tasks[d.task_id].gold(wb), workbook=wb
            ))
        rules = learn_rules(examples)
    else:
        from .rules import builtin_rules

        rules = builtin_rules()
    for rule in rules:
        print(rule.render())
    print(f"({len(rules)} rules)", file=sys.stderr)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("translate", help="translate one description")
    p.add_argument("description")
    p.add_argument("--sheet", choices=SHEET_ORDER, default="payroll")
    p.add_argument("--csv", nargs="*", help="CSV files instead of a demo sheet")
    p.add_argument("--execute", action="store_true",
                   help="execute the top candidate")
    p.add_argument("--deadline", type=float, default=None, metavar="MS",
                   help="wall-clock budget per translation (milliseconds)")
    p.set_defaults(func=_cmd_translate)

    p = sub.add_parser("repl", help="interactive session")
    p.add_argument("--sheet", choices=SHEET_ORDER, default="payroll")
    p.add_argument("--csv", nargs="*")
    p.add_argument("--deadline", type=float, default=None, metavar="MS",
                   help="wall-clock budget per translation (milliseconds)")
    p.set_defaults(func=_cmd_repl)

    p = sub.add_parser("corpus", help="print or dump the evaluation corpus")
    p.add_argument("--seed", type=int, default=2014)
    p.add_argument("--dump", help="write the corpus to a file")
    p.add_argument("--head", type=int, default=20)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser("rules", help="print the rule set")
    p.add_argument("--learned", action="store_true",
                   help="learn rules from the training split first")
    p.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    try:
        args.func(args)
    except ReproError as exc:
        # A library error is a user-facing condition (bad CSV, bad
        # description, budget exhausted...), not a crash: one line, exit 2.
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
