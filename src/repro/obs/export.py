"""Exporters: JSONL span logs, Chrome trace events, Prometheus text.

Three formats, three audiences:

* :func:`write_spans_jsonl` — one JSON object per line, the durable
  machine-readable record (grep-able, diff-able, schema-checked by
  ``scripts/check_trace.py``);
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Trace
  Event JSON that ``about:tracing`` / https://ui.perfetto.dev load
  directly, giving a flamegraph of one request across the gateway
  parent and its worker processes (each process a track, each span a
  complete ``"ph": "X"`` slice);
* :func:`write_metrics` — Prometheus-style text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry` (the same text the HTTP
  front end serves at ``GET /metrics``; see docs/HTTP.md).

:func:`spans_jsonl` is the shared line renderer: the HTTP front end's
``GET /traces`` endpoint streams exactly these lines, so a downloaded
trace and a ``--trace-out`` file are interchangeable.

All writers accept a path or an open text handle and are atomic enough
for CI use (single ``write`` of a fully rendered string).
"""

from __future__ import annotations

import json
import re
from typing import Any, IO, Iterable, Mapping

from .metrics import MetricsRegistry, escape_label_value

__all__ = [
    "chrome_trace_events",
    "render_prometheus",
    "sanitize_label_name",
    "sanitize_metric_name",
    "span_duration_metrics",
    "spans_jsonl",
    "write_chrome_trace",
    "write_metrics",
    "write_spans_jsonl",
    "write_trace",
]

SPAN_REQUIRED_FIELDS = (
    "name", "trace_id", "span_id", "parent_id", "start", "end",
    "duration", "status", "attrs", "pid", "thread",
)


def _records(spans: Any) -> list[dict[str, Any]]:
    """Accept a Tracer, span dicts, or Span objects; return plain dicts."""
    if hasattr(spans, "finished") and callable(spans.finished):
        spans = spans.finished()
    out = []
    for span in spans:
        if hasattr(span, "as_dict"):
            span = span.as_dict()
        out.append(span)
    return out


def _write(path_or_handle: str | IO[str], text: str) -> None:
    if hasattr(path_or_handle, "write"):
        path_or_handle.write(text)
    else:
        with open(path_or_handle, "w", encoding="utf-8") as handle:
            handle.write(text)


def spans_jsonl(spans: Any) -> list[str]:
    """Render span records as JSONL lines (each ``\\n``-terminated).

    One canonical renderer for every span-log surface: the
    ``write_spans_jsonl`` file writer and the HTTP ``GET /traces``
    stream both emit exactly these lines.
    """
    return [
        json.dumps(record, sort_keys=True, default=str) + "\n"
        for record in _records(spans)
    ]


def write_spans_jsonl(spans: Any, path: str | IO[str]) -> int:
    """Write one span record per line; returns the number written."""
    lines = spans_jsonl(spans)
    _write(path, "".join(lines))
    return len(lines)


def chrome_trace_events(spans: Any) -> list[dict[str, Any]]:
    """Convert span records to Chrome Trace Event ``"X"`` (complete) events.

    Timestamps are microseconds relative to the earliest span, so the
    viewer's time axis starts at zero regardless of the clock epoch.
    Each OS process becomes a ``pid`` track and each thread a ``tid``
    row, which is exactly how a stitched gateway trace shows the parent
    and its workers side by side.
    """
    records = _records(spans)
    if not records:
        return []
    epoch = min(r["start"] for r in records)
    events: list[dict[str, Any]] = []
    names_emitted: set[int] = set()
    for record in records:
        pid = record.get("pid", 0)
        if pid not in names_emitted:
            names_emitted.add(pid)
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            })
        end = record.get("end")
        duration = (end - record["start"]) if end is not None else 0.0
        args = dict(record.get("attrs") or {})
        args["trace_id"] = record.get("trace_id")
        args["span_id"] = record.get("span_id")
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        if record.get("status") and record["status"] != "ok":
            args["status"] = record["status"]
        events.append({
            "name": record["name"],
            "cat": record.get("status", "ok"),
            "ph": "X",
            "ts": (record["start"] - epoch) * 1e6,
            "dur": duration * 1e6,
            "pid": pid,
            "tid": record.get("thread", "main"),
            "args": args,
        })
    return events


def write_chrome_trace(spans: Any, path: str | IO[str]) -> int:
    """Write the Trace Event JSON document; returns the event count."""
    events = chrome_trace_events(spans)
    _write(path, json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, default=str
    ))
    return len(events)


def write_trace(spans: Any, path: str) -> int:
    """Format-by-extension convenience: ``.jsonl`` → span log, anything
    else (``.json``, ``.trace``) → Chrome trace events."""
    if path.endswith(".jsonl"):
        return write_spans_jsonl(spans, path)
    return write_chrome_trace(spans, path)


def span_duration_metrics(
    spans: Any, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Fold span records into ``span_seconds{name=...}`` histograms.

    The bridge from traces to metrics: one histogram series per span
    name, plus a ``span_errors_total`` counter.  This is how the CLI's
    ``--metrics-out`` works for the single-translation path (no gateway,
    so no registry of its own) and how ``evalkit profile`` aggregates a
    per-stage breakdown.
    """
    registry = registry if registry is not None else MetricsRegistry()
    durations = registry.histogram(
        "span_seconds", "span durations by span name"
    )
    errors = registry.counter("span_errors_total", "error-status spans by name")
    for record in _records(spans):
        durations.observe(record.get("duration") or 0.0, name=record["name"])
        if record.get("status") == "error":
            errors.inc(name=record["name"])
    return registry


# -- Prometheus text exposition ---------------------------------------------------

# Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; label names drop the colon.
_METRIC_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_METRIC_CHAR = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHAR = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary metric name into the exposition grammar.

    Invalid characters become ``_``; a leading digit gets a ``_`` prefix.
    Idempotent, and the identity on already-valid names — which is every
    name this package registers, so sanitisation only ever fires for
    user-supplied names (e.g. span-derived series)."""
    if _METRIC_NAME_OK.match(name):
        return name
    name = _INVALID_METRIC_CHAR.sub("_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label_name(name: str) -> str:
    """Coerce a label name into the exposition grammar (no colons)."""
    if _LABEL_NAME_OK.match(name):
        return name
    name = _INVALID_LABEL_CHAR.sub("_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (quotes stay literal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_string(items: tuple[tuple[str, str], ...]) -> str:
    if not items:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in items
    )
    return "{" + inner + "}"


def _exemplar_suffix(exemplars: Mapping[Any, Any] | None, index: int) -> str:
    """OpenMetrics-style exemplar: `` # {trace_id="..."} value``.

    Keys may be ints (live registry) or strings (a state that crossed the
    JSON wire codec); both are honoured."""
    if not exemplars:
        return ""
    exemplar = exemplars.get(index)
    if exemplar is None:
        exemplar = exemplars.get(str(index))
    if not exemplar:
        return ""
    trace_id = escape_label_value(str(exemplar.get("trace_id", "")))
    return f' # {{trace_id="{trace_id}"}} {exemplar.get("value", 0.0)}'


def render_prometheus(state: Mapping[str, Any]) -> str:
    """Render a registry ``export_state()`` (or a federated merge of
    several) as the Prometheus text exposition.

    This is the single renderer behind ``MetricsRegistry.render()``, the
    HTTP ``GET /metrics`` endpoint, and the cluster's federated view —
    escaping, name sanitisation, and the cumulative-bucket invariants
    (``le="+Inf"`` equals ``_count``; ``_sum``/``_count`` always emitted)
    are enforced here once.  ``scripts/check_prom.py`` lints the output.
    """
    lines: list[str] = []
    for name in sorted(state):
        metric = state[name]
        pname = sanitize_metric_name(name)
        if metric.get("help"):
            lines.append(f"# HELP {pname} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {pname} {metric['kind']}")
        all_series = sorted(
            metric.get("series", ()),
            key=lambda s: tuple(sorted((s.get("labels") or {}).items())),
        )
        for series in all_series:
            items = tuple(
                sorted(
                    (sanitize_label_name(str(k)), str(v))
                    for k, v in (series.get("labels") or {}).items()
                )
            )
            labels = _label_string(items)
            if metric["kind"] == "histogram":
                cumulative = 0
                bounds = [*metric.get("bounds", ()), float("inf")]
                exemplars = series.get("exemplars")
                for i, (bound, n) in enumerate(
                    zip(bounds, series["buckets"])
                ):
                    cumulative += n
                    le = "+Inf" if bound == float("inf") else repr(float(bound))
                    with_le = _label_string(items + (("le", le),))
                    lines.append(
                        f"{pname}_bucket{with_le} {cumulative}"
                        f"{_exemplar_suffix(exemplars, i)}"
                    )
                lines.append(f"{pname}_sum{labels} {series['sum']}")
                lines.append(f"{pname}_count{labels} {series['count']}")
            else:
                lines.append(f"{pname}{labels} {series['value']}")
    return "\n".join(lines) + "\n"


def write_metrics(
    registry: MetricsRegistry | Mapping[str, Any],
    path: str | IO[str],
    extra_lines: Iterable[str] = (),
) -> None:
    """Write a registry's Prometheus text exposition to ``path``."""
    if isinstance(registry, MetricsRegistry):
        text = registry.render()
    else:  # pre-rendered snapshot mapping: emit as JSON for inspection
        text = json.dumps(dict(registry), indent=2, sort_keys=True, default=str)
    extras = "".join(line + "\n" for line in extra_lines)
    _write(path, text + extras)
