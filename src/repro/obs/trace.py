"""The tracing core: :class:`Tracer` / :class:`Span` context managers.

Design constraints, in order:

1. **Zero cost when disabled.**  The default tracer everywhere is
   :data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns one shared
   no-op context manager — no allocation, no clock read, no lock.  The
   instrumented hot paths (the translator's DP loop runs hundreds of
   stage spans per sentence) pay only a call and a dict build;
   ``benchmarks/bench_obs.py`` enforces the <5 % overhead bar.
2. **One request, one tree — across processes.**  A span carries a
   ``trace_id`` shared by the whole request and a ``parent_id`` link.
   Within a thread, parentage is implicit (a per-thread stack of active
   spans); across threads or the gateway's worker-process boundary it is
   explicit: the parent's ids travel in the request message, the worker
   opens its spans under them, and the finished records travel back in
   the reply for :meth:`Tracer.adopt` to stitch in — with a clock-offset
   shift, because each process has its own ``perf_counter`` epoch.
3. **Monotonic timings.**  Spans are timed with an injectable monotonic
   clock (:mod:`repro.obs.clock`), so duration math is immune to wall
   clock steps and deterministic under :class:`~repro.obs.clock.ManualClock`.

A span that exits on an exception is marked ``status="error"`` with the
exception type recorded; the exception itself propagates unchanged.
Finished spans accumulate in a bounded buffer (oldest kept, newest
dropped past ``max_spans``, with a drop counter) and are read with
:meth:`Tracer.finished` or exported via :mod:`repro.obs.export`.
"""

from __future__ import annotations

import os
import threading
import uuid
from typing import Any, Callable, Iterable, Mapping

from .clock import Clock, perf

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex).  Unique across processes."""
    return uuid.uuid4().hex


def _new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation: a node in a request's trace tree.

    Used as a context manager (``with tracer.span("stage"):``) the span
    participates in the thread-local parent stack; long-lived spans whose
    begin and end live on different threads (a gateway request) skip the
    ``with`` and call :meth:`finish` explicitly instead.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start", "end",
        "status", "attrs", "pid", "thread", "_tracer", "_entered",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.attrs = attrs
        self.pid = os.getpid()
        self.thread = threading.current_thread().name
        self._tracer = tracer
        self._entered = False

    # -- annotations --------------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    def error(self, message: str | None = None) -> "Span":
        """Mark the span failed (without raising)."""
        self.status = "error"
        if message is not None:
            self.attrs.setdefault("error", message)
        return self

    # -- lifecycle ----------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def finish(self) -> "Span":
        """Stamp the end time and hand the record to the tracer (idempotent)."""
        if self.end is None:
            self.end = self._tracer.clock()
            self._tracer._record(self)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._entered:
            self._tracer._pop(self)
            self._entered = False
        if exc_type is not None and self.status == "ok":
            self.error(f"{exc_type.__name__}: {exc}")
        self.finish()

    # -- serialisation ------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """A flat, JSON- and pickle-safe record of this span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": {k: _plain(v) for k, v in self.attrs.items()},
            "pid": self.pid,
            "thread": self.thread,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1000:.2f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, status={self.status!r})"


def _plain(value: Any) -> Any:
    """Coerce an attribute to a JSON-safe primitive."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Tracer:
    """Creates, nests, collects, and stitches spans for export.

    Thread-safe: span creation reads a per-thread parent stack, finished
    records append under a lock.  One tracer may hold many traces (one
    per request); exporters group by ``trace_id``.
    """

    enabled = True

    def __init__(
        self,
        clock: Clock = perf,
        max_spans: int = 200_000,
        ids: Callable[[], str] = _new_span_id,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.clock = clock
        self.max_spans = max_spans
        self._ids = ids
        self._lock = threading.Lock()
        self._finished: list[dict[str, Any]] = []
        self.dropped = 0
        self._stack = threading.local()

    # -- span creation ------------------------------------------------------------

    def span(
        self,
        name: str,
        parent: "Span | None" = None,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span (start time stamped now).

        Parentage resolution, most explicit first: a ``parent`` span
        object; raw ``trace_id``/``parent_id`` strings (the cross-process
        case — the parent span lives in another process); else the
        innermost active span on *this thread*; else a new root with a
        fresh ``trace_id``.
        """
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif trace_id is None:
            current = self.current()
            if current is not None:
                trace_id = current.trace_id
                parent_id = current.span_id
            else:
                trace_id = new_trace_id()
        return Span(
            self, name, trace_id, self._ids(), parent_id,
            self.clock(), attrs,
        )

    def current(self) -> Span | None:
        """The innermost active span on this thread, if any."""
        stack = getattr(self._stack, "spans", None)
        return stack[-1] if stack else None

    # -- collection ---------------------------------------------------------------

    def finished(self) -> list[dict[str, Any]]:
        """A copy of every finished span record (chronological)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> list[dict[str, Any]]:
        """Drain: return the finished records and reset the buffer."""
        with self._lock:
            drained, self._finished = self._finished, []
            self.dropped = 0
            return drained

    def adopt(
        self,
        records: Iterable[Mapping[str, Any]],
        offset: float | None = None,
        align_to: float | None = None,
    ) -> int:
        """Stitch foreign span records (another process's tracer) in.

        ``offset`` shifts every timestamp; ``align_to`` computes the
        offset so the earliest adopted span starts at that local time —
        the gateway aligns a worker's records to the moment it sent the
        request, because the two processes' monotonic clocks share no
        epoch.  Returns the number of records adopted.
        """
        records = [dict(r) for r in records]
        if not records:
            return 0
        if offset is None and align_to is not None:
            offset = align_to - min(r["start"] for r in records)
        if offset:
            for record in records:
                record["start"] += offset
                if record.get("end") is not None:
                    record["end"] += offset
        with self._lock:
            for record in records:
                if len(self._finished) >= self.max_spans:
                    self.dropped += len(records)
                    break
                self._finished.append(record)
        return len(records)

    # -- internals (called by Span) -----------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.dropped += 1
                return
            self._finished.append(span.as_dict())

    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)


class _NullSpan:
    """The shared do-nothing span: every method is a no-op returning self."""

    __slots__ = ()
    name = "null"
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    start = 0.0
    end = 0.0
    duration = 0.0
    finished = True
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def error(self, message: str | None = None) -> "_NullSpan":
        return self

    def finish(self) -> "_NullSpan":
        return self

    def as_dict(self) -> dict[str, Any]:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: free to call, collects nothing."""

    enabled = False
    dropped = 0
    clock = staticmethod(perf)

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def finished(self) -> list[dict[str, Any]]:
        return []

    def clear(self) -> list[dict[str, Any]]:
        return []

    def adopt(self, records, offset=None, align_to=None) -> int:
        return 0


NULL_TRACER = NullTracer()
