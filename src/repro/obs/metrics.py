"""Unified metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per serving component (gateway, cache,
pool) — or one shared across them — replaces the ad-hoc counter dicts
and ``+=`` fields that used to live inside ``CacheStats`` /
``WorkerStats`` / ``GatewayStats``.  Every mutation happens under a
per-metric lock, so the unlocked read-modify-write races the old
hand-rolled counters were prone to (two gateway threads both doing
``counters[name] += 1``) are structurally impossible.

* **Counter** — monotonically increasing float (``_total`` names).
* **Gauge** — a settable level (queue depth, EMA service time).
* **Histogram** — fixed bucket upper bounds, cumulative counts, plus
  ``sum``/``count`` (so averages need no extra metric).

All three support optional labels (``counter.inc(code="ok")``), each
label set tracked as an independent series.  The registry renders a
Prometheus-style text exposition (:meth:`MetricsRegistry.render`) and a
plain-dict :meth:`MetricsRegistry.snapshot`.

The ``snapshot()`` protocol
---------------------------

Every stats object in the package — :class:`MetricsRegistry`,
``CacheStats``, ``WorkerStats``, ``GatewayStats``, and the components
that produce them — exposes ``snapshot() -> dict`` with plain-data
values, so exporters and tests can treat them uniformly
(:class:`SupportsSnapshot`, :func:`snapshot_of`).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

from .clock import Clock, monotonic

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SupportsSnapshot",
    "snapshot_of",
]

# Latency buckets in seconds: 100 us .. 10 s, roughly logarithmic.  The
# paper's interactivity budget (§5: ~10 ms per translation in C#, ~10x
# that in Python) sits comfortably mid-range.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: name, help text, per-metric lock, label series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict[_LabelKey, Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> _LabelKey:
        return _label_key(labels)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            series = {k: self._export(v) for k, v in self._series.items()}
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": series,
        }

    def _export(self, value: Any) -> Any:
        return value


class Counter(_Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0.0)

    def total(self) -> float:
        """The sum across every label set."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Metric):
    """A settable level per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0.0)


class Histogram(_Metric):
    """Fixed-bucket histogram with ``sum`` and ``count`` per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "buckets": [0] * (len(self.bounds) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    series["buckets"][i] += 1
                    break
            else:
                series["buckets"][-1] += 1  # +Inf
            series["sum"] += value
            series["count"] += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series["count"] if series else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series["sum"] if series else 0.0

    def mean(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            if not series or not series["count"]:
                return 0.0
            return series["sum"] / series["count"]

    def _export(self, series: dict) -> dict:
        return {
            "buckets": list(series["buckets"]),
            "sum": series["sum"],
            "count": series["count"],
        }


class _Timer:
    """Context manager feeding one histogram observation."""

    __slots__ = ("_histogram", "_clock", "_labels", "_start", "seconds")

    def __init__(self, histogram: Histogram, clock: Clock, labels: dict) -> None:
        self._histogram = histogram
        self._clock = clock
        self._labels = labels
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = self._clock() - self._start
        self._histogram.observe(self.seconds, **self._labels)


class MetricsRegistry:
    """A named collection of metrics with one creation lock.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name returns the same object; re-registering a
    name as a different kind raises.
    """

    def __init__(self, clock: Clock = monotonic) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def timer(self, name: str, help: str = "", **labels: Any) -> _Timer:
        """``with registry.timer("stage_seconds"): ...`` → one observation."""
        return _Timer(self.histogram(name, help), self.clock, labels)

    # -- the snapshot() protocol ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every metric's current state as plain data (JSON-safe)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, Any] = {}
        for metric in metrics:
            snap = metric.snapshot()
            out[metric.name] = {
                "kind": snap["kind"],
                "help": snap["help"],
                "series": {
                    _render_labels(k) or "": v
                    for k, v in snap["series"].items()
                },
            }
        return out

    def render(self) -> str:
        """Prometheus-style text exposition of every metric."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            snap = metric.snapshot()
            if snap["help"]:
                lines.append(f"# HELP {metric.name} {snap['help']}")
            lines.append(f"# TYPE {metric.name} {snap['kind']}")
            for key, value in sorted(snap["series"].items()):
                labels = _render_labels(key)
                if snap["kind"] == "histogram":
                    cumulative = 0
                    bounds = [*metric.bounds, float("inf")]
                    for bound, n in zip(bounds, value["buckets"]):
                        cumulative += n
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        with_le = _render_labels(key + (("le", le),))
                        lines.append(
                            f"{metric.name}_bucket{with_le} {cumulative}"
                        )
                    lines.append(f"{metric.name}_sum{labels} {value['sum']}")
                    lines.append(f"{metric.name}_count{labels} {value['count']}")
                else:
                    lines.append(f"{metric.name}{labels} {value}")
        return "\n".join(lines) + "\n"


@runtime_checkable
class SupportsSnapshot(Protocol):
    """Anything observable: returns its state as a plain mapping."""

    def snapshot(self) -> Mapping[str, Any]:  # pragma: no cover - protocol
        ...


def snapshot_of(obj: Any) -> dict[str, Any]:
    """Normalise any stats object to a plain dict.

    Prefers the object's own ``snapshot()``; falls back to dataclass
    fields (recursively snapshotting values that support the protocol).
    """
    if isinstance(obj, SupportsSnapshot) and not dataclasses.is_dataclass(obj):
        return dict(obj.snapshot())
    if hasattr(obj, "snapshot") and callable(obj.snapshot):
        return dict(obj.snapshot())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {}
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if hasattr(value, "snapshot"):
                value = snapshot_of(value)
            elif isinstance(value, list):
                value = [
                    snapshot_of(v) if hasattr(v, "snapshot") else v
                    for v in value
                ]
            out[field.name] = value
        return out
    raise TypeError(f"{type(obj).__name__} has no snapshot() and is not a dataclass")
