"""Unified metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per serving component (gateway, cache,
pool) — or one shared across them — replaces the ad-hoc counter dicts
and ``+=`` fields that used to live inside ``CacheStats`` /
``WorkerStats`` / ``GatewayStats``.  Every mutation happens under a
per-metric lock, so the unlocked read-modify-write races the old
hand-rolled counters were prone to (two gateway threads both doing
``counters[name] += 1``) are structurally impossible.

* **Counter** — monotonically increasing float (``_total`` names).
* **Gauge** — a settable level (queue depth, EMA service time).
* **Histogram** — fixed bucket upper bounds, cumulative counts, plus
  ``sum``/``count`` (so averages need no extra metric).

All three support optional labels (``counter.inc(code="ok")``), each
label set tracked as an independent series.  The registry renders a
Prometheus-style text exposition (:meth:`MetricsRegistry.render`) and a
plain-dict :meth:`MetricsRegistry.snapshot`.

The ``snapshot()`` protocol
---------------------------

Every stats object in the package — :class:`MetricsRegistry`,
``CacheStats``, ``WorkerStats``, ``GatewayStats``, and the components
that produce them — exposes ``snapshot() -> dict`` with plain-data
values, so exporters and tests can treat them uniformly
(:class:`SupportsSnapshot`, :func:`snapshot_of`).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

from .clock import Clock, monotonic

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SupportsSnapshot",
    "escape_label_value",
    "snapshot_of",
]

# Latency buckets in seconds: 100 us .. 10 s, roughly logarithmic.  The
# paper's interactivity budget (§5: ~10 ms per translation in C#, ~10x
# that in Python) sits comfortably mid-range.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping.

    The exposition format requires backslash, double-quote, and newline
    escaped inside quoted label values; everything else passes through.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: name, help text, per-metric lock, label series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict[_LabelKey, Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> _LabelKey:
        return _label_key(labels)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            series = {k: self._export(v) for k, v in self._series.items()}
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": series,
        }

    def state(self) -> dict[str, Any]:
        """The federation-facing structured view of this metric.

        Unlike :meth:`snapshot` (whose series keys are pre-rendered
        Prometheus label strings), ``state()`` keeps labels as plain
        mappings so merged/folded views can be rebuilt and re-rendered
        (:mod:`repro.obs.telemetry.federation`).  JSON-safe by
        construction — this is what the telemetry wire codec ships.
        """
        with self._lock:
            series = [
                {"labels": dict(k), **self._state_value(v)}
                for k, v in self._series.items()
            ]
        out = {"kind": self.kind, "help": self.help, "series": series}
        out.update(self._state_extra())
        return out

    def _export(self, value: Any) -> Any:
        return value

    def _state_value(self, value: Any) -> dict[str, Any]:
        return {"value": float(self._export(value))}

    def _state_extra(self) -> dict[str, Any]:
        return {}


class Counter(_Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0.0)

    def total(self) -> float:
        """The sum across every label set."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Metric):
    """A settable level per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0.0)


class Histogram(_Metric):
    """Fixed-bucket histogram with ``sum`` and ``count`` per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds

    def observe(
        self, value: float, exemplar: str | None = None, **labels: Any
    ) -> None:
        """Record one observation; ``exemplar`` (a trace id) is retained
        per bucket and emitted OpenMetrics-style in the text export, so a
        scraped latency bucket links back to a concrete trace."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._new_series()
            self._record(series, float(value), exemplar)

    def _new_series(self) -> dict:
        return {
            "buckets": [0] * (len(self.bounds) + 1),
            "sum": 0.0,
            "count": 0,
        }

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)  # +Inf

    def _record(self, series: dict, value: float, exemplar: str | None) -> None:
        index = self._bucket_index(value)
        series["buckets"][index] += 1
        series["sum"] += value
        series["count"] += 1
        if exemplar:
            series.setdefault("exemplars", {})[index] = {
                "trace_id": str(exemplar),
                "value": value,
            }

    def merge_series(
        self,
        labels: Mapping[str, Any],
        buckets: Iterable[int],
        sum: float,
        count: int,
        exemplars: Mapping[Any, Mapping[str, Any]] | None = None,
    ) -> None:
        """Fold a foreign series (same bounds) into this histogram.

        This is the federation entry point: a worker's delta or another
        shard's snapshot adds bucket-wise.  Bounds must match — callers
        that cannot guarantee it validate via the telemetry codec first.
        """
        buckets = [int(b) for b in buckets]
        if len(buckets) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge {len(buckets)} "
                f"buckets into {len(self.bounds) + 1}"
            )
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._new_series()
            self._merge_into(series, buckets, float(sum), int(count), exemplars)

    def _merge_into(
        self,
        series: dict,
        buckets: list[int],
        sum: float,
        count: int,
        exemplars: Mapping[Any, Mapping[str, Any]] | None,
    ) -> None:
        for i, n in enumerate(buckets):
            series["buckets"][i] += n
        series["sum"] += sum
        series["count"] += count
        if exemplars:
            slot = series.setdefault("exemplars", {})
            for index, exemplar in exemplars.items():
                slot[int(index)] = {
                    "trace_id": str(exemplar["trace_id"]),
                    "value": float(exemplar["value"]),
                }

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series["count"] if series else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series["sum"] if series else 0.0

    def mean(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            if not series or not series["count"]:
                return 0.0
            return series["sum"] / series["count"]

    def _export(self, series: dict) -> dict:
        out = {
            "buckets": list(series["buckets"]),
            "sum": series["sum"],
            "count": series["count"],
        }
        exemplars = series.get("exemplars")
        if exemplars:
            out["exemplars"] = {
                int(i): dict(e) for i, e in exemplars.items()
            }
        return out

    def _state_value(self, series: dict) -> dict[str, Any]:
        return self._export(series)

    def _state_extra(self) -> dict[str, Any]:
        return {"bounds": list(self.bounds)}


class _Timer:
    """Context manager feeding one histogram observation."""

    __slots__ = ("_histogram", "_clock", "_labels", "_start", "seconds")

    def __init__(self, histogram: Histogram, clock: Clock, labels: dict) -> None:
        self._histogram = histogram
        self._clock = clock
        self._labels = labels
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = self._clock() - self._start
        self._histogram.observe(self.seconds, **self._labels)


class MetricsRegistry:
    """A named collection of metrics with one creation lock.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name returns the same object; re-registering a
    name as a different kind raises.
    """

    def __init__(self, clock: Clock = monotonic) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def windowed_counter(
        self,
        name: str,
        help: str = "",
        interval: float = 60.0,
        horizon: float = 21600.0,
    ) -> "Any":
        """A counter that additionally answers rate-over-last-N-seconds
        queries (:class:`repro.obs.telemetry.WindowedCounter`).  Exports
        exactly like a plain counter; the ring is query-side only."""
        from .telemetry.windows import WindowedCounter

        return self._get(
            WindowedCounter, name, help,
            interval=interval, horizon=horizon, clock=self.clock,
        )

    def windowed_histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        interval: float = 10.0,
        horizon: float = 600.0,
    ) -> "Any":
        """A histogram that additionally answers quantile-over-last-N-
        seconds queries (:class:`repro.obs.telemetry.WindowedHistogram`)."""
        from .telemetry.windows import WindowedHistogram

        return self._get(
            WindowedHistogram, name, help, buckets=buckets,
            interval=interval, horizon=horizon, clock=self.clock,
        )

    def timer(self, name: str, help: str = "", **labels: Any) -> _Timer:
        """``with registry.timer("stage_seconds"): ...`` → one observation."""
        return _Timer(self.histogram(name, help), self.clock, labels)

    # -- the snapshot() protocol ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every metric's current state as plain data (JSON-safe)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, Any] = {}
        for metric in metrics:
            snap = metric.snapshot()
            out[metric.name] = {
                "kind": snap["kind"],
                "help": snap["help"],
                "series": {
                    _render_labels(k) or "": v
                    for k, v in snap["series"].items()
                },
            }
        return out

    def export_state(self) -> dict[str, Any]:
        """Every metric's :meth:`_Metric.state` keyed by name.

        The structured form the telemetry plane federates: JSON-safe,
        merge-able (:func:`repro.obs.telemetry.merge_states`), and
        renderable back to Prometheus text
        (:func:`repro.obs.export.render_prometheus`)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.state() for metric in metrics}

    def render(self) -> str:
        """Prometheus-style text exposition of every metric."""
        from .export import render_prometheus

        return render_prometheus(self.export_state())


@runtime_checkable
class SupportsSnapshot(Protocol):
    """Anything observable: returns its state as a plain mapping."""

    def snapshot(self) -> Mapping[str, Any]:  # pragma: no cover - protocol
        ...


def snapshot_of(obj: Any) -> dict[str, Any]:
    """Normalise any stats object to a plain dict.

    Prefers the object's own ``snapshot()``; falls back to dataclass
    fields (recursively snapshotting values that support the protocol).
    """
    if isinstance(obj, SupportsSnapshot) and not dataclasses.is_dataclass(obj):
        return dict(obj.snapshot())
    if hasattr(obj, "snapshot") and callable(obj.snapshot):
        return dict(obj.snapshot())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {}
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if hasattr(value, "snapshot"):
                value = snapshot_of(value)
            elif isinstance(value, list):
                value = [
                    snapshot_of(v) if hasattr(v, "snapshot") else v
                    for v in value
                ]
            out[field.name] = value
        return out
    raise TypeError(f"{type(obj).__name__} has no snapshot() and is not a dataclass")
