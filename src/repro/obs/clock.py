"""Injectable monotonic clocks — the timing test seam.

Every latency/stats component in the package (budgets, caches, breakers,
the gateway, the tracer, the metrics registry) takes a ``clock`` callable
instead of calling :func:`time.perf_counter` / :func:`time.monotonic`
directly.  Production code passes nothing and gets the real clock;
timing tests pass a :class:`ManualClock` and advance it explicitly, so
assertions about elapsed seconds are exact instead of sleep-and-hope.

Two real clocks are exposed by name so call sites document their intent:

* :data:`monotonic` — coarse monotonic wall clock (deadlines, TTLs);
* :data:`perf` — high-resolution monotonic clock (span timings, latency
  histograms).

Both are monotonic; the split mirrors the stdlib's own distinction.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "ManualClock", "monotonic", "perf", "wall"]

# A clock is any argument-less callable returning seconds as a float.
Clock = Callable[[], float]

monotonic: Clock = time.monotonic
perf: Clock = time.perf_counter
wall: Clock = time.time  # NOT monotonic; only for human-facing timestamps


class ManualClock:
    """A deterministic clock driven by the test, not the scheduler.

    Reads return the current value; :meth:`advance` moves time forward.
    ``tick`` (default 0) is added on *every read*, which lets code that
    measures ``clock() - clock()`` style intervals observe non-zero
    durations without the test scripting every read.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise ValueError("tick must be >= 0")
        self.now = start
        self.tick = tick
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        self.now += self.tick
        return self.now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.now += seconds
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManualClock(now={self.now}, tick={self.tick})"
