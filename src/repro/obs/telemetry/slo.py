"""Declarative SLOs with error budgets and multi-window burn-rate alerts.

An :class:`SloSpec` states an objective ("99% of requests succeed",
"95% of tier-0 translations return within 120 ms", "under 2% of
requests shed"); the :class:`SloEngine` classifies every finished
request against each spec and answers, at any moment:

* the good/bad counts and error rate over each alerting window,
* the **burn rate** — error rate divided by the error budget
  (``1 - objective``), so burn 1.0 means "spending budget exactly at
  the rate that exhausts it at the period's end",
* multi-window multi-burn-rate alerts in the Google SRE workbook shape:
  a *fast* pair (5 m and 1 h both burning > 14.4×) catches sudden
  storms in minutes, a *slow* pair (1 h and 6 h both > 6×) catches
  simmering regressions; requiring **both** windows of a pair keeps a
  brief blip from paging while the long window is still digesting an
  old incident,
* budget consumed/remaining over the longest configured window.

Events land in one :class:`~repro.obs.telemetry.windows.WindowedCounter`
(``slo_events_total{scope, slo, verdict}``), so the engine federates
and renders like any other metric, and a :class:`ManualClock` makes the
whole alert ladder deterministically testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..clock import Clock, monotonic
from ..metrics import MetricsRegistry

__all__ = [
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "SloEngine",
    "SloSpec",
    "default_slos",
]

# Error codes that reflect the caller's input, not service health: a bad
# sentence costs no availability budget.
INPUT_CODES = frozenset({
    "translation_error", "type_error", "bad_request", "sheet_error",
    "unknown_table", "unknown_column", "bad_address",
})

# Codes excluded from availability entirely (neither good nor bad): the
# caller gave up or spent its own budget; the service did its job.
NEUTRAL_CODES = frozenset({"cancelled", "deadline_exhausted"})


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate alert: fire when BOTH windows burn
    faster than ``factor`` times the sustainable rate."""

    name: str
    long_seconds: float
    short_seconds: float
    factor: float


# The SRE-workbook ladder: page on fast burn, ticket on slow burn.
DEFAULT_BURN_RULES = (
    BurnRule("fast", long_seconds=3600.0, short_seconds=300.0, factor=14.4),
    BurnRule("slow", long_seconds=21600.0, short_seconds=3600.0, factor=6.0),
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective.

    ``kind`` selects the classifier:

    * ``availability`` — bad when the request failed for a service
      reason (input errors and neutral codes are excluded);
    * ``latency`` — over successful requests of ladder rung ``tier``,
      bad when latency exceeded ``threshold`` seconds;
    * ``shed_rate`` — bad when the request was shed (queue full,
      breaker open): an objective on admission, not completion.
    """

    name: str
    kind: str
    objective: float
    threshold: float | None = None
    tier: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency", "shed_rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind == "latency" and self.threshold is None:
            raise ValueError("latency SLOs need a threshold")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    def classify(
        self,
        ok: bool,
        error_code: str | None,
        tier: str | None,
        seconds: float | None,
        shed: bool,
    ) -> bool | None:
        """True = good, False = bad, None = not in this SLO's population."""
        if self.kind == "shed_rate":
            return not shed
        if self.kind == "latency":
            if not ok or seconds is None:
                return None
            if self.tier is not None and tier != self.tier:
                return None
            return seconds <= self.threshold
        if ok:
            return True
        if error_code in INPUT_CODES or error_code in NEUTRAL_CODES:
            return None
        return False

    def as_dict(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "budget": self.budget,
        }
        if self.threshold is not None:
            out["threshold"] = self.threshold
        if self.tier is not None:
            out["tier"] = self.tier
        if self.description:
            out["description"] = self.description
        return out


def default_slos(latency_threshold: float = 0.5) -> tuple[SloSpec, ...]:
    """The serving stack's stock objectives.

    Availability at three nines of service health, p95-style latency per
    degradation-ladder rung (``full`` is the interactive tier, so it
    gets the tight threshold; degraded rungs already paid their latency
    in search cuts, so they get half), and a shed ceiling.
    ``latency_threshold`` scales the whole ladder.
    """
    return (
        SloSpec(
            "availability", "availability", 0.999,
            description="non-input errors per finished request",
        ),
        SloSpec(
            "latency_full", "latency", 0.95,
            threshold=latency_threshold, tier="full",
            description="full-fidelity rung under the deadline",
        ),
        SloSpec(
            "latency_reduced", "latency", 0.95,
            threshold=latency_threshold / 2, tier="reduced",
            description="reduced rung under half the deadline",
        ),
        SloSpec(
            "shed_rate", "shed_rate", 0.98,
            description="requests admitted rather than shed",
        ),
    )


class SloEngine:
    """Classify finished requests and report budgets, burns, and alerts."""

    def __init__(
        self,
        specs: Iterable[SloSpec] = (),
        *,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
        scope: str = "gateway",
        interval: float = 60.0,
        burn_rules: Iterable[BurnRule] = DEFAULT_BURN_RULES,
    ) -> None:
        self.specs = tuple(specs) or default_slos()
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("SLO spec names must be unique")
        self.burn_rules = tuple(burn_rules)
        self.scope = scope
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            clock=clock or monotonic
        )
        self._clock = clock or self.metrics.clock
        horizon = max(
            [rule.long_seconds for rule in self.burn_rules] or [21600.0]
        )
        self.horizon = horizon
        self._events = self.metrics.windowed_counter(
            "slo_events_total",
            "good/bad events per SLO",
            interval=interval,
            horizon=horizon,
        )

    def record(
        self,
        *,
        ok: bool,
        error_code: str | None = None,
        tier: str | None = None,
        seconds: float | None = None,
        shed: bool = False,
    ) -> None:
        """Classify one finished request against every spec."""
        for spec in self.specs:
            verdict = spec.classify(ok, error_code, tier, seconds, shed)
            if verdict is None:
                continue
            self._events.inc(
                scope=self.scope,
                slo=spec.name,
                verdict="good" if verdict else "bad",
            )

    # -- reporting -----------------------------------------------------------------

    def _window(self, spec: SloSpec, seconds: float) -> dict[str, Any]:
        good = self._events.window_sum(
            seconds, scope=self.scope, slo=spec.name, verdict="good"
        )
        bad = self._events.window_sum(
            seconds, scope=self.scope, slo=spec.name, verdict="bad"
        )
        total = good + bad
        error_rate = bad / total if total else 0.0
        return {
            "seconds": seconds,
            "good": good,
            "bad": bad,
            "total": total,
            "error_rate": error_rate,
            "burn_rate": error_rate / spec.budget,
        }

    @staticmethod
    def _window_label(seconds: float) -> str:
        if seconds % 3600 == 0:
            return f"{int(seconds // 3600)}h"
        if seconds % 60 == 0:
            return f"{int(seconds // 60)}m"
        return f"{int(seconds)}s"

    def report(self) -> dict[str, Any]:
        """The full ``/slo`` document: JSON-safe, deterministic order."""
        window_seconds = sorted(
            {rule.short_seconds for rule in self.burn_rules}
            | {rule.long_seconds for rule in self.burn_rules}
        )
        slos = []
        healthy = True
        for spec in self.specs:
            windows = {
                self._window_label(seconds): self._window(spec, seconds)
                for seconds in window_seconds
            }
            alerts = []
            for rule in self.burn_rules:
                long_w = self._window(spec, rule.long_seconds)
                short_w = self._window(spec, rule.short_seconds)
                fired = (
                    long_w["total"] > 0
                    and short_w["total"] > 0
                    and long_w["burn_rate"] > rule.factor
                    and short_w["burn_rate"] > rule.factor
                )
                alerts.append({
                    "rule": rule.name,
                    "factor": rule.factor,
                    "long_window": self._window_label(rule.long_seconds),
                    "short_window": self._window_label(rule.short_seconds),
                    "long_burn_rate": long_w["burn_rate"],
                    "short_burn_rate": short_w["burn_rate"],
                    "fired": fired,
                })
                healthy = healthy and not fired
            longest = self._window(spec, self.horizon)
            consumed = (
                longest["burn_rate"]  # = error_rate / budget: the budget
                # fraction an equally-long SLO period would have spent.
            )
            slos.append({
                **spec.as_dict(),
                "windows": windows,
                "alerts": alerts,
                "budget_consumed": consumed,
                "budget_remaining": max(0.0, 1.0 - consumed),
            })
        return {"scope": self.scope, "healthy": healthy, "slos": slos}

    def snapshot(self) -> Mapping[str, Any]:
        return self.report()
