"""Cross-process and cross-shard metric federation.

Three primitives, composed at two levels of the serving stack:

* :class:`DeltaTracker` — a worker-side cursor over its registry:
  ``delta()`` returns only what changed since the previous call, so the
  piggybacked blob on each reply-pipe message stays proportional to the
  work done for *that* request, not the worker's lifetime.
* :func:`merge_states` — the pure fold: counters and gauges sum per
  label set, histograms add bucket-wise (exact, because every series
  shares fixed bounds).  This is how the cluster presents one
  ``/metrics`` view over N shard registries.
* :func:`fold_state` — replay a (decoded, validated) state into a live
  registry, so a gateway's registry accumulates its workers' counters
  as if the observations had happened in-process.

Topology::

    worker registry --delta--> reply pipe --fold--> gateway registry
    gateway registry x N  --merge--> cluster federated view --> /metrics

Deltas cross the wire through the strict codec
(:mod:`repro.obs.telemetry.codec`); merge/fold assume already-validated
state and raise :class:`ValueError` on shape conflicts (mismatched
histogram bounds, kind collisions) — callers count-and-drop.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..metrics import MetricsRegistry

__all__ = ["DeltaTracker", "fold_state", "merge_states"]


def _series_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class DeltaTracker:
    """Incremental cursor over one registry's ``export_state()``.

    Counters and histograms report the *increment* since the last call
    (nothing when unchanged); gauges always report their current level
    (a level has no meaningful diff).  The tracker assumes a single
    caller — in practice the worker loop, which is single-threaded.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._last: dict[str, dict[tuple, dict[str, Any]]] = {}

    def delta(self) -> dict[str, Any]:
        """State-shaped mapping of everything new since the last call."""
        state = self.registry.export_state()
        out: dict[str, Any] = {}
        for name, metric in state.items():
            previous = self._last.setdefault(name, {})
            fresh: list[dict[str, Any]] = []
            for series in metric["series"]:
                key = _series_key(series["labels"])
                if metric["kind"] == "histogram":
                    diff = self._histogram_diff(series, previous.get(key))
                elif metric["kind"] == "counter":
                    diff = self._counter_diff(series, previous.get(key))
                else:  # gauge: levels are absolute, always current
                    diff = {"labels": series["labels"], "value": series["value"]}
                previous[key] = series
                if diff is not None:
                    fresh.append(diff)
            if fresh:
                out[name] = {
                    "kind": metric["kind"],
                    "help": metric["help"],
                    "series": fresh,
                }
                if "bounds" in metric:
                    out[name]["bounds"] = metric["bounds"]
        return out

    @staticmethod
    def _counter_diff(series, previous):
        seen = previous["value"] if previous else 0.0
        increment = series["value"] - seen
        if increment <= 0:
            return None
        return {"labels": series["labels"], "value": increment}

    @staticmethod
    def _histogram_diff(series, previous):
        if previous is None:
            diff = {k: v for k, v in series.items()}
            return diff if series["count"] else None
        count = series["count"] - previous["count"]
        if count <= 0:
            return None
        diff = {
            "labels": series["labels"],
            "buckets": [
                n - m for n, m in zip(series["buckets"], previous["buckets"])
            ],
            "sum": series["sum"] - previous["sum"],
            "count": count,
        }
        if series.get("exemplars"):
            diff["exemplars"] = series["exemplars"]
        return diff


def merge_states(*states: Mapping[str, Any]) -> dict[str, Any]:
    """Fold N registry states into one: the federated view.

    Counters and gauges sum per label set; histograms add bucket-wise
    and keep the freshest exemplar per bucket (later states win, so
    callers list shards in a stable order).  A metric name registered
    with conflicting kinds or bounds raises :class:`ValueError` —
    federation never papers over a schema disagreement.
    """
    merged: dict[str, Any] = {}
    for state in states:
        for name, metric in state.items():
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "kind": metric["kind"],
                    "help": metric["help"],
                    "series": {},
                }
                if "bounds" in metric:
                    target["bounds"] = list(metric["bounds"])
            if target["kind"] != metric["kind"]:
                raise ValueError(
                    f"metric {name!r}: cannot merge kind "
                    f"{metric['kind']!r} into {target['kind']!r}"
                )
            if metric["kind"] == "histogram" and list(
                metric.get("bounds", ())
            ) != target.get("bounds"):
                raise ValueError(
                    f"metric {name!r}: cannot merge histograms with "
                    "different bucket bounds"
                )
            for series in metric["series"]:
                key = _series_key(series["labels"])
                slot = target["series"].get(key)
                if slot is None:
                    slot = target["series"][key] = {
                        "labels": dict(series["labels"])
                    }
                    if metric["kind"] == "histogram":
                        slot["buckets"] = [0] * len(series["buckets"])
                        slot["sum"] = 0.0
                        slot["count"] = 0
                    else:
                        slot["value"] = 0.0
                if metric["kind"] == "histogram":
                    for i, n in enumerate(series["buckets"]):
                        slot["buckets"][i] += n
                    slot["sum"] += series["sum"]
                    slot["count"] += series["count"]
                    if series.get("exemplars"):
                        merged_exemplars = slot.setdefault("exemplars", {})
                        for index, exemplar in series["exemplars"].items():
                            merged_exemplars[int(index)] = dict(exemplar)
                else:
                    slot["value"] += series["value"]
    # Rebuild list-shaped series in deterministic label order.
    return {
        name: {
            **{k: v for k, v in metric.items() if k != "series"},
            "series": [
                metric["series"][key] for key in sorted(metric["series"])
            ],
        }
        for name, metric in merged.items()
    }


def fold_state(registry: MetricsRegistry, state: Mapping[str, Any]) -> None:
    """Replay a state (typically a worker delta) into a live registry.

    Counter values :meth:`~repro.obs.metrics.Counter.inc`, gauges
    :meth:`~repro.obs.metrics.Gauge.set`, histogram series merge
    bucket-wise.  Raises :class:`ValueError` on kind/bounds conflicts
    with already-registered metrics; callers count-and-drop.
    """
    for name, metric in state.items():
        kind = metric["kind"]
        if kind == "counter":
            counter = registry.counter(name, metric.get("help", ""))
            for series in metric["series"]:
                counter.inc(series["value"], **series["labels"])
        elif kind == "gauge":
            gauge = registry.gauge(name, metric.get("help", ""))
            for series in metric["series"]:
                gauge.set(series["value"], **series["labels"])
        else:
            histogram = registry.histogram(
                name, metric.get("help", ""), buckets=metric["bounds"]
            )
            if list(histogram.bounds) != [
                float(b) for b in metric["bounds"]
            ]:
                raise ValueError(
                    f"metric {name!r}: cannot fold histogram with "
                    "different bucket bounds"
                )
            for series in metric["series"]:
                histogram.merge_series(
                    series["labels"],
                    series["buckets"],
                    series["sum"],
                    series["count"],
                    exemplars=series.get("exemplars"),
                )
