"""Windowed time-series: rate/quantile over the last N seconds, exactly.

The registry's :class:`~repro.obs.metrics.Histogram` and
:class:`~repro.obs.metrics.Counter` are cumulative — perfect for
Prometheus scrapes, useless for "what was p95 over the last minute"
without a scraper doing rate math.  The telemetry plane needs those
answers *in process* (the SLO engine's burn windows, the ``/slo``
surface), so :class:`WindowedHistogram` / :class:`WindowedCounter` layer
a ring of per-interval sub-series under the cumulative state:

* every observation updates the cumulative series (so the Prometheus
  export and the ``snapshot()`` protocol are byte-identical to the plain
  metrics) *and* the ring slot covering "now";
* a slot is a fixed-size bucket array (histograms) or a float
  (counters), so a window query merges ``ceil(window/interval)`` slots —
  O(buckets × slots), no per-observation storage, bounded memory;
* slots are recycled lazily: writing into a slot whose epoch has moved
  on resets it, so an idle series costs nothing;
* clocks are injectable (the registry's clock), so every window query is
  deterministic under :class:`~repro.obs.clock.ManualClock`.

Counts are exact per bucket; only the *window edge* is quantised to the
slot interval (a 60 s window over 10 s slots may include up to 9.99 s of
extra history).  That is the standard multi-window trade: the SLO burn
windows (5 m/1 h/6 h) are two orders of magnitude above the interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

from ..clock import Clock, monotonic
from ..metrics import DEFAULT_BUCKETS, Counter, Histogram

__all__ = ["WindowSnapshot", "WindowedCounter", "WindowedHistogram"]


def _ring_params(interval: float, horizon: float) -> tuple[float, int]:
    if interval <= 0:
        raise ValueError("window interval must be positive")
    if horizon < interval:
        raise ValueError("window horizon must cover at least one interval")
    return float(interval), int(math.ceil(horizon / interval))


@dataclass
class WindowSnapshot:
    """A merged view over one window: mergeable, quantile-queryable."""

    bounds: tuple[float, ...]
    buckets: list[int]
    sum: float = 0.0
    count: int = 0
    seconds: float = 0.0

    def merge(self, other: "WindowSnapshot") -> "WindowSnapshot":
        """Fold another snapshot (same bounds) into this one, in place.

        This is the cross-series / cross-shard fold: exact because the
        buckets are fixed and shared."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge windows with different bounds")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.sum += other.sum
        self.count += other.count
        self.seconds = max(self.seconds, other.seconds)
        return self

    @property
    def rate(self) -> float:
        """Observations per second over the window."""
        return self.count / self.seconds if self.seconds else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The bucket upper bound at quantile ``q`` (0 < q <= 1).

        Exact at bucket granularity: the smallest bound whose cumulative
        count reaches ``q * count``.  Returns ``inf`` when the quantile
        lands in the overflow bucket, ``0.0`` on an empty window.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for bound, n in zip((*self.bounds, math.inf), self.buckets):
            cumulative += n
            if cumulative >= rank:
                return float(bound)
        return math.inf  # pragma: no cover - buckets always sum to count

    def snapshot(self) -> dict[str, Any]:
        return {
            "seconds": self.seconds,
            "count": self.count,
            "sum": self.sum,
            "rate": self.rate,
            "buckets": list(self.buckets),
        }


class WindowedHistogram(Histogram):
    """A cumulative histogram plus a per-interval ring for window queries.

    Registered via ``registry.windowed_histogram(...)``; exports exactly
    like a plain :class:`Histogram` (the ring never crosses a snapshot or
    the Prometheus text), and additionally answers
    :meth:`window` / :meth:`quantile` over the last N seconds.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        interval: float = 10.0,
        horizon: float = 600.0,
        clock: Clock = monotonic,
    ) -> None:
        super().__init__(name, help, buckets)
        self.interval, self.slots = _ring_params(interval, horizon)
        self.horizon = self.interval * self.slots
        self._clock = clock

    def _new_series(self) -> dict:
        series = super()._new_series()
        series["ring"] = [None] * self.slots
        return series

    def _slot(self, series: dict) -> dict:
        epoch = int(self._clock() // self.interval)
        position = epoch % self.slots
        slot = series["ring"][position]
        if slot is None or slot["epoch"] != epoch:
            slot = series["ring"][position] = {
                "epoch": epoch,
                "buckets": [0] * (len(self.bounds) + 1),
                "sum": 0.0,
                "count": 0,
            }
        return slot

    def _record(self, series: dict, value: float, exemplar: str | None) -> None:
        super()._record(series, value, exemplar)
        slot = self._slot(series)
        slot["buckets"][self._bucket_index(value)] += 1
        slot["sum"] += value
        slot["count"] += 1

    def _merge_into(self, series, buckets, sum, count, exemplars) -> None:
        # Federated deltas land in the slot covering "now": the fold is
        # the moment the remote work became visible here.
        super()._merge_into(series, buckets, sum, count, exemplars)
        slot = self._slot(series)
        for i, n in enumerate(buckets):
            slot["buckets"][i] += n
        slot["sum"] += sum
        slot["count"] += count

    def _export(self, series: dict) -> dict:
        return super()._export(series)  # ring deliberately excluded

    def window(self, seconds: float, **labels: Any) -> WindowSnapshot:
        """Merge every ring slot overlapping the last ``seconds``."""
        horizon = min(float(seconds), self.horizon)
        if horizon <= 0:
            raise ValueError("window seconds must be positive")
        now = self._clock()
        start = now - horizon
        current_epoch = int(now // self.interval)
        merged = WindowSnapshot(
            bounds=self.bounds,
            buckets=[0] * (len(self.bounds) + 1),
            seconds=horizon,
        )
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is not None:
                for slot in series["ring"]:
                    if slot is None or slot["epoch"] > current_epoch:
                        continue
                    if (slot["epoch"] + 1) * self.interval <= start:
                        continue  # entirely before the window
                    for i, n in enumerate(slot["buckets"]):
                        merged.buckets[i] += n
                    merged.sum += slot["sum"]
                    merged.count += slot["count"]
        return merged

    def quantile(self, q: float, seconds: float, **labels: Any) -> float:
        return self.window(seconds, **labels).quantile(q)


class WindowedCounter(Counter):
    """A cumulative counter plus a per-interval ring for rate queries.

    Exports exactly like a plain :class:`Counter`; additionally answers
    :meth:`window_sum` / :meth:`rate` over the last N seconds.  The
    default ring (60 s slots over 6 h) covers the SLO engine's slowest
    burn window.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        interval: float = 60.0,
        horizon: float = 21600.0,
        clock: Clock = monotonic,
    ) -> None:
        super().__init__(name, help)
        self.interval, self.slots = _ring_params(interval, horizon)
        self.horizon = self.interval * self.slots
        self._clock = clock

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        epoch = int(self._clock() // self.interval)
        position = epoch % self.slots
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "total": 0.0,
                    "ring": [None] * self.slots,
                }
            series["total"] += amount
            slot = series["ring"][position]
            if slot is None or slot[0] != epoch:
                slot = series["ring"][position] = [epoch, 0.0]
            slot[1] += amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series["total"] if series else 0.0

    def total(self) -> float:
        with self._lock:
            return sum(s["total"] for s in self._series.values())

    def _export(self, series: dict) -> float:
        return series["total"]

    def _state_value(self, series: dict) -> dict[str, Any]:
        return {"value": float(series["total"])}

    def window_sum(self, seconds: float, **labels: Any) -> float:
        """The amount added over the last ``seconds``."""
        horizon = min(float(seconds), self.horizon)
        if horizon <= 0:
            raise ValueError("window seconds must be positive")
        now = self._clock()
        start = now - horizon
        current_epoch = int(now // self.interval)
        total = 0.0
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is not None:
                for slot in series["ring"]:
                    if slot is None or slot[0] > current_epoch:
                        continue
                    if (slot[0] + 1) * self.interval <= start:
                        continue
                    total += slot[1]
        return total

    def rate(self, seconds: float, **labels: Any) -> float:
        """Increments per second over the last ``seconds``."""
        horizon = min(float(seconds), self.horizon)
        return self.window_sum(horizon, **labels) / horizon if horizon else 0.0
