"""Versioned wire codec for federated telemetry state.

Registry state crosses two trust boundaries: worker → gateway (deltas
piggybacked on reply-pipe messages) and shard → cluster (whole-registry
folds behind the federated ``/metrics`` view).  Both sides follow the
:mod:`repro.cache.codec` discipline:

* **strict on decode** — a blob is either exactly what
  :func:`encode_state` produced (version match, known kinds, shaped
  series, histogram invariants) or :class:`TelemetryCodecError`; no
  best-effort repair, because a half-validated delta silently skews every
  downstream burn-rate computation;
* **droppable** — callers treat a decode failure as a dropped delta
  (counted in ``telemetry_fold_errors_total``), never a crash: a corrupt
  metrics blob from a worker must not take serving down;
* **compact deterministic JSON** — ``separators=(",", ":")``,
  ``ensure_ascii=False``, so identical state encodes to identical bytes.

The payload wraps a registry ``export_state()`` mapping (see
:meth:`repro.obs.metrics.MetricsRegistry.export_state`).
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping

from ...errors import TelemetryCodecError

__all__ = ["TELEMETRY_WIRE_VERSION", "decode_state", "encode_state"]

TELEMETRY_WIRE_VERSION = 1

_KINDS = ("counter", "gauge", "histogram")


def _fail(message: str) -> None:
    raise TelemetryCodecError(f"telemetry codec: {message}")


def _check_number(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{where} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        _fail(f"{where} must be finite, got {value!r}")
    return float(value)


def _check_labels(labels: Any, where: str) -> dict[str, str]:
    if not isinstance(labels, dict):
        _fail(f"{where}: labels must be an object")
    for key, value in labels.items():
        if not isinstance(key, str) or not isinstance(value, str):
            _fail(f"{where}: label {key!r} must map str to str")
    return labels


def _check_exemplars(exemplars: Any, buckets: int, where: str) -> None:
    if not isinstance(exemplars, dict):
        _fail(f"{where}: exemplars must be an object")
    for index, exemplar in exemplars.items():
        try:
            position = int(index)
        except (TypeError, ValueError):
            _fail(f"{where}: exemplar index {index!r} is not an integer")
        if not 0 <= position < buckets:
            _fail(f"{where}: exemplar index {position} out of range")
        if not isinstance(exemplar, dict):
            _fail(f"{where}: exemplar {index!r} must be an object")
        if not isinstance(exemplar.get("trace_id"), str):
            _fail(f"{where}: exemplar {index!r} needs a string trace_id")
        _check_number(exemplar.get("value"), f"{where}: exemplar value")


def _check_histogram(name: str, metric: Mapping[str, Any]) -> None:
    bounds = metric.get("bounds")
    if not isinstance(bounds, list) or not bounds:
        _fail(f"metric {name!r}: histogram needs a bounds list")
    previous = -math.inf
    for bound in bounds:
        bound = _check_number(bound, f"metric {name!r}: bound")
        if bound <= previous:
            _fail(f"metric {name!r}: bounds must be strictly increasing")
        previous = bound
    for series in metric["series"]:
        where = f"metric {name!r} series"
        buckets = series.get("buckets")
        if not isinstance(buckets, list):
            _fail(f"{where}: buckets must be a list")
        if len(buckets) != len(bounds) + 1:
            _fail(
                f"{where}: expected {len(bounds) + 1} buckets, "
                f"got {len(buckets)}"
            )
        total = 0
        for n in buckets:
            if isinstance(n, bool) or not isinstance(n, int) or n < 0:
                _fail(f"{where}: bucket counts must be non-negative ints")
            total += n
        _check_number(series.get("sum"), f"{where}: sum")
        count = series.get("count")
        if isinstance(count, bool) or not isinstance(count, int) or count < 0:
            _fail(f"{where}: count must be a non-negative int")
        if count != total:
            _fail(f"{where}: count {count} != bucket total {total}")
        if "exemplars" in series:
            _check_exemplars(series["exemplars"], len(buckets), where)


def _check_state(state: Any) -> dict[str, Any]:
    if not isinstance(state, dict):
        _fail("state must be an object of metrics")
    for name, metric in state.items():
        if not isinstance(name, str) or not name:
            _fail(f"metric name {name!r} must be a non-empty string")
        if not isinstance(metric, dict):
            _fail(f"metric {name!r} must be an object")
        kind = metric.get("kind")
        if kind not in _KINDS:
            _fail(f"metric {name!r}: unknown kind {kind!r}")
        if not isinstance(metric.get("help", ""), str):
            _fail(f"metric {name!r}: help must be a string")
        series_list = metric.get("series")
        if not isinstance(series_list, list):
            _fail(f"metric {name!r}: series must be a list")
        for series in series_list:
            if not isinstance(series, dict):
                _fail(f"metric {name!r}: each series must be an object")
            _check_labels(series.get("labels"), f"metric {name!r}")
        if kind == "histogram":
            _check_histogram(name, metric)
        else:
            for series in series_list:
                _check_number(
                    series.get("value"), f"metric {name!r}: series value"
                )
    return state


def encode_state(state: Mapping[str, Any]) -> bytes:
    """Serialise a registry ``export_state()`` mapping to wire bytes.

    Validates before encoding: shipping a malformed delta is a bug at
    the producer, and the strict decoder would only reject it later with
    less context.
    """
    _check_state(dict(state))
    try:
        payload = json.dumps(
            {"v": TELEMETRY_WIRE_VERSION, "metrics": state},
            ensure_ascii=False,
            separators=(",", ":"),
        )
    except (TypeError, ValueError) as exc:
        _fail(f"state is not JSON-serialisable: {exc}")
    return payload.encode("utf-8")


def decode_state(blob: bytes) -> dict[str, Any]:
    """Parse and validate wire bytes back into a state mapping.

    Raises :class:`TelemetryCodecError` on anything other than a valid
    current-version payload.
    """
    if not isinstance(blob, (bytes, bytearray)):
        _fail(f"blob must be bytes, got {type(blob).__name__}")
    try:
        document = json.loads(bytes(blob).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        _fail(f"blob is not valid JSON: {exc}")
    if not isinstance(document, dict):
        _fail("payload must be a JSON object")
    version = document.get("v")
    if version != TELEMETRY_WIRE_VERSION:
        _fail(
            f"version mismatch: got {version!r}, "
            f"expected {TELEMETRY_WIRE_VERSION}"
        )
    return _check_state(document.get("metrics"))
