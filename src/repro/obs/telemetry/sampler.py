"""Tail-based trace sampling: keep what's interesting, cap what it costs.

Head sampling (decide at span start) throws away exactly the traces an
operator wants: the 0.1% that errored, the one that took 4 s.  The
:class:`TailSampler` decides *after* the request finishes, when the
verdict is known:

* **error** and **shed** traces are always retained;
* **slow** traces (ok but above ``slow_threshold`` seconds) are always
  retained;
* **ok** traces are sampled at ``ok_rate`` (deterministic under an
  injected ``rng``), keeping a background population for comparison;

all under a hard byte budget: entries are stored as their rendered
JSONL line, sizes are exact, and when the budget overflows the sampler
evicts oldest-**ok**-first, touching interesting traces only when no ok
entry remains.  The cap bounds worst-case memory during a chaos storm;
the eviction order means a storm's error traces displace the ok
background, never each other's evidence.

The sampler feeds two surfaces: ``GET /traces?sampled=1`` streams the
retained JSONL, and the exemplar on each latency observation
(``*_bucket ... # {trace_id="..."}``) lets a scraped histogram link
back to a retained trace.
"""

from __future__ import annotations

import json
import random
import threading
from collections import OrderedDict
from typing import Any, Mapping

from ..clock import Clock, monotonic
from ..metrics import MetricsRegistry

__all__ = ["TailSampler"]

VERDICTS = ("error", "shed", "slow", "ok")

DEFAULT_MAX_BYTES = 2 * 1024 * 1024


class TailSampler:
    """Verdict-aware bounded retention of finished request traces."""

    def __init__(
        self,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        ok_rate: float = 0.05,
        slow_threshold: float = 1.0,
        rng: random.Random | None = None,
        clock: Clock = monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if not 0.0 <= ok_rate <= 1.0:
            raise ValueError("ok_rate must be in [0, 1]")
        self.max_bytes = int(max_bytes)
        self.ok_rate = float(ok_rate)
        self.slow_threshold = float(slow_threshold)
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._lock = threading.Lock()
        # trace_id -> (verdict, size, rendered line); insertion-ordered,
        # so "oldest" is the front.
        self._entries: "OrderedDict[str, tuple[str, int, str]]" = OrderedDict()
        self._bytes = 0
        self._kept = {v: 0 for v in VERDICTS}
        self._evicted = {v: 0 for v in VERDICTS}
        self._unsampled_ok = 0
        if metrics is not None:
            self._sampled = metrics.counter(
                "telemetry_sampled_traces_total",
                "traces retained by the tail sampler",
            )
            self._evictions = metrics.counter(
                "telemetry_sampler_evictions_total",
                "entries evicted to stay under the byte cap",
            )
            self._gauge = metrics.gauge(
                "telemetry_sampler_bytes", "bytes currently retained"
            )
        else:
            self._sampled = self._evictions = self._gauge = None

    def classify(
        self, ok: bool, error_code: str | None, seconds: float | None
    ) -> str:
        if error_code == "shed_overload":
            return "shed"
        if not ok:
            return "error"
        if seconds is not None and seconds > self.slow_threshold:
            return "slow"
        return "ok"

    def offer(
        self, trace_id: str, verdict: str, record: Mapping[str, Any]
    ) -> bool:
        """Present one finished trace; returns True when retained.

        ``record`` is whatever context the caller wants queryable later
        (error code, tier, timings, span tree); it is rendered to its
        JSONL line immediately so the byte accounting is exact.
        """
        if verdict not in VERDICTS:
            raise ValueError(f"unknown verdict {verdict!r}")
        if verdict == "ok" and self._rng.random() >= self.ok_rate:
            with self._lock:
                self._unsampled_ok += 1
            return False
        line = json.dumps(
            {
                "trace_id": trace_id,
                "verdict": verdict,
                "at": self._clock(),
                **dict(record),
            },
            sort_keys=True,
            default=str,
        )
        size = len(line.encode("utf-8"))
        if size > self.max_bytes:
            # A single oversize record would evict the whole buffer for
            # one entry; drop it instead (counted as an eviction).
            with self._lock:
                self._evicted[verdict] += 1
            if self._evictions is not None:
                self._evictions.inc(verdict=verdict)
            return False
        with self._lock:
            stale = self._entries.pop(trace_id, None)
            if stale is not None:
                self._bytes -= stale[1]
                self._kept[stale[0]] -= 1
            self._entries[trace_id] = (verdict, size, line)
            self._bytes += size
            self._kept[verdict] += 1
            evicted = self._evict_locked()
            retained = trace_id in self._entries
        if self._sampled is not None:
            self._sampled.inc(verdict=verdict)
            for gone in evicted:
                self._evictions.inc(verdict=gone)
            self._gauge.set(self._bytes)
        return retained

    def _evict_locked(self) -> list[str]:
        """Drop entries until under budget: oldest ok first, then oldest
        of anything.  Returns the evicted verdicts for metric accounting."""
        evicted: list[str] = []
        while self._bytes > self.max_bytes and self._entries:
            victim = None
            for trace_id, (verdict, _, _) in self._entries.items():
                if verdict == "ok":
                    victim = trace_id
                    break
            if victim is None:
                victim = next(iter(self._entries))
            verdict, size, _ = self._entries.pop(victim)
            self._bytes -= size
            self._kept[verdict] -= 1
            self._evicted[verdict] += 1
            evicted.append(verdict)
        return evicted

    # -- read side -----------------------------------------------------------------

    def traces(self) -> list[dict[str, Any]]:
        """The retained records, oldest first."""
        with self._lock:
            lines = [line for _, _, line in self._entries.values()]
        return [json.loads(line) for line in lines]

    def jsonl(self) -> list[str]:
        """The retained records as ``\\n``-terminated JSONL lines."""
        with self._lock:
            return [line + "\n" for _, _, line in self._entries.values()]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "kept": dict(self._kept),
                "evicted": dict(self._evicted),
                "unsampled_ok": self._unsampled_ok,
            }

    def snapshot(self) -> Mapping[str, Any]:
        return self.stats()
