"""The telemetry plane: windowed series, federation, SLOs, tail sampling.

Four cooperating pieces layered on :mod:`repro.obs.metrics`:

* :mod:`~repro.obs.telemetry.windows` — :class:`WindowedHistogram` /
  :class:`WindowedCounter`, exact rate/quantile over the last N seconds;
* :mod:`~repro.obs.telemetry.codec` + :mod:`~repro.obs.telemetry.federation`
  — the strict wire codec and the delta/merge/fold primitives that carry
  worker registries to the gateway and shard registries to the cluster's
  federated ``/metrics`` view;
* :mod:`~repro.obs.telemetry.slo` — declarative :class:`SloSpec` objectives
  with error budgets and multi-window burn-rate alerts (``GET /slo``);
* :mod:`~repro.obs.telemetry.sampler` — the :class:`TailSampler` that keeps
  every error/shed/slow trace plus an ok sample under a hard byte cap.

:class:`TelemetryHub` bundles all four behind the two calls the serving
stack actually makes (``observe`` a finished request, ``fold`` a worker
delta).  See docs/OBSERVABILITY.md for the full topology.
"""

from .codec import TELEMETRY_WIRE_VERSION, decode_state, encode_state
from .federation import DeltaTracker, fold_state, merge_states
from .hub import TelemetryHub
from .sampler import TailSampler
from .slo import (
    BurnRule,
    DEFAULT_BURN_RULES,
    SloEngine,
    SloSpec,
    default_slos,
)
from .windows import WindowSnapshot, WindowedCounter, WindowedHistogram

__all__ = [
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "DeltaTracker",
    "SloEngine",
    "SloSpec",
    "TELEMETRY_WIRE_VERSION",
    "TailSampler",
    "TelemetryHub",
    "WindowSnapshot",
    "WindowedCounter",
    "WindowedHistogram",
    "decode_state",
    "default_slos",
    "encode_state",
    "fold_state",
    "merge_states",
]
