"""The TelemetryHub: one always-on observation point per serving scope.

The gateway, each cluster shard, and the cluster front end each own a
hub.  A hub bundles the four telemetry-plane pieces behind two calls:

* :meth:`observe` — classify one finished request into the windowed
  request counter/latency histogram (with the trace id as the bucket
  exemplar), the SLO engine, and the tail sampler.  **Never raises**:
  telemetry is always on, so a telemetry bug must degrade to a dropped
  observation, not a failed request.
* :meth:`fold` — decode a worker's piggybacked delta blob and replay it
  into this scope's registry; malformed blobs are counted in
  ``telemetry_fold_errors_total`` and dropped.

``scope`` labels every series the hub writes (``scope="gateway"`` on
shards, ``scope="cluster"`` on the front end), so the federated merge
(:func:`repro.obs.telemetry.merge_states`) sums like with like and a
request observed by both a shard and the cluster never double-counts
within one label set.
"""

from __future__ import annotations

import logging
from typing import Any, Iterable, Mapping

from ..clock import Clock, monotonic
from ..metrics import MetricsRegistry
from .codec import decode_state
from .federation import fold_state
from .sampler import TailSampler
from .slo import SloEngine, SloSpec, default_slos

__all__ = ["TelemetryHub"]

log = logging.getLogger("repro.obs.telemetry")

# Request latency buckets: 1 ms .. 30 s — serving-side (queue + worker),
# wider than the translator's internal DEFAULT_BUCKETS.
REQUEST_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class TelemetryHub:
    """Always-on per-scope telemetry: windows + SLOs + tail sampling."""

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
        scope: str = "gateway",
        specs: Iterable[SloSpec] | None = None,
        deadline: float | None = None,
        slow_threshold: float | None = None,
        sampler: TailSampler | None = None,
        interval: float = 60.0,
    ) -> None:
        self.scope = scope
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            clock=clock or monotonic
        )
        clock = clock or self.metrics.clock
        # The latency objective tracks the configured deadline when one
        # exists; otherwise a half-second interactive bar.
        threshold = deadline if deadline else 0.5
        self.engine = SloEngine(
            specs if specs is not None else default_slos(threshold),
            metrics=self.metrics,
            clock=clock,
            scope=scope,
            interval=interval,
        )
        self.sampler = sampler if sampler is not None else TailSampler(
            slow_threshold=(
                slow_threshold if slow_threshold is not None else threshold * 2
            ),
            clock=clock,
            metrics=self.metrics,
        )
        self._requests = self.metrics.windowed_counter(
            "telemetry_requests_total",
            "finished requests by outcome code",
            interval=interval,
        )
        self._latency = self.metrics.windowed_histogram(
            "telemetry_request_seconds",
            "end-to-end request seconds by outcome code",
            buckets=REQUEST_BUCKETS,
        )
        self._fold_errors = self.metrics.counter(
            "telemetry_fold_errors_total",
            "worker/shard telemetry blobs dropped as undecodable",
        )

    # -- write side ----------------------------------------------------------------

    def observe(self, result: Any, *, trace_id: str | None = None) -> None:
        """Record one finished request (a ``GatewayResult``-shaped object).

        Never raises — see the module docstring.
        """
        try:
            code = getattr(result, "error_code", None) or "ok"
            ok = bool(getattr(result, "ok", False))
            seconds = float(getattr(result, "total_seconds", 0.0) or 0.0)
            tier = getattr(result, "tier", None)
            self._requests.inc(scope=self.scope, code=code)
            self._latency.observe(
                seconds, exemplar=trace_id, scope=self.scope, code=code
            )
            self.engine.record(
                ok=ok,
                error_code=None if ok else code,
                tier=tier,
                seconds=seconds,
                shed=code == "shed_overload",
            )
            if trace_id:
                verdict = self.sampler.classify(
                    ok, None if ok else code, seconds
                )
                self.sampler.offer(
                    trace_id, verdict, self._trace_record(result, seconds)
                )
        except Exception:  # pragma: no cover - defensive: see docstring
            log.exception("telemetry observe failed; observation dropped")

    @staticmethod
    def _trace_record(result: Any, seconds: float) -> dict[str, Any]:
        record: dict[str, Any] = {"total_seconds": seconds}
        for name in (
            "error_code", "tier", "elapsed", "queue_seconds",
            "worker_id", "fingerprint", "cached", "degraded", "anytime",
        ):
            value = getattr(result, name, None)
            if value is not None and value is not False:
                record[name] = value
        spans = getattr(result, "spans", None)
        if spans:
            record["spans"] = spans
        return record

    def fold(self, blob: bytes) -> bool:
        """Fold a worker's delta blob into this scope's registry.

        Returns True on success; counts and drops undecodable or
        shape-conflicting blobs.
        """
        try:
            fold_state(self.metrics, decode_state(blob))
            return True
        except Exception as exc:
            self._fold_errors.inc()
            log.debug("telemetry delta dropped: %s", exc)
            return False

    # -- read side -----------------------------------------------------------------

    def slo_report(self) -> dict[str, Any]:
        """The ``/slo`` document: SLO engine report plus live traffic
        summary and sampler accounting."""
        report = self.engine.report()
        window = self._latency.window(60.0, scope=self.scope, code="ok")
        p95 = window.quantile(0.95)
        report["traffic"] = {
            "window_seconds": 60.0,
            "requests": window.count,
            "rps": window.rate,
            "p95_seconds": None if p95 == float("inf") else p95,
        }
        report["sampler"] = self.sampler.stats()
        return report

    def snapshot(self) -> Mapping[str, Any]:
        return self.slo_report()
