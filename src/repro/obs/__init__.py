"""Observability substrate: tracing, metrics, structured logging.

``repro.obs`` is the cross-cutting layer the serving stack reports
through (docs/OBSERVABILITY.md):

* **tracing** (:mod:`repro.obs.trace`) — :class:`Tracer` / :class:`Span`
  context managers with monotonic timings, attributes, and parent links;
  a request's ``trace_id`` travels through the gateway's worker-process
  boundary so one request yields one stitched tree even across crashes.
  The default :data:`NULL_TRACER` is free: tracing off costs nothing
  measurable (``benchmarks/bench_obs.py`` enforces <5 %).
* **metrics** (:mod:`repro.obs.metrics`) — a thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms with an injectable clock; ``CacheStats`` / ``WorkerStats``
  / ``GatewayStats`` are views over it behind one ``snapshot()``
  protocol.
* **exporters** (:mod:`repro.obs.export`) — JSONL span logs, Chrome
  trace-event JSON (open in ``about:tracing`` / Perfetto), and
  Prometheus-style text exposition; surfaced as ``--trace-out`` /
  ``--metrics-out`` on the ``serve`` / ``batch`` / ``translate`` CLIs.
* **logging** (:mod:`repro.obs.log`) — stdlib logging with a JSON
  formatter under the ``repro.*`` hierarchy, enabled by ``REPRO_LOG``.
* **clocks** (:mod:`repro.obs.clock`) — the injectable monotonic clocks
  every timing component takes, with :class:`ManualClock` as the
  deterministic test seam.
* **telemetry plane** (:mod:`repro.obs.telemetry`) — windowed
  time-series (rate/quantile over the last N seconds), cross-process and
  cross-shard metric federation over a versioned wire codec, declarative
  SLOs with multi-window burn-rate alerts (``GET /slo``), and tail-based
  trace sampling under a hard byte cap; bundled per serving scope by
  :class:`~repro.obs.telemetry.TelemetryHub`.

Quickstart::

    from repro.obs import Tracer, write_trace
    from repro.runtime import TranslationService

    tracer = Tracer()
    service = TranslationService(workbook, tracer=tracer)
    service.translate("sum the hours")
    write_trace(tracer, "trace.json")   # -> load in ui.perfetto.dev
"""

from .clock import Clock, ManualClock, monotonic, perf
from .export import (
    chrome_trace_events,
    render_prometheus,
    span_duration_metrics,
    spans_jsonl,
    write_chrome_trace,
    write_metrics,
    write_spans_jsonl,
    write_trace,
)
from .log import configure as configure_logging
from .log import fields, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SupportsSnapshot,
    snapshot_of,
)
from .telemetry import (
    SloEngine,
    SloSpec,
    TailSampler,
    TelemetryHub,
    WindowedCounter,
    WindowedHistogram,
    merge_states,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer, new_trace_id

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SloEngine",
    "SloSpec",
    "Span",
    "SupportsSnapshot",
    "TailSampler",
    "TelemetryHub",
    "Tracer",
    "WindowedCounter",
    "WindowedHistogram",
    "chrome_trace_events",
    "configure_logging",
    "fields",
    "get_logger",
    "merge_states",
    "monotonic",
    "new_trace_id",
    "perf",
    "render_prometheus",
    "snapshot_of",
    "span_duration_metrics",
    "write_chrome_trace",
    "write_metrics",
    "spans_jsonl",
    "write_spans_jsonl",
    "write_trace",
]
