"""Structured logging on stdlib :mod:`logging` with a JSON formatter.

The library never prints diagnostics; it logs under the ``repro.*``
logger hierarchy and stays silent by default (warnings and errors still
reach stderr through :data:`logging.lastResort`, so a malformed
``REPRO_FAULTS`` value is not swallowed).  Emission is an application
decision, controlled by the ``REPRO_LOG`` environment knob or an
explicit :func:`configure` call::

    REPRO_LOG=debug        # JSON records at DEBUG to stderr
    REPRO_LOG=info         # JSON records at INFO
    REPRO_LOG=text:debug   # human-readable one-liners instead of JSON
    REPRO_LOG=off          # force-silence even warnings

Records are one JSON object per line: ``ts`` (epoch seconds), ``level``,
``logger``, ``msg``, plus any structured fields passed via
``logger.info("...", extra={"fields": {...}})`` — the helper
:func:`fields` builds that ``extra`` dict so call sites stay short::

    log = get_logger("serve.pool")
    log.warning("worker crashed", extra=fields(slot=3, restarts=2))
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Any, IO

__all__ = [
    "ENV_VAR",
    "JsonFormatter",
    "TextFormatter",
    "configure",
    "configure_from_env",
    "fields",
    "get_logger",
]

ENV_VAR = "REPRO_LOG"
ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` logger, or a dotted child (``get_logger("serve.pool")``)."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def fields(**kv: Any) -> dict[str, Any]:
    """Build the ``extra=`` mapping carrying structured fields."""
    return {"fields": kv}


class JsonFormatter(logging.Formatter):
    """One JSON object per record; structured fields inlined."""

    def format(self, record: logging.LogRecord) -> str:
        out: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        extra = getattr(record, "fields", None)
        if extra:
            for key, value in extra.items():
                if key not in out:
                    out[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            out["exc"] = self.formatException(record.exc_info)
        return json.dumps(out, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable one-liners with the structured fields appended."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname).1s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        extra = getattr(record, "fields", None)
        if extra:
            rendered = " ".join(f"{k}={v}" for k, v in extra.items())
            base = f"{base} [{rendered}]"
        return base


def configure(
    level: int | str = logging.INFO,
    stream: IO[str] | None = None,
    json_format: bool = True,
    force: bool = False,
) -> logging.Handler | None:
    """Attach one handler to the ``repro`` logger (idempotent).

    Returns the handler attached, or ``None`` when one already exists
    and ``force`` is false.  ``force=True`` replaces existing handlers —
    the test seam for capturing output.
    """
    if isinstance(level, str):
        level = _LEVELS.get(level.lower(), logging.INFO)
    root = get_logger()
    if root.handlers and not force:
        return None
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_format else TextFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler


def configure_from_env(environ: dict[str, str] | None = None) -> bool:
    """Honor ``REPRO_LOG`` if set; returns True when logging was enabled."""
    value = (environ or os.environ).get(ENV_VAR, "").strip().lower()
    if not value:
        return False
    if value in ("off", "0", "none"):
        root = get_logger()
        root.addHandler(logging.NullHandler())
        root.propagate = False
        return False
    json_format = True
    if ":" in value:
        fmt, _, value = value.partition(":")
        json_format = fmt != "text"
    elif value in ("json", "text"):
        json_format = value == "json"
        value = "info"
    configure(level=value or "info", json_format=json_format)
    return True


class timed:  # noqa: N801 - context-manager, lowercase by convention
    """Log how long a block took at DEBUG: ``with timed(log, "respawn"):``."""

    def __init__(self, logger: logging.Logger, what: str, **kv: Any) -> None:
        self.logger = logger
        self.what = what
        self.kv = kv

    def __enter__(self) -> "timed":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self.start
        self.logger.debug(
            self.what,
            extra=fields(seconds=round(elapsed, 6), **self.kv),
        )


configure_from_env()
