"""Rule sets for the translator: the hand-authored base set (the learned
105-rule set of the paper is unpublished) and re-learnable via
:mod:`repro.learning`."""

from .builtin import builtin_rules

__all__ = ["builtin_rules"]
