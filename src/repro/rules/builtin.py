"""The base rule set (~105 rules).

The paper derived 105 rules from the 70% training split; the learned set is
not published, so this module hand-authors a base set covering the same
operator space (conditional reductions, counting, comparisons with all the
connectives, selection, formatting, lookup, and arithmetic).  The rule
learning pipeline (:mod:`repro.learning`) can re-derive a comparable set
from training data and re-score this one.

Conventions:

* hole idents in expressions correspond to ``%``-pattern idents in the
  template; holes with no matching pattern stay open for synthesis;
* two holes may share an ident (both get the same binding) — used by the
  "larger than the average" rules where the compared and averaged column
  are the same;
* rules that merely strip connective words ("where the ...") map a span to
  its own translation via a bare general hole.
"""

from __future__ import annotations

from ..dsl import ast
from ..sheet import CellValue, Color, FormatFn
from ..sheet.columnar import columnar_enabled
from ..translate.rules import RuleSet, make_rule

_H = ast.Hole
_C = ast.HoleKind.COLUMN
_V = ast.HoleKind.VALUE
_L = ast.HoleKind.LITERAL
_G = ast.HoleKind.GENERAL

_GT = ast.GetTable


def _reduce(op: ast.ReduceOp, cond: ast.Expr) -> ast.Expr:
    return ast.Reduce(op, _H(1, _C), _GT(), cond)


_REDUCE_WORDS = {
    ast.ReduceOp.SUM: (
        "sum|sum up|add up|total|total up|totals|compute the sum of"
        "|calculate the sum of|find the sum of|get the total of"
        "|what is the sum of|what is the total of|calculate the total"
        "|compute the total sum of|add"
    ),
    ast.ReduceOp.AVG: (
        "average|get the average of|compute the average of"
        "|find the average of|take the mean of|calculate the average of"
        "|what is the average|what are the average|average of|avg"
    ),
    ast.ReduceOp.MIN: (
        "find the minimum of|get the minimum of|find the smallest"
        "|get the lowest|compute the min of|what is the smallest"
        "|what is the minimum|minimum|min of|smallest|lowest"
    ),
    ast.ReduceOp.MAX: (
        "find the maximum of|get the maximum of|find the largest"
        "|get the highest|compute the max of|what is the largest"
        "|what is the maximum|maximum|max of|largest|highest"
    ),
}

_FILLER = "all|the|of|up|values|value|for|column|columns"
_WHERE_WORDS = (
    "where|with|whose|that|which|who|that are|who are|which are|that have"
    "|which have|who have|having|for|in|at|located in|who work at|from|are"
)

_LT_WORDS = "less than|under|below|smaller than|fewer than|less|before|<"
_GT_WORDS = (
    "greater than|more than|over|above|bigger than|larger than|exceeds"
    "|after|>"
)
_BIG_WORDS = "largest|highest|biggest|greatest|maximum|top|max"

_ROW_NOUNS = (
    "rows|row|records|record|entries|entry|employees|employee|people|person"
    "|workers|worker|items|item|products|product|countries|country"
    "|invoices|invoice|orders|order|cells|lines"
)


# Rules are frozen and templates are interned (repro.translate.patterns),
# so one construction can serve every translator in the process; each call
# still gets a fresh *mutable* RuleSet over the shared Rule objects.
_BUILTIN: RuleSet | None = None


def builtin_rules() -> RuleSet:
    """The base rule set (a fresh RuleSet sharing one cached rule list
    when the columnar/template optimisation layer is enabled; rebuilt from
    scratch per call under ``REPRO_NO_COLUMNAR=1``)."""
    global _BUILTIN
    if not columnar_enabled():
        return _build_rules()
    if _BUILTIN is None:
        _BUILTIN = _build_rules()
    return RuleSet(list(_BUILTIN.rules))


def _build_rules() -> RuleSet:
    """Construct the base rule set."""
    rules = RuleSet()
    add = rules.add

    # -- conditional reductions (4 ops x 4 shapes) -------------------------
    for op, words in _REDUCE_WORDS.items():
        name = op.value.lower()
        add(make_rule(
            f"{name}_plain", f"({words}) ({_FILLER})* %C1",
            _reduce(op, ast.TrueF()), score=0.72,
        ))
        add(make_rule(
            f"{name}_open", f"({words}) ({_FILLER})* %C1",
            _reduce(op, _H(2, _G)), score=0.78,
        ))
        add(make_rule(
            f"{name}_where", f"({words}) ({_FILLER})* %C1 %2",
            _reduce(op, _H(2, _G)), score=0.82,
        ))
        add(make_rule(
            f"{name}_np_col", f"({words}) ({_FILLER})* %2 %C1",
            _reduce(op, _H(2, _G)), score=0.74,
        ))

    # -- reductions over the active selection (steps programming) -----------
    for op, words in _REDUCE_WORDS.items():
        name = op.value.lower()
        add(make_rule(
            f"{name}_active",
            f"({words}) ({_FILLER})* %C1 (from|of|in|the)* "
            "(selected|selection|active) (rows|cells|selection)*",
            ast.Reduce(op, _H(1, _C), ast.GetActive(), ast.TrueF()),
            score=0.85,
        ))

    # -- counting ------------------------------------------------------------
    count_words = (
        "count|count up|how many|number of|count the number of"
        "|get the number of|give me the count of|count how many"
    )
    add(make_rule(
        "count_where", f"({count_words}) (the|of|all|are|there|have)* %1",
        ast.Count(_GT(), _H(1, _G)), score=0.8,
    ))
    add(make_rule(
        "count_all", f"({count_words}) (the|all|of)* ({_ROW_NOUNS})",
        ast.Count(_GT(), ast.TrueF()), score=0.7,
    ))
    add(make_rule(
        "count_noun_where",
        f"({count_words}) (the|all|of)* ({_ROW_NOUNS}) "
        "(are|are there|is|there|have|has)* %1",
        ast.Count(_GT(), _H(1, _G)), score=0.85,
    ))

    # -- comparisons -----------------------------------------------------------
    lead = "(where|with|whose|the|a|an|of|is|are|has|have)*"
    add(make_rule(
        "lt_lit", f"{lead} %C1 (is|are|was|a|has|have)* ({_LT_WORDS}) (than|to|the)* %L2",
        ast.Compare(ast.RelOp.LT, _H(1, _C), _H(2, _L)), score=0.9,
    ))
    add(make_rule(
        "gt_lit", f"{lead} %C1 (is|are|was|a|has|have)* ({_GT_WORDS}) (than|to|the)* %L2",
        ast.Compare(ast.RelOp.GT, _H(1, _C), _H(2, _L)), score=0.9,
    ))
    # flipped: "with over 20 hours"
    add(make_rule(
        "lt_lit_flipped", f"(with|where|whose|has|have|having)* ({_LT_WORDS}) %L2 %C1",
        ast.Compare(ast.RelOp.LT, _H(1, _C), _H(2, _L)), score=0.8,
    ))
    add(make_rule(
        "gt_lit_flipped", f"(with|where|whose|has|have|having)* ({_GT_WORDS}) %L2 %C1",
        ast.Compare(ast.RelOp.GT, _H(1, _C), _H(2, _L)), score=0.8,
    ))
    add(make_rule(
        "eq_value",
        f"{lead} %C1 (is|are|was|equals|equal to|=|matches|of) (the|a|an)* %V2",
        ast.Compare(ast.RelOp.EQ, _H(1, _C), _H(2, _V)), score=0.9,
    ))
    add(make_rule(
        "eq_lit", f"{lead} %C1 (is|are|equals|equal to|=|matches) %L2",
        ast.Compare(ast.RelOp.EQ, _H(1, _C), _H(2, _L)), score=0.85,
    ))
    add(make_rule(
        "value_column", "%V1 %C2",
        ast.Compare(ast.RelOp.EQ, _H(2, _C), _H(1, _V)), score=0.75,
    ))
    add(make_rule(
        "column_value", "%C1 (is|of|:)* %V2",
        ast.Compare(ast.RelOp.EQ, _H(1, _C), _H(2, _V)), score=0.7,
    ))
    add(make_rule(
        "lt_col", f"{lead} %C1 (is|are)* ({_LT_WORDS}) (than|the)* %C2",
        ast.Compare(ast.RelOp.LT, _H(1, _C), _H(2, _C)), score=0.88,
    ))
    add(make_rule(
        "gt_col", f"{lead} %C1 (is|are)* ({_GT_WORDS}) (than|the)* %C2",
        ast.Compare(ast.RelOp.GT, _H(1, _C), _H(2, _C)), score=0.88,
    ))
    add(make_rule(
        "between",
        f"{lead} %C1 (is|are|was|of)* between %L2 and %L3",
        ast.And(
            ast.Compare(ast.RelOp.GT, _H(1, _C), _H(2, _L)),
            ast.Compare(ast.RelOp.LT, _H(1, _C), _H(3, _L)),
        ),
        score=0.9,
    ))
    add(make_rule(
        "at_most",
        f"{lead} %C1 (is|are|was|of)* (at most|no more than|not more than"
        "|not over|not above) %L2",
        ast.Not(ast.Compare(ast.RelOp.GT, _H(1, _C), _H(2, _L))),
        score=0.88,
    ))
    add(make_rule(
        "at_least",
        f"{lead} %C1 (is|are|was|of)* (at least|no less than|not less than"
        "|not under|not below) %L2",
        ast.Not(ast.Compare(ast.RelOp.LT, _H(1, _C), _H(2, _L))),
        score=0.88,
    ))
    add(make_rule(
        "nonzero", "(nonzero|non zero) %C1",
        ast.Compare(ast.RelOp.GT, _H(1, _C), ast.Lit(CellValue.number(0))),
        score=0.9,
    ))
    add(make_rule(
        # "othours is not 0" — on the non-negative quantities these sheets
        # hold, not-zero means strictly positive.
        "col_not_zero",
        f"{lead} %C1 (is|are|was)* (not|isn't|aren't) (0|zero)",
        ast.Compare(ast.RelOp.GT, _H(1, _C), ast.Lit(CellValue.number(0))),
        score=0.88,
    ))

    # -- comparisons against the average ("larger than the average") -----------
    avg_of_1 = ast.Reduce(ast.ReduceOp.AVG, _H(1, _C), _GT(), ast.TrueF())
    avg_of_2 = ast.Reduce(ast.ReduceOp.AVG, _H(2, _C), _GT(), ast.TrueF())
    add(make_rule(
        "gt_avg_same",
        f"{lead} %C1 (is|are)* ({_GT_WORDS}) (the)* (average|mean)",
        ast.Compare(ast.RelOp.GT, _H(1, _C), avg_of_1), score=0.88,
    ))
    add(make_rule(
        "lt_avg_same", f"{lead} %C1 (is|are)* ({_LT_WORDS}) (the)* (average|mean)",
        ast.Compare(ast.RelOp.LT, _H(1, _C), avg_of_1), score=0.88,
    ))
    add(make_rule(
        "gt_avg_named",
        f"{lead} %C1 (is|are)* ({_GT_WORDS}) (the)* (average|mean) %C2",
        ast.Compare(ast.RelOp.GT, _H(1, _C), avg_of_2), score=0.86,
    ))
    add(make_rule(
        "above_avg_prefix",
        "(above average|above the average|over average|more than average"
        "|larger than the average|greater than the average"
        "|more than the average) %C1",
        ast.Compare(ast.RelOp.GT, _H(1, _C), avg_of_1), score=0.84,
    ))
    add(make_rule(
        "below_avg_prefix",
        "(below average|below the average|under average|less than average"
        "|smaller than the average|less than the average) %C1",
        ast.Compare(ast.RelOp.LT, _H(1, _C), avg_of_1), score=0.84,
    ))
    add(make_rule(
        "with_above_avg",
        f"(with|whose|where|having)* (a|an|the)* ({_GT_WORDS}|above) "
        "(average|mean) %C1",
        ast.Compare(ast.RelOp.GT, _H(1, _C), avg_of_1), score=0.84,
    ))

    # -- negation -----------------------------------------------------------------
    add(make_rule(
        "not_span",
        "(not|excluding|except|other than) (in|at|a|an|the|use|using|of)* %1",
        ast.Not(_H(1, _G)), score=0.82,
    ))
    add(make_rule(
        "not_verb",
        "(do not|don't|does not|doesn't|is not|isn't|are not|aren't"
        "|which don't|that don't|who don't) "
        "(use|have|using|in|at|a|an|the)* %1",
        ast.Not(_H(1, _G)), score=0.85,
    ))
    add(make_rule(
        "col_is_not_value",
        f"{lead} %C1 (is|are)* (not|isn't|aren't) (a|an|the|in)* %V2",
        ast.Not(ast.Compare(ast.RelOp.EQ, _H(1, _C), _H(2, _V))), score=0.9,
    ))

    # -- connectives -----------------------------------------------------------------
    add(make_rule(
        "and_spans", "%1 (and|but) %2",
        ast.And(_H(1, _G), _H(2, _G)), score=0.62,
    ))
    add(make_rule(
        "or_spans", "%1 (or) %2",
        ast.Or(_H(1, _G), _H(2, _G)), score=0.7,
    ))
    add(make_rule(
        "either_or", "(either)* %1 or %2",
        ast.Or(_H(1, _G), _H(2, _G)), score=0.7,
    ))

    # -- forwarding rules (strip connective words, keep span semantics) ----------------
    add(make_rule(
        "where_strip", f"({_WHERE_WORDS}) (the|a|an|all|is|are|of)* %1",
        _H(1, _G), score=0.6,
    ))
    add(make_rule(
        "lookup_strip",
        "(lookup|look up|find|fetch|get|what is|what does) "
        "(the|a|an|me|is|of|for|does)* %1",
        _H(1, _G), score=0.58,
    ))
    add(make_rule(
        "for_each_strip",
        "(for each|for every|for all) (row|employee|item|country|invoice"
        "|person|worker|product|order|record|the)* %1",
        _H(1, _G), score=0.6,
    ))
    add(make_rule(
        "parens", "( %1 )", _H(1, _G), score=0.75,
    ))

    # -- selection -----------------------------------------------------------------------
    select_words = (
        "select|highlight|show|show me|get|pick|pick out|grab|display|give me"
    )
    select_fill = (
        f"the|all|me|rows|with|for|where|that|{_ROW_NOUNS}"
    )
    add(make_rule(
        "select_rows", f"({select_words}) ({select_fill})* %1",
        ast.MakeActive(ast.SelectRows(_GT(), _H(1, _G))), score=0.72,
    ))
    add(make_rule(
        "which_rows", f"(which|what) ({_ROW_NOUNS})* (have|has|are|have a|has a)* %1",
        ast.MakeActive(ast.SelectRows(_GT(), _H(1, _G))), score=0.66,
    ))
    # column projections: "show me the name and hours of the chefs"
    add(make_rule(
        "select_cells_one",
        f"({select_words}) (the|me|all)* %C1 (cells|values|column)* "
        "(of|for|from) (the|all)* %2",
        ast.MakeActive(ast.SelectCells((_H(1, _C),), _GT(), _H(2, _G))),
        score=0.8,
    ))
    add(make_rule(
        "select_cells_two",
        f"({select_words}) (the|me|all)* %C1 and (the)* %C2 "
        "(cells|values|columns)* (of|for|from) (the|all)* %3",
        ast.MakeActive(
            ast.SelectCells((_H(1, _C), _H(2, _C)), _GT(), _H(3, _G))
        ),
        score=0.82,
    ))

    # -- argmax ("which country has the largest gdp per capita") ---------------------------
    argmax_expr = ast.MakeActive(ast.SelectRows(
        _GT(),
        ast.Compare(
            ast.RelOp.EQ,
            _H(1, _C),
            ast.Reduce(ast.ReduceOp.MAX, _H(1, _C), _GT(), ast.TrueF()),
        ),
    ))
    # A wh-question implies the user wants the row, not the number ...
    add(make_rule(
        "argmax_wh",
        f"(which|what|who) (the|me|all)* "
        f"({_ROW_NOUNS})* (with|has|have|having|where|that has|the row with)* "
        f"(the)* ({_BIG_WORDS}) %C1",
        argmax_expr, score=0.85,
    ))
    # ... as does an imperative that names the row ("find the country with
    # the largest gdp"); without a row noun, "find the largest total" is a
    # max-reduce and must stay with the reduce rules.
    add(make_rule(
        "argmax_noun",
        f"(find|select|show|show me|get|give me|grab) (the|me|all)* "
        f"({_ROW_NOUNS}) (with|has|have|having|where|that has|the row with)* "
        f"(the)* ({_BIG_WORDS}) %C1",
        argmax_expr, score=0.85,
    ))
    add(make_rule(
        "argmax_is",
        f"(get|select|find|show) (the)* (row|rows) (where)* %C1 (is)* "
        f"(the)* ({_BIG_WORDS})",
        argmax_expr, score=0.8,
    ))

    # -- arithmetic -------------------------------------------------------------------------
    add(make_rule(
        "plus_spans", "%1 (plus|+|added to) %2",
        ast.BinOp(ast.BinaryOp.ADD, _H(1, _G), _H(2, _G)), score=0.8,
    ))
    add(make_rule(
        "minus_spans", "%1 (minus|-) %2",
        ast.BinOp(ast.BinaryOp.SUB, _H(1, _G), _H(2, _G)), score=0.8,
    ))
    add(make_rule(
        "times_spans", "%1 (times|multiplied by|*|x) %2",
        ast.BinOp(ast.BinaryOp.MULT, _H(1, _G), _H(2, _G)), score=0.8,
    ))
    add(make_rule(
        "div_spans", "%1 (divided by|/|per) %2",
        ast.BinOp(ast.BinaryOp.DIV, _H(1, _G), _H(2, _G)), score=0.8,
    ))
    add(make_rule(
        "add_columns",
        "(add|combine|sum) (the|up|together)* %C1 (and|with|to|plus) (the)* "
        "%C2 (columns|column|together)*",
        ast.BinOp(ast.BinaryOp.ADD, _H(1, _C), _H(2, _C)), score=0.85,
    ))
    add(make_rule(
        "multiply_columns",
        "(multiply) (the)* %C1 (and|by|with|times) (the)* %C2 (columns|column)*",
        ast.BinOp(ast.BinaryOp.MULT, _H(1, _C), _H(2, _C)), score=0.85,
    ))
    add(make_rule(
        "divide_spans",
        "(divide) (the)* %1 (by) (the)* %2",
        ast.BinOp(ast.BinaryOp.DIV, _H(1, _G), _H(2, _G)), score=0.85,
    ))
    add(make_rule(
        "subtract_spans",
        "(subtract|take away) (the)* %1 (from) (the)* %2",
        ast.BinOp(ast.BinaryOp.SUB, _H(2, _G), _H(1, _G)), score=0.85,
    ))
    add(make_rule(
        "multiply_span_by",
        "(multiply|scale) (the|each|every)* %1 (by) (the)* %2",
        ast.BinOp(ast.BinaryOp.MULT, _H(1, _G), _H(2, _G)), score=0.85,
    ))
    # trailing verbs: "... and multiply (it) by hours"
    add(make_rule(
        "then_multiply_by",
        "%1 (and|then)* (multiply|multiplied|times) (it|them)* by "
        "(the|their)* %2",
        ast.BinOp(ast.BinaryOp.MULT, _H(1, _G), _H(2, _G)), score=0.84,
    ))
    add(make_rule(
        "then_divide_by",
        "%1 (and|then)* (divide|divided) (it|them)* by (the|their)* %2",
        ast.BinOp(ast.BinaryOp.DIV, _H(1, _G), _H(2, _G)), score=0.84,
    ))
    # trailing reductions: "get the baristas ... and sum the hours"
    for op, trailing in (
        (ast.ReduceOp.SUM, "sum|add up|total|add|sum up"),
        (ast.ReduceOp.AVG, "average"),
    ):
        add(make_rule(
            f"get_then_{op.value.lower()}",
            f"(get|take|select|grab) (the|all|rows|rows with|rows for)* %2 "
            f"(and|then) ({trailing}) (the|up|them|all)* %C1",
            _reduce(op, _H(2, _G)), score=0.82,
        ))
        add(make_rule(
            f"get_col_then_{op.value.lower()}",
            f"(get|take) (the|all)* %C1 (from|of|for|in)* (the)* %2 "
            f"(and|then) ({trailing}) (them|it|up|them up|it up)*",
            _reduce(op, _H(2, _G)), score=0.82,
        ))

    # -- formatting (boolean attributes) ------------------------------------------------
    for attr, maker in (
        ("bold", FormatFn.bold),
        ("italic", FormatFn.italics),
        ("underline", FormatFn.underline),
    ):
        words = {
            "bold": "bold",
            "italic": "italic|italics|italicize",
            "underline": "underline|underlined",
        }[attr]
        spec = ast.FormatSpec((maker(True),))
        fmt = ast.FormatCells(spec, ast.SelectRows(_GT(), _H(1, _G)))
        add(make_rule(
            f"format_{attr}_suffix",
            f"(make|mark|format|turn|set) (the|all|rows)* %1 ({words})",
            fmt, score=0.85,
        ))
        add(make_rule(
            f"format_{attr}_prefix",
            f"({words}) (the|all|rows)* %1",
            fmt, score=0.7,
        ))
        add(make_rule(
            f"getformat_{attr}_cells",
            f"(the)* ({words}) (cells|rows|values)",
            ast.GetFormat(spec), score=0.8,
        ))

    # -- formatting (per color) ------------------------------------------------------------
    for color in Color:
        if color is Color.NONE:
            continue
        c = color.value
        spec = ast.FormatSpec((FormatFn.color(color),))
        fmt = ast.FormatCells(spec, ast.SelectRows(_GT(), _H(1, _G)))
        add(make_rule(
            f"format_{c}_suffix",
            f"(color|make|paint|turn|mark|highlight) (the|all|rows)* %1 "
            f"(in|to)* {c}",
            fmt, score=0.85,
        ))
        add(make_rule(
            f"format_{c}_get_and",
            f"(get|select|take) (the|all|rows)* %1 and (color|make|paint"
            f"|mark|highlight|turn) (them|it|the|rows|in)* {c}",
            fmt, score=0.85,
        ))
        add(make_rule(
            f"getformat_{c}_cells",
            f"(the)* {c} (cells|rows|values)",
            ast.GetFormat(spec), score=0.8,
        ))
        # precise cell-level emphasis: "color the chef totalpay red"
        add(make_rule(
            f"format_{c}_cells_suffix",
            f"(color|make|paint|turn|mark|highlight) (the|all)* %1 %C2 "
            f"(cells|values)* (in|to)* {c}",
            ast.FormatCells(
                spec, ast.SelectCells((_H(2, _C),), _GT(), _H(1, _G))
            ),
            score=0.84,
        ))
        add(make_rule(
            f"sum_{c}_cells",
            f"(sum|add up|total|add|total up) (the|all|up|values|in)* {c} "
            f"%C1 (cells|values|rows)*",
            ast.Reduce(ast.ReduceOp.SUM, _H(1, _C), ast.GetFormat(spec),
                       ast.TrueF()),
            score=0.85,
        ))

    return rules
