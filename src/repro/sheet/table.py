"""Spreadsheet tables.

A table is a rectangular block of cells with a header row of uniquely named,
typed columns (paper §2: "we model a spreadsheet as a collection of tables,
where each table is a set of rows and has uniquely labeled and typed
columns").  Tables are anchored at a sheet origin so that data cells have
A1 addresses (the header occupies the origin row).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import SheetError, UnknownColumnError
from .address import CellAddress
from .cell import Cell, bump_revision
from .column import Column, infer_column_type
from .formatting import FormatFn
from .values import CellValue, ValueType


class Table:
    """A named table of typed columns and mutable cells."""

    # Structural mutations (rename, re-anchor, row/column surgery) must
    # invalidate memoised workbook fingerprints just like cell writes do.
    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        bump_revision()

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        rows: Iterable[Sequence[CellValue]] = (),
        origin: CellAddress = CellAddress(0, 0),
    ) -> None:
        if not name or not name.strip():
            raise SheetError("table name must be non-empty")
        keys = [c.key for c in columns]
        if len(set(keys)) != len(keys):
            raise SheetError(f"duplicate column names in table {name!r}")
        self.name = name
        self.origin = origin
        self._columns = list(columns)
        self._index = {c.key: i for i, c in enumerate(self._columns)}
        self._rows: list[list[Cell]] = []
        for row in rows:
            self.append_row(row)

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_data(
        name: str,
        header: Sequence[str],
        data: Sequence[Sequence[object]],
        types: Sequence[ValueType] | None = None,
        origin: CellAddress = CellAddress(0, 0),
    ) -> "Table":
        """Build a table from raw Python data, inferring column types.

        ``data`` cells may be ``CellValue`` instances or raw ``int`` /
        ``float`` / ``str`` / ``bool`` / ``None`` values; raw numbers become
        NUMBER cells unless the column is declared CURRENCY via ``types``.
        """
        converted: list[list[CellValue]] = []
        for raw_row in data:
            if len(raw_row) != len(header):
                raise SheetError(
                    f"row width {len(raw_row)} != header width {len(header)}"
                )
            converted.append([_coerce(v) for v in raw_row])
        if types is None:
            inferred = []
            for j in range(len(header)):
                inferred.append(infer_column_type(row[j] for row in converted))
            types = inferred
        else:
            if len(types) != len(header):
                raise SheetError("types width != header width")
            for i, row in enumerate(converted):
                converted[i] = [
                    _retype(v, t) for v, t in zip(row, types)
                ]
        columns = [Column(h, t) for h, t in zip(header, types)]
        return Table(name, columns, converted, origin=origin)

    def append_row(self, values: Sequence[CellValue]) -> None:
        if len(values) != len(self._columns):
            raise SheetError(
                f"row width {len(values)} != table width {len(self._columns)}"
            )
        for col, value in zip(self._columns, values):
            if not col.accepts(value):
                raise SheetError(
                    f"value {value.display()!r} ({value.type.value}) not valid "
                    f"for column {col.name!r} ({col.dtype.value})"
                )
        self._rows.append([Cell(value=v) for v in values])

    # -- shape -------------------------------------------------------------

    @property
    def columns(self) -> list[Column]:
        return list(self._columns)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self._columns]

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def n_cols(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self.n_rows

    # -- column access -----------------------------------------------------

    def has_column(self, name: str) -> bool:
        return name.strip().lower() in self._index

    def column(self, name: str) -> Column:
        try:
            return self._columns[self.column_index(name)]
        except UnknownColumnError:
            raise

    def column_index(self, name: str) -> int:
        key = name.strip().lower()
        if key not in self._index:
            raise UnknownColumnError(self.name, name)
        return self._index[key]

    def column_values(self, name: str, rows: Iterable[int] | None = None) -> list[CellValue]:
        j = self.column_index(name)
        indices = range(self.n_rows) if rows is None else rows
        return [self._rows[i][j].value for i in indices]

    # -- cell access -------------------------------------------------------

    def cell(self, row: int, col: int) -> Cell:
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise SheetError(
                f"cell ({row},{col}) out of range in table {self.name!r}"
            )
        return self._rows[row][col]

    def iter_row_cells(self, row: int) -> Iterator[Cell]:
        for j in range(self.n_cols):
            yield self.cell(row, j)

    # -- addressing --------------------------------------------------------

    def address_of(self, row: int, col: int) -> CellAddress:
        """A1 address of a data cell (header occupies the origin row)."""
        return CellAddress(self.origin.col + col, self.origin.row + 1 + row)

    def locate(self, address: CellAddress) -> tuple[int, int] | None:
        """(row, col) of a data cell at ``address``, or None if outside."""
        col = address.col - self.origin.col
        row = address.row - self.origin.row - 1
        if 0 <= row < self.n_rows and 0 <= col < self.n_cols:
            return (row, col)
        return None

    def column_at_letter_index(self, sheet_col: int) -> Column | None:
        """The column occupying absolute sheet column ``sheet_col``.

        Lets descriptions like "sum column H" resolve against the table.
        """
        j = sheet_col - self.origin.col
        if 0 <= j < self.n_cols:
            return self._columns[j]
        return None

    # -- queries used by the evaluator and translator -----------------------

    def rows_matching_format(self, fns: Sequence[FormatFn]) -> list[int]:
        """Rows containing at least one cell matching all constraints —
        the ``GetFormat`` row source."""
        return [
            i
            for i in range(self.n_rows)
            if any(c.matches_format(fns) for c in self._rows[i])
        ]

    def distinct_text_values(self) -> dict[str, list[str]]:
        """Map of lowercase text value -> column names containing it.

        The translator's ``ValuePat`` matcher consults this to recognise
        phrases like "capitol hill" as sheet values and to resolve which
        column a bare value refers to.
        """
        seen: dict[str, list[str]] = {}
        for j, col in enumerate(self._columns):
            if col.dtype is not ValueType.TEXT:
                continue
            for i in range(self.n_rows):
                v = self._rows[i][j].value
                if v.is_empty:
                    continue
                key = str(v.payload).strip().lower()
                cols = seen.setdefault(key, [])
                if col.name not in cols:
                    cols.append(col.name)
        return seen

    def clone(self) -> "Table":
        """A deep copy: cell values are shared (immutable), cell records
        and row lists are fresh, so mutations never leak across copies."""
        twin = Table(self.name, self._columns, origin=self.origin)
        twin._columns = list(self._columns)
        twin._index = dict(self._index)
        twin._rows = [[cell.copy() for cell in row] for row in self._rows]
        return twin

    def render(self, max_rows: int = 20) -> str:
        """Plain-text rendering for examples and debugging."""
        widths = [len(c.name) for c in self._columns]
        shown = self._rows[:max_rows]
        for row in shown:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell.display()))
        lines = [
            " | ".join(c.name.ljust(w) for c, w in zip(self._columns, widths))
        ]
        lines.append("-+-".join("-" * w for w in widths))
        for row in shown:
            lines.append(
                " | ".join(c.display().ljust(w) for c, w in zip(row, widths))
            )
        if self.n_rows > max_rows:
            lines.append(f"... ({self.n_rows - max_rows} more rows)")
        return "\n".join(lines)


def _coerce(raw: object) -> CellValue:
    if isinstance(raw, CellValue):
        return raw
    if raw is None:
        return CellValue.empty()
    if isinstance(raw, bool):
        return CellValue.boolean(raw)
    if isinstance(raw, (int, float)):
        return CellValue.number(raw)
    if isinstance(raw, str):
        return CellValue.text(raw)
    raise SheetError(f"cannot coerce {raw!r} into a cell value")


def _retype(value: CellValue, target: ValueType) -> CellValue:
    """Re-type a coerced raw value to the declared column type (numbers may
    become currency; everything else must already agree)."""
    if value.is_empty or value.type is target:
        return value
    if target is ValueType.CURRENCY and value.type is ValueType.NUMBER:
        return CellValue.currency(value.payload)
    if target is ValueType.DATE and value.type is ValueType.TEXT:
        return CellValue.date(str(value.payload))
    raise SheetError(
        f"cannot retype {value.type.value} value to {target.value}"
    )
