"""Workbook I/O: CSV import/export.

Lets users bring their own data: each CSV file becomes one table (file stem
= table name, first row = header), with column types inferred from the cell
text — currency when every non-empty cell parses as ``$...``, numbers,
dates, booleans, else text.  Export writes one CSV per table.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from ..errors import SheetError
from .table import Table
from .values import CellValue, ValueType, parse_literal
from .workbook import Workbook


def _parse_cell(text: str) -> CellValue:
    text = text.strip()
    if not text:
        return CellValue.empty()
    literal = parse_literal(text)
    if literal is not None:
        return literal
    return CellValue.text(text)


def _column_type(values: Iterable[CellValue]) -> ValueType:
    seen = {v.type for v in values if not v.is_empty}
    if not seen:
        return ValueType.TEXT
    if seen == {ValueType.CURRENCY} or seen == {ValueType.CURRENCY,
                                                ValueType.NUMBER}:
        # mixed "$10" and "10" cells: a currency column with lazy typists
        return ValueType.CURRENCY
    if len(seen) == 1:
        return seen.pop()
    return ValueType.TEXT


def _coerce(value: CellValue, target: ValueType) -> CellValue:
    if value.is_empty or value.type is target:
        return value
    if target is ValueType.CURRENCY and value.type is ValueType.NUMBER:
        return CellValue.currency(value.payload)
    # fall back to the original text rendering
    return CellValue.text(value.display())


def read_table_csv(path: str | Path, name: str | None = None) -> Table:
    """Read one CSV file into a typed table.

    Real-world CSVs are ragged: trailing cells are routinely omitted, so
    short rows are repaired by padding with empty cells.  A row *longer*
    than the header is genuinely ambiguous (which cells belong to which
    column?) and still raises a :class:`SheetError` (code ``ragged_row``).
    """
    path = Path(path)
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows or not rows[0]:
        raise SheetError(f"{path} has no header row", code="no_header")
    header = [h.strip() for h in rows[0]]
    parsed = [[_parse_cell(c) for c in row] for row in rows[1:] if row]
    for i, row in enumerate(parsed):
        if len(row) > len(header):
            raise SheetError(
                f"{path} row {i + 2}: {len(row)} cells, header has "
                f"{len(header)}",
                code="ragged_row",
            )
        if len(row) < len(header):
            row.extend(
                CellValue.empty() for _ in range(len(header) - len(row))
            )
    types = [
        _column_type(row[j] for row in parsed) for j in range(len(header))
    ]
    data = [
        [_coerce(cell, t) for cell, t in zip(row, types)] for row in parsed
    ]
    return Table.from_data(name or path.stem, header, data, types=types)


def load_workbook(paths: list[str | Path], cursor: str = "A1") -> Workbook:
    """A workbook from CSV files; the first file is the primary table."""
    if not paths:
        raise SheetError("at least one CSV file is required")
    workbook = Workbook()
    for path in paths:
        workbook.add_table(read_table_csv(path))
    # default cursor: two columns right of the primary table
    primary = workbook.default_table
    from .address import CellAddress

    workbook.set_cursor(
        cursor if cursor != "A1" else
        CellAddress(primary.n_cols + 1, 1).to_a1()
    )
    return workbook


def write_table_csv(table: Table, path: str | Path) -> None:
    """Write one table to CSV (values in display form)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for i in range(table.n_rows):
            writer.writerow([c.display() for c in table.iter_row_cells(i)])


def save_workbook(workbook: Workbook, directory: str | Path) -> list[Path]:
    """Write every table to ``<directory>/<table>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for table in workbook.tables:
        target = directory / f"{table.name}.csv"
        write_table_csv(table, target)
        written.append(target)
    return written
