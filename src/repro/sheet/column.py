"""Column metadata: a name plus a declared scalar type.

Tables have "uniquely labeled and typed columns" (paper §2).  The declared
type drives the DSL ``Valid`` check — e.g. ``Sum`` needs a numeric or
currency column, and comparing a currency column against a plain number
literal is allowed while multiplying two currency columns is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .values import CellValue, ValueType


@dataclass(frozen=True)
class Column:
    """A typed, named spreadsheet column."""

    name: str
    dtype: ValueType

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("column name must be non-empty")
        if self.dtype is ValueType.EMPTY:
            raise ValueError("columns cannot be declared EMPTY-typed")

    @property
    def key(self) -> str:
        """Case-folded name used for matching user descriptions."""
        return self.name.strip().lower()

    def accepts(self, value: CellValue) -> bool:
        """True when ``value`` may be stored in this column.

        The empty value is accepted everywhere (blank cells exist in real
        sheets); otherwise the value type must equal the declared type.
        """
        return value.is_empty or value.type is self.dtype


def infer_column_type(values: Iterable[CellValue]) -> ValueType:
    """Infer a column type from its cell values.

    Used when constructing tables from raw Python data: the first non-empty
    value decides, and remaining values must agree.  All-empty columns
    default to TEXT.
    """
    decided: ValueType | None = None
    for v in values:
        if v.is_empty:
            continue
        if decided is None:
            decided = v.type
        elif v.type is not decided:
            raise ValueError(
                f"mixed column types: {decided.value} vs {v.type.value}"
            )
    return decided if decided is not None else ValueType.TEXT
