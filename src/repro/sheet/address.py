"""A1-style cell addressing.

User descriptions reference cells ("divide I2 by I3") and columns ("sum
column H").  This module converts between A1 notation and zero-based
(column, row) indices.  Row 0 of a table is its header row, so the data row
``r`` of a table anchored at the sheet origin lives at A1 row ``r + 2``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import AddressError

_A1_RE = re.compile(r"^([A-Za-z]{1,3})([1-9]\d*)$")
_COL_RE = re.compile(r"^[A-Za-z]{1,3}$")


def column_letter_to_index(letters: str) -> int:
    """``"A" -> 0``, ``"H" -> 7``, ``"AA" -> 26``."""
    if not _COL_RE.match(letters):
        raise AddressError(f"bad column letters: {letters!r}")
    index = 0
    for ch in letters.upper():
        index = index * 26 + (ord(ch) - ord("A") + 1)
    return index - 1


def column_index_to_letter(index: int) -> str:
    """``0 -> "A"``, ``7 -> "H"``, ``26 -> "AA"``."""
    if index < 0:
        raise AddressError(f"negative column index: {index}")
    letters = []
    n = index + 1
    while n:
        n, rem = divmod(n - 1, 26)
        letters.append(chr(ord("A") + rem))
    return "".join(reversed(letters))


@dataclass(frozen=True, order=True)
class CellAddress:
    """A zero-based (column, row) cell coordinate with A1 round-tripping."""

    col: int
    row: int

    def __post_init__(self) -> None:
        if self.col < 0 or self.row < 0:
            raise AddressError(f"negative address: col={self.col} row={self.row}")

    @staticmethod
    def parse(a1: str) -> "CellAddress":
        m = _A1_RE.match(a1.strip())
        if not m:
            raise AddressError(f"not an A1 cell reference: {a1!r}")
        return CellAddress(
            col=column_letter_to_index(m.group(1)), row=int(m.group(2)) - 1
        )

    def to_a1(self) -> str:
        return f"{column_index_to_letter(self.col)}{self.row + 1}"

    def __str__(self) -> str:  # pragma: no cover - alias
        return self.to_a1()


def is_cell_reference(token: str) -> bool:
    """True when a token looks like an A1 cell reference (e.g. ``D2``).

    The tokenizer uses this to let literal patterns match cell references,
    per the paper's ``LiteralPat`` ("matches any literal or cell reference
    (e.g. D2) that contains a number or currency value").
    """
    return bool(_A1_RE.match(token.strip()))
