"""Spreadsheet substrate: typed values, cells, tables, and the workbook.

This package stands in for Microsoft Excel in the original system.  It models
exactly the state the NLyze algorithms consume: table schemas and values,
per-cell formatting, the active selection, and the cursor.
"""

from .address import CellAddress, column_index_to_letter, column_letter_to_index, is_cell_reference
from .cell import Cell
from .column import Column, infer_column_type
from .columnar import (
    HAVE_NUMPY,
    ColumnarIndex,
    columnar_enabled,
    set_columnar,
    sync_columnar_from_env,
)
from .formatting import CellFormat, Color, FormatFn
from .table import Table
from .values import CellValue, ValueType, parse_literal, parse_word_number
from .workbook import Workbook

__all__ = [
    "Cell",
    "CellAddress",
    "CellFormat",
    "CellValue",
    "Color",
    "Column",
    "ColumnarIndex",
    "FormatFn",
    "HAVE_NUMPY",
    "Table",
    "ValueType",
    "Workbook",
    "column_index_to_letter",
    "column_letter_to_index",
    "columnar_enabled",
    "infer_column_type",
    "is_cell_reference",
    "parse_literal",
    "parse_word_number",
    "set_columnar",
    "sync_columnar_from_env",
]
