"""Cell formatting attributes.

The DSL gives first-class treatment to formatting (paper §2): programs can
apply formats (``Format(fe, Q)``) and *read them back* as row sources
(``GetFormat(Tbl, fe)``), which is how "color the chef totalpay red ... add up
all the values in the red cells" works.  A format is a small attribute record;
a format *expression* is a set of attribute constraints matched against it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Union


class Color(enum.Enum):
    """Quantitative color attribute (a small fixed palette suffices)."""

    NONE = "none"
    RED = "red"
    GREEN = "green"
    BLUE = "blue"
    YELLOW = "yellow"
    PINK = "pink"
    ORANGE = "orange"
    GRAY = "gray"

    @staticmethod
    def from_name(name: str) -> "Color":
        try:
            return Color(name.strip().lower())
        except ValueError as exc:
            raise ValueError(f"unknown color {name!r}") from exc


@dataclass(frozen=True)
class CellFormat:
    """The formatting state of one cell.

    Boolean attributes (bold, italics, underline) and quantitative attributes
    (color, font size) as in the paper.  Immutable: applying a format change
    produces a new record via :meth:`apply`.
    """

    bold: bool = False
    italics: bool = False
    underline: bool = False
    color: Color = Color.NONE
    font_size: int = 11

    def apply(self, fn: "FormatFn") -> "CellFormat":
        """Return a copy with one attribute changed."""
        return replace(self, **{fn.attribute: fn.value})

    def matches(self, fns: Iterable["FormatFn"]) -> bool:
        """True when every attribute constraint in ``fns`` holds here."""
        return all(getattr(self, fn.attribute) == fn.value for fn in fns)

    @property
    def is_default(self) -> bool:
        return self == CellFormat()


_ATTRIBUTES = {
    "bold": bool,
    "italics": bool,
    "underline": bool,
    "color": Color,
    "font_size": int,
}


@dataclass(frozen=True)
class FormatFn:
    """One formatting function/constraint, e.g. ``Color(red)`` or
    ``Bold(true)`` — the ``fmt`` production in Fig. 2."""

    attribute: str
    value: Union[bool, int, Color]

    def __post_init__(self) -> None:
        expected = _ATTRIBUTES.get(self.attribute)
        if expected is None:
            raise ValueError(f"unknown format attribute {self.attribute!r}")
        if not isinstance(self.value, expected):
            raise TypeError(
                f"format attribute {self.attribute!r} needs {expected.__name__}"
            )

    # -- constructors mirroring the paper's Format Fn grammar --------------

    @staticmethod
    def color(c: Union[Color, str]) -> "FormatFn":
        if isinstance(c, str):
            c = Color.from_name(c)
        return FormatFn("color", c)

    @staticmethod
    def bold(b: bool = True) -> "FormatFn":
        return FormatFn("bold", b)

    @staticmethod
    def italics(b: bool = True) -> "FormatFn":
        return FormatFn("italics", b)

    @staticmethod
    def underline(b: bool = True) -> "FormatFn":
        return FormatFn("underline", b)

    @staticmethod
    def font_size(points: int) -> "FormatFn":
        return FormatFn("font_size", points)

    def describe(self) -> str:
        """English rendering used by the paraphraser."""
        if self.attribute == "color":
            return f"color {self.value.value}"
        if self.attribute == "font_size":
            return f"font size {self.value}"
        if isinstance(self.value, bool):
            return self.attribute if self.value else f"not {self.attribute}"
        return f"{self.attribute} {self.value}"
