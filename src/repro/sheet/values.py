"""Typed cell values.

The NLyze DSL is *richly typed* (paper §2): the type system distinguishes a
plain number from a currency amount, so that, e.g., multiplying two currency
values is rejected while multiplying a currency by a number is fine.  This
module defines the value universe shared by the spreadsheet substrate and the
DSL type checker:

* :class:`ValueType` — the enumeration of scalar types,
* :class:`CellValue` — an immutable (type, payload) pair,
* helpers for parsing user-facing literal text (``"$10"``, ``"20"``,
  ``"capitol hill"``) into typed values.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Union

Number = Union[int, float]


class ValueType(enum.Enum):
    """Scalar types known to the spreadsheet and the DSL."""

    NUMBER = "number"
    CURRENCY = "currency"
    TEXT = "text"
    BOOL = "bool"
    DATE = "date"
    EMPTY = "empty"

    @property
    def is_numeric(self) -> bool:
        """True for types that support arithmetic and ordering."""
        return self in (ValueType.NUMBER, ValueType.CURRENCY)

    @property
    def is_orderable(self) -> bool:
        """True for types that support ``<`` / ``>`` comparisons."""
        return self in (ValueType.NUMBER, ValueType.CURRENCY, ValueType.DATE)


_CURRENCY_RE = re.compile(r"^\$\s*(-?\d+(?:,\d{3})*(?:\.\d+)?)$")
_NUMBER_RE = re.compile(r"^-?\d+(?:,\d{3})*(?:\.\d+)?$")
_PERCENT_RE = re.compile(r"^(-?\d+(?:\.\d+)?)\s*%$")
_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")


@dataclass(frozen=True)
class CellValue:
    """An immutable typed scalar stored in a spreadsheet cell.

    ``payload`` holds the native Python representation: ``int``/``float`` for
    numbers and currencies, ``str`` for text and dates (dates are kept as ISO
    strings, ordered lexicographically which matches chronological order),
    ``bool`` for booleans, and ``None`` for the empty value.
    """

    type: ValueType
    payload: Union[Number, str, bool, None]

    def __post_init__(self) -> None:
        expected = {
            ValueType.NUMBER: (int, float),
            ValueType.CURRENCY: (int, float),
            ValueType.TEXT: (str,),
            ValueType.DATE: (str,),
            ValueType.BOOL: (bool,),
            ValueType.EMPTY: (type(None),),
        }[self.type]
        if not isinstance(self.payload, expected):
            raise TypeError(
                f"payload {self.payload!r} invalid for {self.type.value} cell"
            )
        if self.type is ValueType.NUMBER and isinstance(self.payload, bool):
            raise TypeError("bool payload is not a number")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def number(x: Number) -> "CellValue":
        return CellValue(ValueType.NUMBER, x)

    @staticmethod
    def currency(x: Number) -> "CellValue":
        return CellValue(ValueType.CURRENCY, x)

    @staticmethod
    def text(s: str) -> "CellValue":
        return CellValue(ValueType.TEXT, s)

    @staticmethod
    def boolean(b: bool) -> "CellValue":
        return CellValue(ValueType.BOOL, b)

    @staticmethod
    def date(iso: str) -> "CellValue":
        if not _DATE_RE.match(iso):
            raise ValueError(f"dates must be ISO yyyy-mm-dd strings: {iso!r}")
        return CellValue(ValueType.DATE, iso)

    @staticmethod
    def empty() -> "CellValue":
        return CellValue(ValueType.EMPTY, None)

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.type is ValueType.EMPTY

    @property
    def is_numeric(self) -> bool:
        return self.type.is_numeric

    # -- comparisons used by the evaluator ---------------------------------

    def equals(self, other: "CellValue") -> bool:
        """Spreadsheet equality: numeric types compare by magnitude (a
        currency cell ``$10`` equals the literal number 10, which is how the
        paper's examples compare column values to bare literals); text
        comparison is case-insensitive, matching colloquial user input."""
        if self.is_numeric and other.is_numeric:
            return float(self.payload) == float(other.payload)
        if self.type is not other.type:
            return False
        if self.type is ValueType.TEXT:
            return str(self.payload).strip().lower() == str(other.payload).strip().lower()
        return self.payload == other.payload

    def less_than(self, other: "CellValue") -> bool:
        """Spreadsheet ordering; raises ``TypeError`` on unordered types."""
        if self.is_numeric and other.is_numeric:
            return float(self.payload) < float(other.payload)
        if self.type is ValueType.DATE and other.type is ValueType.DATE:
            return str(self.payload) < str(other.payload)
        raise TypeError(f"cannot order {self.type.value} vs {other.type.value}")

    # -- rendering ---------------------------------------------------------

    def display(self) -> str:
        """Human-facing rendering, the way the value would show in a cell."""
        if self.type is ValueType.CURRENCY:
            amount = float(self.payload)
            if amount == int(amount):
                return f"${int(amount):,}"
            return f"${amount:,.2f}"
        if self.type is ValueType.NUMBER:
            x = self.payload
            if isinstance(x, float) and x == int(x):
                return str(int(x))
            return str(x)
        if self.type is ValueType.BOOL:
            return "TRUE" if self.payload else "FALSE"
        if self.type is ValueType.EMPTY:
            return ""
        return str(self.payload)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.display()


def parse_literal(text: str) -> CellValue | None:
    """Parse user-entered literal text into a typed value.

    Returns ``None`` when the text is not a literal (i.e. it is a word).
    Recognised forms: currency (``$10``, ``$1,250.50``), plain numbers
    (``20``, ``3.5``, ``1,000``), percentages (``15%`` becomes the number
    0.15), booleans, and ISO dates.
    """
    s = text.strip()
    if not s:
        return None
    m = _CURRENCY_RE.match(s)
    if m:
        return CellValue.currency(_to_number(m.group(1)))
    m = _PERCENT_RE.match(s)
    if m:
        return CellValue.number(float(m.group(1)) / 100.0)
    if _NUMBER_RE.match(s):
        return CellValue.number(_to_number(s))
    if s.lower() in ("true", "false"):
        return CellValue.boolean(s.lower() == "true")
    if _DATE_RE.match(s):
        return CellValue.date(s)
    return None


_WORD_NUMBERS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
    "eleven": 11, "twelve": 12, "thirteen": 13, "fourteen": 14,
    "fifteen": 15, "sixteen": 16, "seventeen": 17, "eighteen": 18,
    "nineteen": 19, "twenty": 20, "thirty": 30, "forty": 40, "fifty": 50,
    "sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
    "hundred": 100, "thousand": 1000,
}


def parse_word_number(word: str) -> CellValue | None:
    """Parse a spelled-out number word (``"twenty"``) into a NUMBER value.

    The paper's synonym sets map e.g. ``20 -> {20, twenty}``; the tokenizer
    uses this to let rules with literal patterns match spelled-out numbers.
    Only single-word numbers are supported, which covers the corpus.
    """
    n = _WORD_NUMBERS.get(word.strip().lower())
    if n is None:
        return None
    return CellValue.number(n)


def _to_number(digits: str) -> Number:
    cleaned = digits.replace(",", "")
    value = float(cleaned)
    if value == int(value) and "." not in cleaned:
        return int(value)
    return value
