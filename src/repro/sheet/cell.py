"""A spreadsheet cell: a typed value plus formatting state.

Cells are the unit of mutation: DSL programs overwrite values (placing a
computed scalar/vector at the cursor) and change formats (``Format(fe, Q)``).

This module also owns the process-wide **sheet revision counter** that
makes ``Workbook.fingerprint()`` memoisable.  Every attribute write on a
:class:`Cell` (and on :class:`~repro.sheet.table.Table` / workbook-level
mutators) bumps the counter, so a memoised fingerprint is provably fresh
whenever the counter has not moved — even for mutations that bypass the
workbook API entirely (``table.cell(i, j).value = ...``).  The counter is
deliberately global and coarse: a bump anywhere invalidates every
workbook's memo, which only ever costs a recompute, never staleness.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from .formatting import CellFormat, FormatFn
from .values import CellValue

_revision_lock = threading.Lock()
_revision = 0


def bump_revision() -> int:
    """Record that some sheet state changed; returns the new revision."""
    global _revision
    with _revision_lock:
        _revision += 1
        return _revision


def current_revision() -> int:
    """The revision as of now (compare to detect any intervening change)."""
    with _revision_lock:
        return _revision


@dataclass
class Cell:
    """One mutable spreadsheet cell."""

    value: CellValue = field(default_factory=CellValue.empty)
    format: CellFormat = field(default_factory=CellFormat)

    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        bump_revision()

    def apply_formats(self, fns: Iterable[FormatFn]) -> None:
        """Apply each formatting function in order."""
        fmt = self.format
        for fn in fns:
            fmt = fmt.apply(fn)
        self.format = fmt

    def matches_format(self, fns: Iterable[FormatFn]) -> bool:
        return self.format.matches(fns)

    def copy(self) -> "Cell":
        return Cell(value=self.value, format=self.format)

    def display(self) -> str:
        return self.value.display()
