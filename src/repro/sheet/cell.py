"""A spreadsheet cell: a typed value plus formatting state.

Cells are the unit of mutation: DSL programs overwrite values (placing a
computed scalar/vector at the cursor) and change formats (``Format(fe, Q)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .formatting import CellFormat, FormatFn
from .values import CellValue


@dataclass
class Cell:
    """One mutable spreadsheet cell."""

    value: CellValue = field(default_factory=CellValue.empty)
    format: CellFormat = field(default_factory=CellFormat)

    def apply_formats(self, fns: Iterable[FormatFn]) -> None:
        """Apply each formatting function in order."""
        fmt = self.format
        for fn in fns:
            fmt = fmt.apply(fn)
        self.format = fmt

    def matches_format(self, fns: Iterable[FormatFn]) -> bool:
        return self.format.matches(fns)

    def copy(self) -> "Cell":
        return Cell(value=self.value, format=self.format)

    def display(self) -> str:
        return self.value.display()
