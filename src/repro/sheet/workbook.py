"""The workbook: tables + cursor + active selection + scratch cells.

This is the spreadsheet state a DSL program reads and updates (paper §2):

* computed scalars/vectors are *placed at the active cursor*,
* ``MakeActive(Q)`` changes the active selection (the anonymous view that
  ``GetActive()`` reads back),
* ``Format(fe, Q)`` mutates cell formats (named views read back by
  ``GetFormat``),
* cells outside any table ("scratch" cells like the ``I2`` result in Fig. 1)
  hold earlier results and can be referenced by A1 address in later steps —
  the temporal context that makes programming-in-steps work.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from ..errors import SheetError, UnknownTableError
from .address import CellAddress
from .cell import Cell, bump_revision, current_revision
from .columnar import ColumnarIndex, columnar_enabled
from .table import Table
from .values import CellValue


class Workbook:
    """A collection of tables plus interactive state."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._scratch: dict[CellAddress, Cell] = {}
        self._cursor: CellAddress | None = None
        self._selection: tuple[CellAddress, ...] = ()
        self._fp_digest: str | None = None
        self._fp_revision: int = -1
        self._columnar: ColumnarIndex | None = None
        self._columnar_revision: int = -1
        self._text_values: dict[str, list[tuple[str, str]]] | None = None
        self._text_values_revision: int = -1

    def _touch(self) -> None:
        """Record a workbook-level mutation (cursor, selection, tables).

        Cell- and table-level mutations bump the shared revision counter
        on their own via ``__setattr__`` hooks; this covers the workbook
        state those hooks cannot see.
        """
        bump_revision()

    def clone(self) -> "Workbook":
        """A deep copy of the whole interactive state (tables, scratch
        cells, cursor, selection) — the undo snapshot."""
        twin = Workbook()
        for table in self._tables.values():
            twin.add_table(table.clone(), origin=table.origin)
        twin._scratch = {
            address: cell.copy() for address, cell in self._scratch.items()
        }
        twin._cursor = self._cursor
        twin._selection = self._selection
        return twin

    def restore(self, snapshot: "Workbook") -> None:
        """Overwrite this workbook's state from a snapshot produced by
        :meth:`clone` (tables by name, scratch cells, cursor, selection).
        Used by the session's undo."""
        for key, table in self._tables.items():
            if not snapshot.has_table(key):
                raise SheetError(f"snapshot lacks table {table.name!r}")
            source = snapshot.table(key)
            table._columns = list(source._columns)
            table._index = dict(source._index)
            table._rows = [
                [cell.copy() for cell in row] for row in source._rows
            ]
            table.origin = source.origin
        self._scratch = {
            address: cell.copy()
            for address, cell in snapshot._scratch.items()
        }
        self._cursor = snapshot._cursor
        self._selection = snapshot._selection
        self._touch()

    def fingerprint(self) -> str:
        """A stable content hash of the whole interactive state.

        Two workbooks with identical tables (names, origins, column
        schemas, cell values and formats), scratch cells, cursor, and
        selection share a fingerprint; any visible difference changes it.
        Serving layers key shared translator caches, warm-worker routing,
        per-workbook circuit breakers, and memoised translation results
        (:mod:`repro.cache`) on this value.

        The hash is memoised against the sheet revision counter
        (:func:`repro.sheet.cell.current_revision`): any mutation anywhere
        — a cell write, a table re-anchor, a cursor move — forces a
        recompute, so serving layers can call this per request for free.
        """
        revision = current_revision()
        if self._fp_digest is not None and self._fp_revision == revision:
            return self._fp_digest
        digest = hashlib.sha256()

        def put(*parts: object) -> None:
            for part in parts:
                digest.update(str(part).encode("utf-8", "replace"))
                digest.update(b"\x1f")

        def put_cell(cell: Cell) -> None:
            put(cell.value.type.value, repr(cell.value.payload))
            fmt = cell.format
            if not fmt.is_default:
                put(
                    fmt.bold, fmt.italics, fmt.underline,
                    fmt.color.value, fmt.font_size,
                )

        for key in sorted(self._tables):
            table = self._tables[key]
            put("table", table.name, table.origin.col, table.origin.row)
            for column in table.columns:
                put("col", column.name, column.dtype.value)
            for i in range(table.n_rows):
                for j in range(table.n_cols):
                    put_cell(table.cell(i, j))
        for address in sorted(self._scratch):
            put("scratch", address.col, address.row)
            put_cell(self._scratch[address])
        if self._cursor is not None:
            put("cursor", self._cursor.col, self._cursor.row)
        for address in self._selection:
            put("select", address.col, address.row)
        # Revision captured *before* hashing: a concurrent mutation during
        # the walk leaves the memo conservatively stale (next call
        # recomputes), never wrongly fresh.
        self._fp_digest = digest.hexdigest()
        self._fp_revision = revision
        return self._fp_digest

    # -- tables --------------------------------------------------------------

    def add_table(self, table: Table, origin: CellAddress | None = None) -> Table:
        """Register a table, optionally re-anchoring it at ``origin``.

        Without an explicit origin the first table sits at A1 and later
        tables are stacked two rows below the previous one.
        """
        key = table.name.strip().lower()
        if key in self._tables:
            raise SheetError(f"duplicate table name {table.name!r}")
        if origin is not None:
            table.origin = origin
        elif self._tables:
            last = max(
                self._tables.values(),
                key=lambda t: t.origin.row + t.n_rows,
            )
            table.origin = CellAddress(0, last.origin.row + last.n_rows + 3)
        self._tables[key] = table
        self._touch()
        return table

    def table(self, name: str) -> Table:
        key = name.strip().lower()
        if key not in self._tables:
            raise UnknownTableError(name)
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.strip().lower() in self._tables

    @property
    def tables(self) -> list[Table]:
        return list(self._tables.values())

    @property
    def default_table(self) -> Table:
        """The primary table — the first one added.

        The paper drops the table argument "whenever there is a single table
        or the context makes it clear"; implicit references resolve here.
        """
        if not self._tables:
            raise SheetError("workbook has no tables")
        return next(iter(self._tables.values()))

    # -- cursor ---------------------------------------------------------------

    @property
    def cursor(self) -> CellAddress:
        if self._cursor is None:
            raise SheetError("no active cursor set")
        return self._cursor

    def set_cursor(self, address: CellAddress | str) -> None:
        if isinstance(address, str):
            address = CellAddress.parse(address)
        self._cursor = address
        self._touch()

    @property
    def has_cursor(self) -> bool:
        return self._cursor is not None

    # -- cell access ------------------------------------------------------------

    def find_table_cell(self, address: CellAddress) -> tuple[Table, int, int] | None:
        """The (table, row, col) owning a data cell at ``address``, if any."""
        for table in self._tables.values():
            loc = table.locate(address)
            if loc is not None:
                return (table, loc[0], loc[1])
        return None

    def get_cell(self, address: CellAddress | str) -> Cell | None:
        """The cell at an address: a table data cell, a scratch cell, or
        ``None`` when the address is blank."""
        if isinstance(address, str):
            address = CellAddress.parse(address)
        hit = self.find_table_cell(address)
        if hit is not None:
            table, row, col = hit
            return table.cell(row, col)
        return self._scratch.get(address)

    def get_value(self, address: CellAddress | str) -> CellValue:
        cell = self.get_cell(address)
        return cell.value if cell is not None else CellValue.empty()

    def set_value(self, address: CellAddress | str, value: CellValue) -> None:
        if isinstance(address, str):
            address = CellAddress.parse(address)
        hit = self.find_table_cell(address)
        if hit is not None:
            table, row, col = hit
            table.cell(row, col).value = value
            return
        self._scratch.setdefault(address, Cell()).value = value

    @property
    def scratch_addresses(self) -> list[CellAddress]:
        return sorted(self._scratch)

    # -- placement of program results ------------------------------------------

    def place_scalar(self, value: CellValue) -> CellAddress:
        """Write a computed scalar at the cursor; returns where it landed."""
        at = self.cursor
        self.set_value(at, value)
        return at

    def place_vector(self, values: Sequence[CellValue]) -> list[CellAddress]:
        """Write a computed vector downward starting at the cursor."""
        start = self.cursor
        addresses = []
        for i, v in enumerate(values):
            at = CellAddress(start.col, start.row + i)
            self.set_value(at, v)
            addresses.append(at)
        return addresses

    # -- selection (the spatial/temporal context) -------------------------------

    @property
    def selection(self) -> tuple[CellAddress, ...]:
        return self._selection

    def select(self, addresses: Iterable[CellAddress]) -> None:
        self._selection = tuple(sorted(set(addresses)))
        self._touch()

    def clear_selection(self) -> None:
        self._selection = ()
        self._touch()

    def selected_row_indices(self, table: Table) -> list[int]:
        """Rows of ``table`` containing at least one actively-selected cell —
        the ``GetActive()`` row source."""
        rows = set()
        for address in self._selection:
            loc = table.locate(address)
            if loc is not None:
                rows.add(loc[0])
        return sorted(rows)

    def select_rows(self, table: Table, rows: Iterable[int]) -> None:
        """Select every cell of the given table rows."""
        addresses = []
        for i in rows:
            for j in range(table.n_cols):
                addresses.append(table.address_of(i, j))
        self.select(addresses)

    def select_cells(self, table: Table, cells: Iterable[tuple[int, int]]) -> None:
        self.select(table.address_of(i, j) for i, j in cells)

    # -- vocabulary for the translator -------------------------------------------

    def all_columns(self) -> list[tuple[Table, str]]:
        return [
            (table, name)
            for table in self._tables.values()
            for name in table.column_names
        ]

    def find_columns(self, name: str) -> list[tuple[Table, str]]:
        """Tables defining a column with this (case-insensitive) name,
        default table first so implicit references prefer it."""
        hits = []
        for table in self._tables.values():
            if table.has_column(name):
                hits.append((table, table.column(name).name))
        return hits

    def columnar_index(self) -> ColumnarIndex:
        """The interned columnar view of this workbook's text content
        (:mod:`repro.sheet.columnar`), memoised against the sheet revision
        counter exactly like :meth:`fingerprint`: any mutation anywhere
        forces a rebuild, so translators and type checkers can fetch it
        per construction for free."""
        # Revision captured *before* building: a concurrent mutation during
        # the build leaves the memo conservatively stale, never wrongly
        # fresh (same discipline as ``fingerprint``).
        revision = current_revision()
        if self._columnar is not None and self._columnar_revision == revision:
            return self._columnar
        index = ColumnarIndex(self)
        self._columnar = index
        self._columnar_revision = revision
        return index

    def all_text_values(self) -> dict[str, list[tuple[str, str]]]:
        """lowercase text value -> [(table name, column name)] everywhere it
        occurs; the translator's sheet-value lexicon.

        Memoised against the sheet revision counter (and served straight
        from the columnar index when that backend is enabled); callers must
        treat the result as read-only.  With ``REPRO_NO_COLUMNAR=1`` the
        original rebuild-per-call row walk is restored unchanged.
        """
        if not columnar_enabled():
            return self._all_text_values_rows()
        revision = current_revision()
        if (
            self._text_values is not None
            and self._text_values_revision == revision
        ):
            return self._text_values
        merged = self.columnar_index().all_text_values()
        self._text_values = merged
        self._text_values_revision = revision
        return merged

    def _all_text_values_rows(self) -> dict[str, list[tuple[str, str]]]:
        """The row-backed lexicon build (the pre-columnar code path)."""
        merged: dict[str, list[tuple[str, str]]] = {}
        for table in self._tables.values():
            for value, columns in table.distinct_text_values().items():
                slots = merged.setdefault(value, [])
                for col in columns:
                    if (table.name, col) not in slots:
                        slots.append((table.name, col))
        return merged
