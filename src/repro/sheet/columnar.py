"""Columnar, array-backed view of a workbook's text content.

The translator's seed matching (``SheetContext``) and the type checker's
content check both consume the same question — *which values occur in
which columns* — and the row-backed answer (``Table.distinct_text_values``)
walks every cell in Python on every ``Translator`` construction.  On a
100k-row table that walk dominates cold translation.

This module interns every normalised text value into a string pool once
per workbook revision and stores each TEXT column as a vector of pool ids
(stdlib ``array('q')``; a numpy fast path for the distinct-id scan is
picked up automatically when numpy is importable).  Lookups then become:

* *does this span name a sheet value?* — one pool dict probe,
* *which (table, column) slots hold it?* — a per-id memo over the small
  per-column distinct-id sets,
* *does value v occur in column c?* (the ``Valid`` content check) — one
  pool probe plus one set-membership test,

instead of per-probe scans over ``dict``-of-rows.

``REPRO_NO_COLUMNAR=1`` is the escape hatch, mirroring ``REPRO_NO_INTERN``
(:mod:`repro.dsl.ast`): it restores the row-backed lookups *and* every
optimisation gated on this switch downstream (template interning, the
compiled-alignment table, the cached builtin rule set).  The differential
harness proves both modes byte-identical.

The index is pure derived state: building it never mutates the workbook,
and :meth:`repro.sheet.workbook.Workbook.columnar_index` memoises it
against the global sheet revision counter, so forked gateway workers
inherit a warm index (and the module-level template tables) through fork
copy-on-write.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING

from .values import ValueType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .workbook import Workbook

try:  # optional numpy fast path for the distinct-id scan
    import numpy as _np
except Exception:  # pragma: no cover - numpy genuinely absent in CI
    _np = None

HAVE_NUMPY = _np is not None

_COLUMNAR = os.environ.get("REPRO_NO_COLUMNAR", "") != "1"


def columnar_enabled() -> bool:
    """True when the columnar backend (and the optimisations gated on it)
    are active (default)."""
    return _COLUMNAR


def set_columnar(enabled: bool) -> None:
    """Flip the columnar switch at runtime (tests, differential harness).

    The per-workbook index memo is keyed on the revision counter and the
    index itself is a pure function of sheet content, so nothing needs
    clearing on a flip: a disabled probe simply never consults it.
    """
    global _COLUMNAR
    _COLUMNAR = bool(enabled)


def sync_columnar_from_env() -> None:
    """Re-read ``REPRO_NO_COLUMNAR`` — needed by forked gateway workers
    whose parent imported this module before the env var was set."""
    set_columnar(os.environ.get("REPRO_NO_COLUMNAR", "") != "1")


class ColumnVector:
    """One TEXT column as a vector of string-pool ids (-1 = empty cell)."""

    __slots__ = ("table", "name", "ids", "distinct")

    def __init__(
        self, table: str, name: str, ids: array, distinct: frozenset[int]
    ) -> None:
        self.table = table
        self.name = name
        self.ids = ids
        self.distinct = distinct

    def contains(self, ident: int) -> bool:
        return ident in self.distinct

    def __len__(self) -> int:
        return len(self.ids)


def _distinct_ids(ids: array) -> frozenset[int]:
    """The set of non-empty pool ids in a column vector.

    numpy (when present) runs the scan as one C-level ``unique`` over a
    zero-copy int64 view of the array buffer; the stdlib path folds the
    vector through ``set`` directly.  Both exclude the -1 empty marker.
    """
    if _np is not None and len(ids) > 512:
        distinct = _np.unique(_np.frombuffer(ids, dtype=_np.int64))
        return frozenset(int(i) for i in distinct if i >= 0)
    out = set(ids)
    out.discard(-1)
    return frozenset(out)


class ColumnarIndex:
    """Interned-string-id view of every TEXT column in a workbook.

    Built once per sheet revision (see ``Workbook.columnar_index``); all
    derived artefacts — slot lists, the merged value lexicon, vocabulary
    sets — are computed lazily and memoised on the index, so they are
    shared by every ``SheetContext``/``TypeChecker`` over the same sheet
    state.  ``derived`` is a scratch memo for higher layers to stash
    revision-scoped objects (e.g. the spell corrector) without this module
    needing to know about them.
    """

    def __init__(self, workbook: "Workbook") -> None:
        self._pool: dict[str, int] = {}
        self._strings: list[str] = []
        # (table display name, vectors in column order), in table order —
        # the exact traversal order of Workbook.all_text_values().
        self._tables: list[tuple[str, tuple[ColumnVector, ...]]] = []
        # table key -> column name -> vector, for the content check.
        self._by_table: dict[str, dict[str, ColumnVector]] = {}
        self._slots: dict[int, tuple[tuple[str, str], ...]] = {}
        self._text_values: dict[str, list[tuple[str, str]]] | None = None
        self._value_words: frozenset[str] | None = None
        self._max_value_words: int | None = None
        self.derived: dict = {}
        for table in workbook.tables:
            vectors = tuple(
                self._intern_column(table, j, column.name)
                for j, column in enumerate(table.columns)
                if column.dtype is ValueType.TEXT
            )
            self._tables.append((table.name, vectors))
            self._by_table[table.name.strip().lower()] = {
                v.name: v for v in vectors
            }

    # -- construction ------------------------------------------------------

    def _intern_column(self, table, j: int, name: str) -> ColumnVector:
        """Normalise (strip + lower, exactly as ``distinct_text_values``)
        and intern one column's cells.  The raw-payload memo makes repeated
        values — the common case in large sheets — one dict probe each."""
        pool = self._pool
        strings = self._strings
        memo: dict[str, int] = {}
        ids = array("q")
        append = ids.append
        rows = table._rows
        for i in range(table.n_rows):
            v = rows[i][j].value
            if v.is_empty:
                append(-1)
                continue
            raw = v.payload if type(v.payload) is str else str(v.payload)
            ident = memo.get(raw)
            if ident is None:
                norm = raw.strip().lower()
                ident = pool.get(norm)
                if ident is None:
                    ident = len(strings)
                    pool[norm] = ident
                    strings.append(norm)
                memo[raw] = ident
            append(ident)
        return ColumnVector(table.name, name, ids, _distinct_ids(ids))

    # -- probes ------------------------------------------------------------

    def value_id(self, norm: str) -> int | None:
        """Pool id of a normalised value, or None when it occurs nowhere."""
        return self._pool.get(norm)

    def slots(self, norm: str) -> tuple[tuple[str, str], ...]:
        """Every (table name, column name) slot containing ``norm``, in
        ``Workbook.all_text_values()`` order (tables in insertion order,
        columns in header order within a table)."""
        ident = self._pool.get(norm)
        if ident is None:
            return ()
        cached = self._slots.get(ident)
        if cached is None:
            cached = tuple(
                (table, vector.name)
                for table, vectors in self._tables
                for vector in vectors
                if ident in vector.distinct
            )
            self._slots[ident] = cached
        return cached

    def occurs_in(self, table_key: str, norm: str, column_name: str) -> bool:
        """True when ``norm`` occurs in the named column — the columnar
        face of the type checker's Eq(text column, text literal) content
        check, replacing a full ``distinct_text_values`` table walk with
        one pool probe and one set test."""
        ident = self._pool.get(norm)
        if ident is None:
            return False
        columns = self._by_table.get(table_key)
        if columns is None:
            return False
        vector = columns.get(column_name)
        return vector is not None and ident in vector.distinct

    # -- derived, revision-scoped artefacts --------------------------------

    def all_text_values(self) -> dict[str, list[tuple[str, str]]]:
        """The merged value -> slots lexicon, equal (keys, and slot-list
        order per key) to the row-backed ``Workbook.all_text_values()``.
        Callers must treat it as read-only: it is shared per revision."""
        if self._text_values is None:
            strings = self._strings
            merged: dict[str, list[tuple[str, str]]] = {}
            for table, vectors in self._tables:
                for vector in vectors:
                    name = vector.name
                    for ident in sorted(vector.distinct):
                        merged.setdefault(strings[ident], []).append(
                            (table, name)
                        )
            self._text_values = merged
        return self._text_values

    @property
    def value_words(self) -> frozenset[str]:
        """Every word occurring inside some sheet value (the translator's
        ``is_value_word`` / content-vocabulary source)."""
        if self._value_words is None:
            words: set[str] = set()
            for value in self._strings:
                words.update(value.split())
            self._value_words = frozenset(words)
        return self._value_words

    @property
    def max_value_words(self) -> int:
        """Longest value measured in words (bounds value-span probing)."""
        if self._max_value_words is None:
            self._max_value_words = max(
                (len(value.split()) for value in self._strings), default=1
            )
        return self._max_value_words

    @property
    def n_values(self) -> int:
        return len(self._strings)

    def n_cells(self) -> int:
        return sum(
            len(vector) for _, vectors in self._tables for vector in vectors
        )
