"""Corpus container with deterministic train/test splitting.

"To construct the rules we performed a random 70/30 split of collected
natural language descriptions and used the 70% split to build a set of 105
rules" (paper §5).  The split here is seeded, so every experiment sees the
same train and test sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .generator import (
    CORPUS_SIZE,
    DEFAULT_SEED,
    Description,
    generate_corpus,
    generate_user_study,
)
from .tasks import Task, all_tasks


@dataclass
class Corpus:
    """The evaluation corpus plus its split."""

    descriptions: list[Description]
    seed: int = DEFAULT_SEED
    train: list[Description] = field(default_factory=list)
    test: list[Description] = field(default_factory=list)

    @staticmethod
    def default(seed: int = DEFAULT_SEED, total: int = CORPUS_SIZE) -> "Corpus":
        """The versioned default corpus: same seed, same 3570 strings."""
        corpus = Corpus(generate_corpus(seed=seed, total=total), seed=seed)
        corpus.split()
        return corpus

    def split(self, train_fraction: float = 0.7) -> None:
        """Seeded random 70/30 split, stratified implicitly by shuffling the
        whole corpus (every task contributes to both sides with high
        probability at this corpus size)."""
        rng = random.Random(self.seed * 31 + 7)
        shuffled = list(self.descriptions)
        rng.shuffle(shuffled)
        cut = int(len(shuffled) * train_fraction)
        self.train = shuffled[:cut]
        self.test = shuffled[cut:]

    def __len__(self) -> int:
        return len(self.descriptions)

    def by_sheet(self, sheet_id: str, subset: str = "test") -> list[Description]:
        pool = {"train": self.train, "test": self.test, "all": self.descriptions}[
            subset
        ]
        return [d for d in pool if d.sheet_id == sheet_id]

    def by_task(self, task_id: str, subset: str = "all") -> list[Description]:
        pool = {"train": self.train, "test": self.test, "all": self.descriptions}[
            subset
        ]
        return [d for d in pool if d.task_id == task_id]

    def task_of(self, description: Description) -> Task:
        for task in all_tasks():
            if task.task_id == description.task_id:
                return task
        raise KeyError(description.task_id)


def user_study_descriptions(seed: int = DEFAULT_SEED) -> list[Description]:
    """The 62 hard-mode descriptions of the §5.2 analog."""
    return generate_user_study(seed=seed)
