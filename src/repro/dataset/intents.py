"""Task intents: a declarative layer between tasks and the DSL.

Each evaluation task is described once as an :class:`Intent` — the semantic
content of the task, independent of wording.  From an intent we derive both

* the *gold program* (the DSL expression a correct translation must match),
  via :func:`build_gold`, and
* the many natural-language *descriptions* of the task, via the surface
  realizer in :mod:`repro.dataset.generator`.

This mirrors how the paper's corpus was built: each of the 40 tasks was
shown to crowd workers as a before/after screenshot (one fixed semantics),
and the workers produced varied wordings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl import ast
from ..sheet import CellValue, FormatFn, ValueType, Workbook


@dataclass(frozen=True)
class Filter:
    """One predicate of a task.

    ``op`` is one of ``eq``, ``neq``, ``lt``, ``gt`` (value comparisons),
    ``lt_col``/``gt_col`` (column-to-column), or ``gt_avg``/``lt_avg``
    (comparison against the column's own average — the paper's "larger than
    the average" nesting).
    """

    column: str
    op: str
    value: object | None = None
    other_column: str | None = None

    def __post_init__(self) -> None:
        allowed = {"eq", "neq", "lt", "gt", "lt_col", "gt_col", "gt_avg", "lt_avg"}
        if self.op not in allowed:
            raise ValueError(f"bad filter op {self.op!r}")
        if self.op.endswith("_col") and not self.other_column:
            raise ValueError("column comparison needs other_column")


@dataclass(frozen=True)
class Intent:
    """The semantics of one evaluation task.

    ``kind`` selects the program shape:

    * ``reduce`` — ``rop(column, rs, filters)`` with ``reduce_op``;
    * ``count`` — ``Count(rs, filters)``;
    * ``select`` — ``MakeActive(SelectRows(rs, filters))``;
    * ``format`` — ``Format({Color}, SelectRows(rs, filters))``;
    * ``lookup`` — scalar ``Lookup(needle, aux_table, key, out)``;
    * ``join_map`` — vector ``Lookup`` joined on ``key_column`` and
      multiplied by ``column`` ("lookup the payrate and multiply by hours");
    * ``map2`` — ``map_op(column, other column in operand2)``;
    * ``map_scaled2`` — ``Mult(Add(column, operand2), scale)`` (the
      "basepay plus otpay times 1.10" composite);
    * ``map_scalar`` — ``map_op(column, scalar operand2)``;
    * ``argmax`` — ``MakeActive(SelectRows(rs, Eq(column, Max(column))))``.
    """

    kind: str
    reduce_op: str | None = None
    column: str | None = None
    filters: tuple[Filter, ...] = ()
    disjunctive: bool = False
    needle: str | None = None
    key_column: str | None = None
    out_column: str | None = None
    aux_table: str | None = None
    map_op: str | None = None
    operand2: object | None = None
    scale: float | None = None
    format_color: str | None = None


_REDUCE_OPS = {
    "sum": ast.ReduceOp.SUM,
    "avg": ast.ReduceOp.AVG,
    "min": ast.ReduceOp.MIN,
    "max": ast.ReduceOp.MAX,
}
_BIN_OPS = {
    "add": ast.BinaryOp.ADD,
    "sub": ast.BinaryOp.SUB,
    "mult": ast.BinaryOp.MULT,
    "div": ast.BinaryOp.DIV,
}


def literal_for_column(workbook: Workbook, column: str, value: object) -> ast.Lit:
    """A literal typed to match ``column`` (currency columns get currency
    literals, so the gold program passes the strict type check)."""
    dtype = workbook.default_table.column(column).dtype
    if isinstance(value, str):
        return ast.Lit(CellValue.text(value))
    if dtype is ValueType.CURRENCY:
        return ast.Lit(CellValue.currency(value))
    return ast.Lit(CellValue.number(value))


def build_filter(workbook: Workbook, f: Filter) -> ast.Expr:
    col = ast.ColumnRef(f.column)
    if f.op in ("lt_col", "gt_col"):
        op = ast.RelOp.LT if f.op == "lt_col" else ast.RelOp.GT
        return ast.Compare(op, col, ast.ColumnRef(f.other_column))
    if f.op in ("gt_avg", "lt_avg"):
        avg = ast.Reduce(ast.ReduceOp.AVG, col, ast.GetTable(), ast.TrueF())
        op = ast.RelOp.GT if f.op == "gt_avg" else ast.RelOp.LT
        return ast.Compare(op, col, avg)
    lit = literal_for_column(workbook, f.column, f.value)
    if f.op == "eq":
        return ast.Compare(ast.RelOp.EQ, col, lit)
    if f.op == "neq":
        return ast.Not(ast.Compare(ast.RelOp.EQ, col, lit))
    op = ast.RelOp.LT if f.op == "lt" else ast.RelOp.GT
    return ast.Compare(op, col, lit)


def build_condition(workbook: Workbook, intent: Intent) -> ast.Expr:
    if not intent.filters:
        return ast.TrueF()
    parts = [build_filter(workbook, f) for f in intent.filters]
    combined = parts[0]
    for part in parts[1:]:
        combined = (
            ast.Or(combined, part) if intent.disjunctive else ast.And(combined, part)
        )
    return combined


def build_gold(workbook: Workbook, intent: Intent) -> ast.Expr:
    """The gold DSL program for an intent over a concrete workbook."""
    rs = ast.GetTable()
    cond = build_condition(workbook, intent)
    if intent.kind == "reduce":
        return ast.Reduce(
            _REDUCE_OPS[intent.reduce_op], ast.ColumnRef(intent.column), rs, cond
        )
    if intent.kind == "count":
        return ast.Count(rs, cond)
    if intent.kind == "select":
        return ast.MakeActive(ast.SelectRows(rs, cond))
    if intent.kind == "format":
        spec = ast.FormatSpec((FormatFn.color(intent.format_color),))
        return ast.FormatCells(spec, ast.SelectRows(rs, cond))
    if intent.kind == "lookup":
        return ast.Lookup(
            ast.Lit(CellValue.text(intent.needle)),
            ast.GetTable(intent.aux_table),
            ast.ColumnRef(intent.key_column),
            ast.ColumnRef(intent.out_column),
        )
    if intent.kind == "join_map":
        join = ast.Lookup(
            ast.ColumnRef(intent.key_column),
            ast.GetTable(intent.aux_table),
            ast.ColumnRef(intent.key_column),
            ast.ColumnRef(intent.out_column),
        )
        return ast.BinOp(_BIN_OPS[intent.map_op], join, ast.ColumnRef(intent.column))
    if intent.kind == "map2":
        return ast.BinOp(
            _BIN_OPS[intent.map_op],
            ast.ColumnRef(intent.column),
            ast.ColumnRef(str(intent.operand2)),
        )
    if intent.kind == "map_scaled2":
        inner = ast.BinOp(
            ast.BinaryOp.ADD,
            ast.ColumnRef(intent.column),
            ast.ColumnRef(str(intent.operand2)),
        )
        return ast.BinOp(
            ast.BinaryOp.MULT, inner, ast.Lit(CellValue.number(intent.scale))
        )
    if intent.kind == "map_scalar":
        return ast.BinOp(
            _BIN_OPS[intent.map_op],
            ast.ColumnRef(intent.column),
            ast.Lit(CellValue.number(intent.operand2)),
        )
    if intent.kind == "argmax":
        best = ast.Reduce(
            ast.ReduceOp.MAX, ast.ColumnRef(intent.column), ast.GetTable(), ast.TrueF()
        )
        return ast.MakeActive(
            ast.SelectRows(rs, ast.Compare(ast.RelOp.EQ, ast.ColumnRef(intent.column), best))
        )
    raise ValueError(f"unknown intent kind {intent.kind!r}")
