"""The evaluation dataset: the four sheets, the 40 tasks, and the
deterministic description generator recreating the paper's 3570-description
corpus (see DESIGN.md for the substitution rationale)."""

from .corpus import Corpus, user_study_descriptions
from .generator import (
    CORPUS_SIZE,
    DEFAULT_SEED,
    Description,
    generate_corpus,
    generate_descriptions,
    generate_user_study,
)
from .intents import Filter, Intent, build_gold
from .sheets import SHEET_ORDER, build_sheet
from .stress import (
    DEFAULT_STRESS_SEED,
    STRESS_SIZES,
    stress_sentences,
    stress_workbook,
)
from .tasks import Task, all_tasks, tasks_for_sheet, validate_tasks

__all__ = [
    "CORPUS_SIZE",
    "Corpus",
    "DEFAULT_SEED",
    "DEFAULT_STRESS_SEED",
    "Description",
    "STRESS_SIZES",
    "Filter",
    "Intent",
    "SHEET_ORDER",
    "Task",
    "all_tasks",
    "build_gold",
    "build_sheet",
    "generate_corpus",
    "generate_descriptions",
    "generate_user_study",
    "stress_sentences",
    "stress_workbook",
    "tasks_for_sheet",
    "user_study_descriptions",
    "validate_tasks",
]
