"""The four evaluation spreadsheets.

The paper used 4 spreadsheets from the Excel product team, "conceptually
different areas: employee payrolls, inventory management, country facts, and
sales invoices", chosen to vary the vocabulary and implicit relations in the
descriptions.  Those sheets are proprietary; these four recreate the same
domains (the payroll sheet follows Fig. 1 closely, including the PayRates
side table used by lookup tasks).
"""

from __future__ import annotations

from ..sheet import Table, ValueType, Workbook

_T = ValueType.TEXT
_N = ValueType.NUMBER
_C = ValueType.CURRENCY


def payroll_workbook() -> Workbook:
    """Sheet #1 — employee payroll (the Fig. 1 coffee-shop sheet)."""
    wb = Workbook()
    wb.add_table(
        Table.from_data(
            "Employees",
            [
                "name", "location", "title", "hours", "othours",
                "basepay", "otpay", "totalpay",
            ],
            [
                ["alice", "capitol hill", "barista", 30, 2, 360, 36, 396],
                ["bob", "capitol hill", "chef", 40, 0, 800, 0, 800],
                ["carol", "queen anne", "barista", 25, 5, 300, 90, 390],
                ["dave", "queen anne", "cashier", 18, 0, 198, 0, 198],
                ["erin", "capitol hill", "barista", 35, 4, 420, 72, 492],
                ["frank", "downtown", "chef", 38, 6, 760, 224, 984],
                ["grace", "downtown", "cashier", 22, 0, 242, 0, 242],
                ["henry", "capitol hill", "cashier", 28, 1, 308, 16, 324],
                ["iris", "queen anne", "chef", 36, 3, 720, 112, 832],
                ["jack", "downtown", "barista", 21, 0, 252, 0, 252],
                ["karen", "capitol hill", "barista", 33, 2, 396, 36, 432],
                ["luis", "queen anne", "barista", 16, 0, 192, 0, 192],
            ],
            types=[_T, _T, _T, _N, _N, _C, _C, _C],
        )
    )
    wb.add_table(
        Table.from_data(
            "PayRates",
            ["title", "payrate", "otrate"],
            [
                ["barista", 12, 18],
                ["chef", 20, 30],
                ["cashier", 11, 16],
            ],
            types=[_T, _C, _C],
        )
    )
    wb.set_cursor("J2")
    return wb


def inventory_workbook() -> Workbook:
    """Sheet #2 — inventory management."""
    wb = Workbook()
    wb.add_table(
        Table.from_data(
            "Inventory",
            [
                "item", "category", "supplier", "warehouse",
                "quantity", "reorder", "unitprice", "stockvalue",
            ],
            [
                ["espresso beans", "coffee", "acme foods", "north", 120, 40, 14, 1680],
                ["drip beans", "coffee", "acme foods", "north", 60, 50, 9, 540],
                ["green tea", "tea", "leaf co", "south", 200, 30, 6, 1200],
                ["black tea", "tea", "leaf co", "north", 35, 40, 7, 245],
                ["paper cups", "supplies", "box corp", "south", 900, 300, 1, 900],
                ["lids", "supplies", "box corp", "south", 450, 300, 1, 450],
                ["oat milk", "dairy", "farm fresh", "north", 80, 60, 4, 320],
                ["whole milk", "dairy", "farm fresh", "north", 45, 60, 3, 135],
                ["sugar", "supplies", "acme foods", "south", 150, 50, 2, 300],
                ["chai mix", "tea", "leaf co", "south", 25, 20, 11, 275],
                ["cold brew", "coffee", "bean bros", "south", 70, 30, 13, 910],
                ["decaf beans", "coffee", "bean bros", "north", 20, 30, 12, 240],
            ],
            types=[_T, _T, _T, _T, _N, _N, _C, _C],
        )
    )
    wb.set_cursor("J2")
    return wb


def countries_workbook() -> Workbook:
    """Sheet #3 — country facts (gdp-per-capita tasks from Tab. 1)."""
    wb = Workbook()
    wb.add_table(
        Table.from_data(
            "Countries",
            [
                "country", "continent", "currency",
                "population", "gdp", "gdppercapita",
            ],
            [
                ["germany", "europe", "euro", 81, 3730, 46],
                ["france", "europe", "euro", 66, 2810, 42],
                ["poland", "europe", "zloty", 38, 525, 14],
                ["norway", "europe", "krone", 5, 500, 100],
                ["switzerland", "europe", "franc", 8, 685, 85],
                ["japan", "asia", "yen", 127, 4600, 36],
                ["china", "asia", "yuan", 1360, 9240, 7],
                ["india", "asia", "rupee", 1250, 1875, 2],
                ["brazil", "south america", "real", 200, 2245, 11],
                ["chile", "south america", "peso", 18, 277, 15],
                ["canada", "north america", "dollar", 35, 1825, 52],
                ["mexico", "north america", "peso", 122, 1260, 10],
                ["nigeria", "africa", "naira", 174, 515, 3],
                ["egypt", "africa", "pound", 87, 272, 3],
                ["australia", "oceania", "dollar", 23, 1560, 67],
            ],
            types=[_T, _T, _T, _N, _C, _C],
        )
    )
    wb.set_cursor("H2")
    return wb


def invoices_workbook() -> Workbook:
    """Sheet #4 — sales invoices."""
    wb = Workbook()
    wb.add_table(
        Table.from_data(
            "Invoices",
            [
                "invoice", "customer", "region", "product",
                "units", "unitprice", "total", "status",
            ],
            [
                ["inv-001", "contoso", "west", "widget", 10, 25, 250, "paid"],
                ["inv-002", "fabrikam", "east", "gadget", 4, 99, 396, "unpaid"],
                ["inv-003", "contoso", "west", "gadget", 2, 99, 198, "paid"],
                ["inv-004", "northwind", "southeast", "widget", 20, 25, 500, "unpaid"],
                ["inv-005", "adventure works", "east", "gizmo", 7, 45, 315, "paid"],
                ["inv-006", "fabrikam", "east", "widget", 15, 25, 375, "paid"],
                ["inv-007", "northwind", "southeast", "gizmo", 3, 45, 135, "unpaid"],
                ["inv-008", "contoso", "west", "widget", 8, 25, 200, "overdue"],
                ["inv-009", "tailspin", "northwest", "gadget", 5, 99, 495, "paid"],
                ["inv-010", "tailspin", "northwest", "gizmo", 12, 45, 540, "unpaid"],
                ["inv-011", "adventure works", "east", "widget", 30, 25, 750, "paid"],
                ["inv-012", "northwind", "southeast", "gadget", 1, 99, 99, "overdue"],
            ],
            types=[_T, _T, _T, _T, _N, _C, _C, _T],
        )
    )
    wb.set_cursor("J2")
    return wb


SHEET_BUILDERS = {
    "payroll": payroll_workbook,
    "inventory": inventory_workbook,
    "countries": countries_workbook,
    "invoices": invoices_workbook,
}

SHEET_ORDER = ("payroll", "inventory", "countries", "invoices")


def build_sheet(sheet_id: str) -> Workbook:
    """A fresh workbook for one of the four evaluation sheets."""
    try:
        return SHEET_BUILDERS[sheet_id]()
    except KeyError as exc:
        raise KeyError(
            f"unknown sheet {sheet_id!r}; one of {sorted(SHEET_BUILDERS)}"
        ) from exc
