"""Deterministic large-sheet stress workbooks.

The four evaluation sheets (:mod:`repro.dataset.sheets`) are small —
half a dozen rows each — which is right for reproducing the paper's
Table 2 but says nothing about the regimes the columnar backend
(:mod:`repro.sheet.columnar`) targets: seed matching and content checks
over 10k-100k-row tables.  This module generates those tables:

* **deterministic** — every cell is a pure function of ``(rows, seed)``
  (``random.Random``, no wall-clock anywhere), so fingerprints are stable
  across runs and the bench A/B can assert byte-identical output;
* **seeded value distributions** — a Zipf-ish skew over bounded value
  pools (most rows reuse popular values, a long tail stays rare), the
  shape real sheets have and the shape that makes the interned string
  pool earn its keep;
* **duplicated values across columns** — every region value also appears
  in ``shipregion`` and in the side table's ``region`` column, so a bare
  value span resolves to *multiple* (table, column) slots and the
  paper's ResolveCol fallback is exercised at scale, not just on the
  six-row payroll sheet.

``stress_sentences`` derives a deterministic workload from the generated
content (sentences referencing real values of the sheet), so callers
never have to peek at the generator's internals.
"""

from __future__ import annotations

import random

from ..sheet import Table, ValueType, Workbook

#: Row counts the evalkit experiment and the perf bench report on.
STRESS_SIZES = (10_000, 100_000)

DEFAULT_STRESS_SEED = 11

# Multi-word region names: fixed pool, heavily duplicated across rows and
# across the region/shipregion columns and the Couriers side table.
_REGIONS = (
    "north harbor", "east bay", "capitol ridge", "old town",
    "south mesa", "west landing", "pine hollow", "cedar flats",
    "lake union", "stone creek", "fox valley", "iron point",
)

_CATEGORIES = (
    "grocery", "hardware", "apparel", "garden",
    "electronics", "stationery", "toys", "pantry",
)

_COURIERS = (
    "swiftship", "parcelrun", "cargomax", "redline",
    "bluecrate", "overland",
)

_SYLLABLES = (
    "ba", "re", "mo", "ta", "li", "no", "ker", "vin", "sol", "dra",
    "fen", "gul", "ral", "tem", "os", "ca", "zen", "pir", "hul", "mar",
)


def _word(rng: random.Random, syllables: int) -> str:
    return "".join(rng.choice(_SYLLABLES) for _ in range(syllables))


def _pool(rng: random.Random, size: int, syllables: int) -> list[str]:
    """``size`` distinct generated words."""
    out: list[str] = []
    seen: set[str] = set()
    while len(out) < size:
        word = _word(rng, syllables)
        if word not in seen:
            seen.add(word)
            out.append(word)
    return out


def _skewed(rng: random.Random, pool: list[str]) -> str:
    """Zipf-ish draw: rank r is ~1/(r+1) likely — a popular head plus a
    long tail, like real categorical sheet columns."""
    weights = [1.0 / (r + 1) for r in range(len(pool))]
    return rng.choices(pool, weights=weights, k=1)[0]


def stress_workbook(
    rows: int, seed: int = DEFAULT_STRESS_SEED
) -> Workbook:
    """A deterministic ``rows``-row Orders workbook plus a Couriers side
    table (lookup target; shares region values with the main table)."""
    rng = random.Random(rows * 1_000_003 + seed)
    # Distinct-value counts scale with the sheet (so the string pool and
    # the spell-corrector vocabulary grow too) but stay bounded the way
    # real categorical data is.
    customers = _pool(rng, max(24, rows // 50), 3)
    surnames = _pool(rng, max(12, rows // 200), 2)
    products = _pool(rng, max(16, rows // 100), 2)

    data: list[list[object]] = []
    for _ in range(rows):
        region = _skewed(rng, list(_REGIONS))
        data.append([
            f"{_skewed(rng, customers)} {_skewed(rng, surnames)}",
            region,
            # ~70% of shipments go to the order's own region; the rest
            # land elsewhere — either way the *values* are shared between
            # the two columns, which is what exercises ResolveCol.
            region if rng.random() < 0.7 else _skewed(rng, list(_REGIONS)),
            _skewed(rng, products),
            _skewed(rng, list(_CATEGORIES)),
            _skewed(rng, list(_COURIERS)),
            round(rng.uniform(5.0, 500.0), 2),
            rng.randint(1, 40),
            round(rng.uniform(0.0, 0.3), 2),
        ])
    workbook = Workbook()
    workbook.add_table(Table.from_data(
        "Orders",
        ["customer", "region", "shipregion", "product", "category",
         "courier", "amount", "quantity", "discount"],
        data,
        types=[
            ValueType.TEXT, ValueType.TEXT, ValueType.TEXT,
            ValueType.TEXT, ValueType.TEXT, ValueType.TEXT,
            ValueType.CURRENCY, ValueType.NUMBER, ValueType.NUMBER,
        ],
    ))
    workbook.add_table(Table.from_data(
        "Couriers",
        ["courier", "region", "fee"],
        [
            [courier, _REGIONS[k % len(_REGIONS)],
             round(4.0 + 1.5 * k, 2)]
            for k, courier in enumerate(_COURIERS)
        ],
        types=[ValueType.TEXT, ValueType.TEXT, ValueType.CURRENCY],
    ))
    workbook.set_cursor("M2")
    return workbook


def stress_sentences(workbook: Workbook, count: int = 12) -> list[str]:
    """A deterministic translation workload over a stress workbook.

    Sentences reference values actually present in the sheet (read back
    from fixed rows, so they are as deterministic as the workbook), and
    cover the shapes the columnar layer serves: conditional reductions
    over value spans, counting, ResolveCol-ambiguous bare values, and
    plain column reductions.
    """
    table = workbook.default_table

    def cell(i: int, name: str) -> str:
        j = [c.name for c in table.columns].index(name)
        return str(table.cell(i % table.n_rows, j).value.payload)

    sentences = [
        f"sum the amount for the {cell(0, 'region')} orders",
        f"average the quantity where the region is {cell(7, 'region')}",
        f"count the {cell(3, 'category')} rows",
        f"how many orders are from {cell(11, 'region')}",
        f"max amount for the {cell(5, 'product')} orders",
        "total the amount",
        f"min quantity where category is {cell(9, 'category')}",
        f"sum the amount for {cell(2, 'customer')}",
        "average the discount",
        f"count the orders where shipregion is {cell(4, 'shipregion')}",
        f"sum the quantity for the {cell(13, 'courier')} shipments",
        f"average amount for {cell(17, 'product')}",
    ]
    return [sentences[k % len(sentences)] for k in range(count)]
