"""The description generator: recreating the 3570-description corpus.

The paper's corpus of 3570 crowd-sourced English descriptions is not
published, so we regenerate it synthetically.  Table 1 and §5 characterise
the corpus along these axes, all of which the generator reproduces:

* minimal keyword style ("sum hours capitol hill baristas") through verbose
  polite style ("computer please sum the hours for the capitol hill
  location baristas"),
* implicit references and linguistic idioms ("capitol hill baristas"
  instead of an explicit conjunction; "in europe" instead of "continent
  equals europe"),
* reordering (filter-first vs. reduction-first),
* misspellings (the UI underlines them in red),
* column-letter references ("sum column H where column C is barista"),
* multi-word renderings of squashed column headers ("gdp per capita" for
  the ``gdppercapita`` column),
* an average of roughly 37.7 distinct word/order clusters per intent.

Generation is deterministic given the seed, so the corpus is versioned and
every experiment row is reproducible.  *Hard mode* recreates the §5.2
end-user study: vocabulary outside the rule set and heavier composition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sheet import Workbook
from .intents import Filter
from .sheets import build_sheet
from .tasks import Task, all_tasks

DEFAULT_SEED = 2014
CORPUS_SIZE = 3570


@dataclass(frozen=True)
class Description:
    """One natural-language description of a task."""

    text: str
    task_id: str
    sheet_id: str
    hard: bool = False


# -- shared vocabulary -------------------------------------------------------

_PREFIXES = [
    "please ", "computer please ", "can you ", "i want to ",
    "i need to ", "now ", "go ahead and ",
]

_REDUCE_VERBS = {
    "sum": ["sum", "sum up", "add up", "total", "total up", "compute the sum of",
            "find the sum of", "get the total of", "calculate the sum of"],
    "avg": ["average", "get the average of", "compute the average of",
            "find the average of", "take the mean of", "calculate the average of"],
    "min": ["find the minimum of", "get the minimum of", "find the smallest",
            "get the lowest", "compute the min of"],
    "max": ["find the maximum of", "get the maximum of", "find the largest",
            "get the highest", "compute the max of"],
}
_REDUCE_QUESTION = {
    "sum": ["what is the sum of", "what is the total of"],
    "avg": ["what is the average", "what are the average"],
    "min": ["what is the smallest", "what is the minimum"],
    "max": ["what is the largest", "what is the maximum"],
}
_HARD_REDUCE_VERBS = {
    "sum": ["tally", "tot up", "aggregate", "roll up"],
    "avg": ["work out the typical", "figure out the mean of"],
    "min": ["figure out the smallest", "work out the least"],
    "max": ["figure out the biggest", "work out the top"],
}

_COUNT_VERBS = ["count", "count up", "count the number of", "get the number of",
                "how many", "give me the count of"]
_HARD_COUNT_VERBS = ["enumerate", "tell me how many", "figure out how many"]

_SELECT_VERBS = ["select", "highlight", "select the rows for", "get the rows with",
                 "show me", "pick out", "grab"]
_FORMAT_VERBS = ["color", "make", "paint", "turn", "mark"]

# row nouns used in counting / selecting ("how many employees ...")
_ROW_NOUNS = {
    "payroll": ["employees", "people", "workers", "rows"],
    "inventory": ["items", "products", "rows"],
    "countries": ["countries", "rows"],
    "invoices": ["invoices", "orders", "rows"],
}

# columns that read naturally with a locative preposition
_LOCATIVE_COLUMNS = {"location", "region", "warehouse", "continent"}
# columns whose values name kinds of rows ("barista", "widget", "coffee")
_KIND_COLUMNS = {"title", "category", "product", "status", "currency", "customer",
                 "supplier"}

# multi-word surface forms of squashed column headers
_COLUMN_SURFACES = {
    "totalpay": ["totalpay", "total pay"],
    "basepay": ["basepay", "base pay"],
    "otpay": ["otpay", "ot pay"],
    "othours": ["othours", "ot hours"],
    "gdppercapita": ["gdppercapita", "gdp per capita"],
    "unitprice": ["unitprice", "unit price"],
    "stockvalue": ["stockvalue", "stock value"],
    "payrate": ["payrate", "pay rate"],
}
# hard mode adds out-of-vocabulary column phrasings (§5.2)
_HARD_COLUMN_SURFACES = {
    "othours": ["overtime hours", "overtime"],
    "totalpay": ["overall pay"],
    "gdppercapita": ["per capita gdp"],
    "unitprice": ["price per unit"],
}


def _plural(word: str) -> str:
    if word.endswith("s"):
        return word
    return word + "s"


class Realizer:
    """Renders one task intent into many natural-language descriptions."""

    def __init__(
        self, task: Task, workbook: Workbook, rng: random.Random, hard: bool = False
    ) -> None:
        self.task = task
        self.intent = task.intent
        self.workbook = workbook
        self.table = workbook.default_table
        self.rng = rng
        self.hard = hard

    # -- public -------------------------------------------------------------

    def generate(self, n: int) -> list[str]:
        """``n`` descriptions (dedup-sampled; slightly fewer only if the
        variation space is genuinely exhausted)."""
        seen: set[str] = set()
        out: list[str] = []
        attempts = 0
        while len(out) < n and attempts < n * 60:
            attempts += 1
            text = self._decorate(self._render())
            if text not in seen:
                seen.add(text)
                out.append(text)
        return out

    # -- decoration ------------------------------------------------------------

    def _decorate(self, text: str) -> str:
        r = self.rng
        question = text.startswith(("how many", "what is", "what are", "which"))
        if not question and r.random() < (0.30 if not self.hard else 0.20):
            text = r.choice(_PREFIXES) + text
        if r.random() < 0.07:
            text = self._typo(text)
        return " ".join(text.lower().split())

    def _typo(self, text: str) -> str:
        """Corrupt one content word the way hurried typists do."""
        words = text.split()
        candidates = [i for i, w in enumerate(words) if len(w) >= 5 and w.isalpha()]
        if not candidates:
            return text
        i = self.rng.choice(candidates)
        w = words[i]
        j = self.rng.randrange(len(w) - 1)
        mode = self.rng.random()
        if mode < 0.4:  # transpose
            w = w[:j] + w[j + 1] + w[j] + w[j + 2:]
        elif mode < 0.7:  # drop
            w = w[:j] + w[j + 1:]
        else:  # double
            w = w[:j] + w[j] + w[j:]
        words[i] = w
        return " ".join(words)

    # -- shared pieces -----------------------------------------------------------

    def _col(self, name: str) -> str:
        """A surface form of a column header."""
        surfaces = list(_COLUMN_SURFACES.get(name, [name]))
        if self.hard:
            surfaces += _HARD_COLUMN_SURFACES.get(name, [])
        return self.rng.choice(surfaces)

    def _col_letter(self, name: str) -> str:
        from ..sheet.address import column_index_to_letter

        j = self.table.column_index(name)
        return column_index_to_letter(self.table.origin.col + j)

    def _row_noun(self) -> str:
        return self.rng.choice(_ROW_NOUNS[self.task.sheet_id])

    def _verb(self, table: dict, hard_table: dict | None, key: str) -> str:
        options = list(table[key])
        if self.hard and hard_table:
            options += hard_table.get(key, [])
        return self.rng.choice(options)

    # -- filter phrases ------------------------------------------------------------

    def _filter_clause(self, f: Filter) -> str:
        """An explicit relative-clause rendering of one filter."""
        r = self.rng
        col = self._col(f.column)
        if f.op == "eq":
            val = str(f.value)
            options = [
                f"where the {col} is {val}",
                f"where {col} is {val}",
                f"where {col} equals {val}",
                f"whose {col} is {val}",
                f"with a {col} of {val}",
                f"where column {self._col_letter(f.column)} is {val}",
            ]
            if f.column in _LOCATIVE_COLUMNS:
                options += [f"in {val}", f"at {val}", f"located in {val}",
                            f"who work at {val}"]
            if f.column in _KIND_COLUMNS:
                options += [f"that are {_plural(val)}", f"for the {_plural(val)}"]
            return r.choice(options)
        if f.op == "neq":
            val = str(f.value)
            options = [
                f"where the {col} is not {val}",
                f"where {col} is not {val}",
                f"whose {col} isn't {val}",
                f"excluding {val}",
            ]
            if f.column in _LOCATIVE_COLUMNS:
                options += [f"that are not in {val}", f"not in {val}"]
            if f.column == "currency":
                options += [f"that do not use the {val}", f"which don't use the {val}"]
            return r.choice(options)
        if f.op in ("lt", "gt"):
            n = f.value
            more = ["greater than", "more than", "over", "above", "bigger than",
                    "larger than", ">"]
            less = ["less than", "under", "below", "smaller than", "<"]
            word = r.choice(more if f.op == "gt" else less)
            options = [
                f"where {col} is {word} {n}",
                f"with {col} {word} {n}",
                f"where the {col} is {word} {n}",
                f"with {word} {n} {col}",
            ]
            if f.op == "gt" and f.value == 0:
                options += [f"with nonzero {col}", f"where {col} is not 0"]
            return r.choice(options)
        if f.op in ("gt_avg", "lt_avg"):
            word = "larger than" if f.op == "gt_avg" else "smaller than"
            word = self.rng.choice(
                [word, "more than" if f.op == "gt_avg" else "less than",
                 "above" if f.op == "gt_avg" else "below"]
            )
            return self.rng.choice(
                [
                    f"with a {col} {word} the average",
                    f"where {col} is {word} the average",
                    f"where the {col} is {word} the average {col}",
                    f"with {word} average {col}",
                ]
            )
        # column-to-column comparison
        other = self._col(f.other_column)
        word = r.choice(
            ["less than", "under", "below", "smaller than"]
            if f.op == "lt_col"
            else ["greater than", "over", "above", "more than"]
        )
        return r.choice(
            [
                f"where {col} is {word} {other}",
                f"with {col} {word} the {other}",
                f"where the {col} is {word} the {other}",
            ]
        )

    def _filters_explicit(self, filters: tuple[Filter, ...]) -> str:
        clauses = [self._filter_clause(f) for f in filters]
        joiner = " or " if self.intent.disjunctive else " and "
        parts = [clauses[0]]
        for clause in clauses[1:]:
            # Users sometimes repeat the connective ("... and where ...") and
            # sometimes elide it ("... and title is barista").
            parts.append(
                _strip_where(clause) if self.rng.random() < 0.5 else clause
            )
        return joiner.join(parts)

    def _implicit_np(self) -> str | None:
        """An implicit noun phrase like "the capitol hill baristas" when the
        filters are all text equalities; None otherwise."""
        filters = self.intent.filters
        if self.intent.disjunctive or not filters:
            return None
        if not all(f.op == "eq" and isinstance(f.value, str) for f in filters):
            return None
        heads = [f for f in filters if f.column in _KIND_COLUMNS]
        mods = [f for f in filters if f.column not in _KIND_COLUMNS]
        if heads:
            head = _plural(str(heads[0].value))
            extra_heads = [str(f.value) for f in heads[1:]]
            mod = " ".join(str(f.value) for f in mods)
            np = " ".join(x for x in [mod, " ".join(extra_heads), head] if x)
            return f"the {np}"
        if mods and all(f.column in _LOCATIVE_COLUMNS for f in mods):
            noun = self._row_noun()
            place = " ".join(str(f.value) for f in mods)
            return self.rng.choice(
                [f"the {place} {noun}", f"the {noun} in {place}",
                 f"the {noun} at {place}"]
            )
        return None

    def _keyword_filters(self) -> str:
        """Bare keyword rendering: values and numbers only."""
        parts = []
        for f in self.intent.filters:
            if f.op == "eq":
                parts.append(str(f.value))
            elif f.op in ("lt", "gt"):
                sym = "under" if f.op == "lt" else "over"
                parts.append(f"{self._col(f.column)} {sym} {f.value}")
            elif f.op == "neq":
                parts.append(f"not {f.value}")
            elif f.op in ("gt_avg", "lt_avg"):
                parts.append(f"{self._col(f.column)} above average")
            else:
                parts.append(
                    f"{self._col(f.column)} under {self._col(f.other_column)}"
                )
        self.rng.shuffle(parts)
        return " ".join(parts)

    # -- renderers per intent kind --------------------------------------------------

    def _render(self) -> str:
        kind = self.intent.kind
        render = getattr(self, f"_render_{kind}")
        return render()

    def _render_reduce(self) -> str:
        it = self.intent
        r = self.rng
        col = self._col(it.column)
        verb = self._verb(_REDUCE_VERBS, _HARD_REDUCE_VERBS, it.reduce_op)
        if not it.filters:
            return r.choice(
                [
                    f"{verb} the {col}",
                    f"{verb} {col}",
                    f"{verb} the {col} column",
                    f"{self._verb(_REDUCE_QUESTION, None, it.reduce_op)} {col}",
                    f"{verb} column {self._col_letter(it.column)}",
                ]
            )
        np = self._implicit_np()
        explicit = self._filters_explicit(it.filters)
        frames = [
            f"{verb} the {col} {explicit}",
            f"{verb} {col} {explicit}",
            f"{explicit} {verb} the {col}".replace("where ", "for all ", 1)
            if explicit.startswith("where ") else f"{verb} the {col} {explicit}",
            f"{self._verb(_REDUCE_QUESTION, None, it.reduce_op)} {col} {explicit}",
            f"get the rows {explicit} and {verb} the {col}",
        ]
        if np is not None:
            frames += [
                f"{verb} the {col} for {np}",
                f"{verb} the {np} {col}",
                f"{verb} {col} for {np}",
                f"get {np} and {verb} the {col}",
                f"{self._verb(_REDUCE_QUESTION, None, it.reduce_op)} {col} for {np}",
                f"{verb} the {col} of {np}",
            ]
            # pure keyword style
            keyword_verb = {"sum": "sum", "avg": "average",
                            "min": "min", "max": "max"}[it.reduce_op]
            frames.append(f"{keyword_verb} {col} {self._keyword_filters()}")
        # column-letter style
        letter_filters = " and ".join(
            f"column {self._col_letter(f.column)} is {f.value}"
            for f in it.filters
            if f.op == "eq"
        )
        if letter_filters:
            frames.append(
                f"{verb} column {self._col_letter(it.column)} where {letter_filters}"
            )
        return r.choice(frames)

    def _render_count(self) -> str:
        it = self.intent
        r = self.rng
        noun = self._row_noun()
        verb = self._verb(
            {"c": _COUNT_VERBS}, {"c": _HARD_COUNT_VERBS} if self.hard else None, "c"
        )
        if not it.filters:
            return r.choice([f"{verb} the {noun}", f"{verb} {noun}"])
        np = self._implicit_np()
        explicit = self._filters_explicit(it.filters)
        frames = [
            f"{verb} the {noun} {explicit}",
            f"{verb} {noun} {explicit}",
            f"how many {noun} are there {explicit}",
            f"count how many {noun} {explicit}".replace("where", "have", 1)
            if explicit.startswith("where") else f"{verb} the {noun} {explicit}",
        ]
        if np is not None:
            counting = verb if not verb.startswith("how many") else "count"
            frames += [
                f"{counting} {np}",
                f"how many {noun} are {np.replace('the ', '', 1)}",
                f"{counting} the number of {np.replace('the ', '', 1)}",
            ]
        # the Tab. 1 idiom: "how many countries are in europe but do not use the euro"
        if len(it.filters) == 2 and not it.disjunctive:
            first = self._filter_clause(it.filters[0])
            second = self._filter_clause(it.filters[1])
            frames.append(
                f"how many {noun} {_strip_where(first)} but {_strip_where(second)}"
            )
            frames.append(f"{verb} {noun} {first} and {second}")
        return r.choice(frames)

    def _render_select(self) -> str:
        it = self.intent
        r = self.rng
        noun = self._row_noun()
        verb = r.choice(_SELECT_VERBS)
        np = self._implicit_np()
        explicit = self._filters_explicit(it.filters)
        frames = [
            f"{verb} the rows {explicit}",
            f"{verb} rows {explicit}",
            f"{verb} the {noun} {explicit}",
            f"select all {noun} {explicit}",
            f"which {noun} have {_strip_where(explicit)}"
            if explicit.startswith("where") or explicit.startswith("with")
            else f"{verb} the rows {explicit}",
        ]
        if np is not None:
            frames += [
                f"{verb} the rows for {np}",
                f"{verb} {np}",
                f"select the rows with {np.replace('the ', '', 1)}",
            ]
        return r.choice(frames)

    def _render_format(self) -> str:
        it = self.intent
        r = self.rng
        color = it.format_color
        explicit = self._filters_explicit(it.filters)
        verb = r.choice(_FORMAT_VERBS)
        frames = [
            f"{verb} the rows {explicit} {color}",
            f"color the rows {explicit} {color}",
            f"get the rows {explicit} and color them {color}",
            f"highlight the rows {explicit} in {color}",
            f"make the rows {explicit} {color}",
            f"mark rows {explicit} in {color}",
        ]
        return r.choice(frames)

    def _render_lookup(self) -> str:
        it = self.intent
        r = self.rng
        out = self._col(it.out_column)
        needle = it.needle
        table = it.aux_table.lower()
        frames = [
            f"lookup the {out} for {needle}",
            f"look up the {out} of a {needle}",
            f"what is the {out} for a {needle}",
            f"get the {out} of the {needle} from the {table} table",
            f"find {needle} in the {table} table and get the {out}",
            f"lookup {needle} {out}",
            f"what {out} does a {needle} get",
        ]
        return r.choice(frames)

    def _render_join_map(self) -> str:
        it = self.intent
        r = self.rng
        out = self._col(it.out_column)
        by = self._col(it.key_column)
        col = self._col(it.column)
        noun = self._row_noun()[:-1]  # singular-ish
        frames = [
            f"for each {noun} lookup the {out} and multiply by {col}",
            f"lookup the {out} for each {noun} and multiply it by the {col}",
            f"for every {noun} look up the {out} by {by} and multiply by the {col}",
            f"multiply each {noun}'s {out} by their {col}",
            f"lookup {out} by {by} and multiply by {col}",
            f"for each row get the {out} from the {it.aux_table.lower()} table and multiply by {col}",
        ]
        return r.choice(frames)

    def _render_map2(self) -> str:
        it = self.intent
        r = self.rng
        a = self._col(it.column)
        b = self._col(str(it.operand2))
        word = {"add": "plus", "sub": "minus", "mult": "times", "div": "divided by"}[
            it.map_op
        ]
        verb = {"add": "add", "sub": "subtract", "mult": "multiply", "div": "divide"}[
            it.map_op
        ]
        frames = [
            f"{a} {word} {b}",
            f"{verb} the {a} and the {b} columns"
            if it.map_op in ("add", "mult")
            else f"{verb} the {a} by the {b}",
            f"{verb} {a} and {b}" if it.map_op in ("add", "mult") else f"{verb} {a} by {b}",
            f"compute {a} {word} {b}",
            f"for each row {verb} {a} and {b}"
            if it.map_op in ("add", "mult")
            else f"for each row {verb} {a} by {b}",
            f"{a} {_OP_SYMBOL[it.map_op]} {b}",
        ]
        return r.choice(frames)

    def _render_map_scaled2(self) -> str:
        it = self.intent
        r = self.rng
        a = self._col(it.column)
        b = self._col(str(it.operand2))
        s = it.scale
        frames = [
            f"{a} plus {b} times {s}",
            f"add {a} and {b} and multiply by {s}",
            f"({a} + {b}) * {s}",
            f"{a} plus {b} multiplied by {s}",
            f"take {a} plus {b} and scale by {s}",
        ]
        return r.choice(frames)

    def _render_map_scalar(self) -> str:
        it = self.intent
        a = self._col(it.column)
        s = it.operand2
        word = {"add": "plus", "sub": "minus", "mult": "times", "div": "divided by"}[
            it.map_op
        ]
        return self.rng.choice(
            [f"{a} {word} {s}", f"multiply {a} by {s}", f"compute {a} {word} {s}"]
        )

    def _render_argmax(self) -> str:
        it = self.intent
        r = self.rng
        col = self._col(it.column)
        noun = self._row_noun()
        singular = noun[:-1] if noun.endswith("s") else noun
        big = r.choice(["largest", "highest", "biggest", "greatest", "top", "maximum"])
        frames = [
            f"which {singular} has the {big} {col}",
            f"find the {singular} with the {big} {col}",
            f"select the row with the {big} {col}",
            f"show me the {singular} with the {big} {col}",
            f"which {noun} have the {big} {col}",
            f"get the row where {col} is the {big}",
        ]
        return r.choice(frames)


_OP_SYMBOL = {"add": "+", "sub": "-", "mult": "*", "div": "/"}


def _strip_where(clause: str) -> str:
    for lead in ("where the ", "where ", "with a ", "with "):
        if clause.startswith(lead):
            return clause[len(lead):]
    return clause


# -- corpus assembly ----------------------------------------------------------


def generate_descriptions(
    task: Task,
    n: int,
    seed: int = DEFAULT_SEED,
    hard: bool = False,
    workbook: Workbook | None = None,
) -> list[Description]:
    """``n`` deterministic descriptions of one task."""
    wb = workbook if workbook is not None else build_sheet(task.sheet_id)
    rng = random.Random(f"{seed}/{task.task_id}/{hard}")
    realizer = Realizer(task, wb, rng, hard=hard)
    return [
        Description(text=t, task_id=task.task_id, sheet_id=task.sheet_id, hard=hard)
        for t in realizer.generate(n)
    ]


def generate_corpus(
    seed: int = DEFAULT_SEED, total: int = CORPUS_SIZE
) -> list[Description]:
    """The full evaluation corpus: ``total`` descriptions spread over the 40
    tasks (the paper collected 3570 for 40 tasks, ~89 each)."""
    tasks = all_tasks()
    base, extra = divmod(total, len(tasks))
    out: list[Description] = []
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in
                 {t.sheet_id for t in tasks}}
    for i, task in enumerate(tasks):
        n = base + (1 if i < extra else 0)
        out.extend(
            generate_descriptions(
                task, n, seed=seed, workbook=workbooks[task.sheet_id]
            )
        )
    return out


def generate_user_study(
    seed: int = DEFAULT_SEED, total: int = 62
) -> list[Description]:
    """The §5.2 analog: 62 hard-mode descriptions with out-of-vocabulary
    phrasing and heavier composition, spread across tasks."""
    tasks = all_tasks()
    rng = random.Random(f"{seed}/userstudy")
    chosen = [tasks[rng.randrange(len(tasks))] for _ in range(total)]
    counts: dict[str, int] = {}
    for task in chosen:
        counts[task.task_id] = counts.get(task.task_id, 0) + 1
    out: list[Description] = []
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in
                 {t.sheet_id for t in tasks}}
    for task in tasks:
        n = counts.get(task.task_id, 0)
        if n:
            out.extend(
                generate_descriptions(
                    task, n, seed=seed + 1, hard=True,
                    workbook=workbooks[task.sheet_id],
                )
            )
    return out[:total]
