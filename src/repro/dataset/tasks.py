"""The 40 evaluation tasks.

The paper constructed 40 tasks "involving conditional reduce/selection
operations, lookup tasks, arithmetic formula, and combinations of these
operations" over the four sheets, drawn from Excel help-forum questions.
These 40 recreate that distribution: ten per sheet, covering conditional
arithmetic (with conjunction, disjunction, and negation), counting,
selection, conditional formatting, scalar and join lookups, column maps,
and nested reductions ("larger than the average", "the largest").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..dsl import ast
from ..sheet import Workbook
from .intents import Filter, Intent, build_gold
from .sheets import build_sheet


@dataclass(frozen=True)
class Task:
    """One evaluation task: an intent anchored to a sheet."""

    task_id: str
    sheet_id: str
    intent: Intent

    @property
    def category(self) -> str:
        return self.intent.kind

    def gold(self, workbook: Workbook) -> ast.Expr:
        return build_gold(workbook, self.intent)


def _eq(column: str, value: str) -> Filter:
    return Filter(column, "eq", value)


_PAYROLL = [
    Intent(
        kind="reduce", reduce_op="sum", column="totalpay",
        filters=(_eq("location", "capitol hill"), _eq("title", "barista")),
    ),
    Intent(
        kind="reduce", reduce_op="avg", column="hours",
        filters=(_eq("location", "capitol hill"),),
    ),
    Intent(kind="map2", map_op="add", column="hours", operand2="othours"),
    Intent(kind="count", filters=(Filter("othours", "gt", 0),)),
    Intent(
        kind="format", format_color="red",
        filters=(Filter("othours", "gt", 0),),
    ),
    Intent(
        kind="select",
        filters=(_eq("location", "queen anne"), Filter("hours", "gt", 20)),
    ),
    Intent(
        kind="lookup", needle="chef", key_column="title",
        out_column="payrate", aux_table="PayRates",
    ),
    Intent(
        kind="join_map", map_op="mult", column="hours",
        key_column="title", out_column="payrate", aux_table="PayRates",
    ),
    Intent(kind="map_scaled2", column="basepay", operand2="otpay", scale=1.1),
    Intent(
        kind="reduce", reduce_op="max", column="totalpay",
        filters=(_eq("title", "chef"),),
    ),
]

_INVENTORY = [
    Intent(
        kind="reduce", reduce_op="sum", column="stockvalue",
        filters=(_eq("category", "coffee"),),
    ),
    Intent(
        kind="count",
        filters=(Filter("quantity", "lt_col", other_column="reorder"),),
    ),
    Intent(
        kind="reduce", reduce_op="avg", column="unitprice",
        filters=(_eq("supplier", "leaf co"),),
    ),
    Intent(
        kind="select",
        filters=(_eq("warehouse", "south"), Filter("quantity", "gt", 100)),
    ),
    Intent(
        kind="format", format_color="yellow",
        filters=(Filter("quantity", "lt_col", other_column="reorder"),),
    ),
    Intent(
        kind="reduce", reduce_op="min", column="quantity",
        filters=(_eq("category", "tea"),),
    ),
    Intent(kind="map2", map_op="mult", column="quantity", operand2="unitprice"),
    Intent(
        kind="count", disjunctive=True,
        filters=(_eq("category", "supplies"), _eq("category", "dairy")),
    ),
    Intent(
        kind="reduce", reduce_op="sum", column="quantity",
        filters=(_eq("supplier", "acme foods"), _eq("warehouse", "north")),
    ),
    Intent(kind="reduce", reduce_op="max", column="unitprice"),
]

_COUNTRIES = [
    Intent(kind="argmax", column="gdppercapita"),
    Intent(kind="select", filters=(Filter("gdppercapita", "gt_avg"),)),
    Intent(
        kind="reduce", reduce_op="sum", column="gdp",
        filters=(Filter("continent", "neq", "europe"),),
    ),
    Intent(
        kind="count",
        filters=(_eq("continent", "europe"), Filter("currency", "neq", "euro")),
    ),
    Intent(
        kind="reduce", reduce_op="avg", column="population",
        filters=(_eq("continent", "asia"),),
    ),
    Intent(kind="count", filters=(_eq("continent", "europe"),)),
    Intent(kind="map2", map_op="div", column="gdp", operand2="population"),
    Intent(kind="reduce", reduce_op="max", column="population"),
    Intent(
        kind="select",
        filters=(_eq("continent", "europe"), Filter("gdppercapita", "gt", 40)),
    ),
    Intent(kind="count", filters=(Filter("population", "gt_avg"),)),
]

_INVOICES = [
    Intent(
        kind="reduce", reduce_op="sum", column="total",
        filters=(_eq("status", "unpaid"),),
    ),
    Intent(kind="count", filters=(_eq("status", "overdue"),)),
    Intent(
        kind="reduce", reduce_op="avg", column="total",
        filters=(_eq("region", "east"),),
    ),
    Intent(
        kind="format", format_color="red",
        filters=(_eq("status", "overdue"),),
    ),
    Intent(kind="select", filters=(_eq("customer", "contoso"),)),
    Intent(
        kind="reduce", reduce_op="sum", column="total",
        filters=(_eq("region", "east"), _eq("status", "paid")),
    ),
    Intent(kind="map2", map_op="mult", column="units", operand2="unitprice"),
    Intent(kind="reduce", reduce_op="max", column="total"),
    Intent(
        kind="count",
        filters=(Filter("units", "gt", 10), _eq("product", "widget")),
    ),
    Intent(
        kind="reduce", reduce_op="min", column="unitprice",
        filters=(_eq("product", "gadget"),),
    ),
]

_BY_SHEET = {
    "payroll": _PAYROLL,
    "inventory": _INVENTORY,
    "countries": _COUNTRIES,
    "invoices": _INVOICES,
}


@lru_cache(maxsize=1)
def all_tasks() -> tuple[Task, ...]:
    """The 40 evaluation tasks, in stable order."""
    tasks = []
    for sheet_id, intents in _BY_SHEET.items():
        for i, intent in enumerate(intents, start=1):
            tasks.append(Task(f"{sheet_id}-{i:02d}", sheet_id, intent))
    return tuple(tasks)


def tasks_for_sheet(sheet_id: str) -> list[Task]:
    return [t for t in all_tasks() if t.sheet_id == sheet_id]


def validate_tasks() -> None:
    """Sanity check: every gold program type-checks and evaluates on its
    sheet.  Used by tests and the dataset self-check."""
    from ..dsl import Evaluator

    for task in all_tasks():
        wb = build_sheet(task.sheet_id)
        gold = task.gold(wb)
        Evaluator(wb).run(gold, place=False)
