"""Rendezvous (highest-random-weight) routing over gateway shards.

The cluster routes every request by its workbook fingerprint, because the
fingerprint is what all the shard-local state is keyed by: the worker-side
translator caches, the gateway's warm-worker affinity, and the per-workbook
circuit breakers.  Routing the same fingerprint to the same shard keeps
all three hot; routing it anywhere else starts cold.

Rendezvous hashing gives exactly the properties a shard router needs and
nothing more:

* **deterministic** — ``score(shard, fingerprint)`` is a pure hash, so
  every front end (or a restarted one) computes the same route with no
  coordination or shared state;
* **minimal disruption** — when a shard dies, only the fingerprints whose
  *top-ranked* shard it was move (to their second choice); every other
  fingerprint keeps its shard.  A consistent-hash ring does the same but
  needs virtual nodes to balance; rendezvous is balanced by construction;
* **a built-in failover order** — :meth:`RendezvousRouter.preference`
  ranks *all* shards per fingerprint, so "the next shard to try" is
  well-defined and stable, which the retry path leans on.

Hot-shard detection rides the same math in reverse: given the observed
per-fingerprint request counts (the cluster feeds its
``cluster_fingerprint_requests_total`` metric from every submit), project
each fingerprint onto its current shard and flag shards whose projected
load exceeds ``hot_factor`` x the fair share.  A hot shard is almost
always one hot *fingerprint* (one giant tenant), so the report names the
offending fingerprints — the operator-facing knob is "give that workbook
its own shard", not "add shards".
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Collection, Iterable, Mapping

__all__ = ["HotShardReport", "RendezvousRouter", "detect_hot_shards"]


def _score(shard_id: int, fingerprint: str) -> int:
    digest = hashlib.sha256(f"{shard_id}|{fingerprint}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RendezvousRouter:
    """Stateless fingerprint -> shard routing with a stable failover order."""

    def __init__(self, shard_ids: Iterable[int], memo_capacity: int = 4096):
        self.shard_ids = tuple(shard_ids)
        if not self.shard_ids:
            raise ValueError("router needs at least one shard")
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ValueError("shard ids must be unique")
        self._memo_capacity = memo_capacity
        self._memo: dict[str, tuple[int, ...]] = {}
        self._memo_lock = threading.Lock()

    def preference(self, fingerprint: str) -> tuple[int, ...]:
        """Every shard, ranked best-first for this fingerprint.

        Memoised (bounded): production traffic repeats a small set of
        fingerprints many times, and the ranking is immutable for the
        life of the router.
        """
        with self._memo_lock:
            ranked = self._memo.get(fingerprint)
        if ranked is None:
            ranked = tuple(
                sorted(
                    self.shard_ids,
                    key=lambda shard: _score(shard, fingerprint),
                    reverse=True,
                )
            )
            with self._memo_lock:
                if len(self._memo) >= self._memo_capacity:
                    self._memo.pop(next(iter(self._memo)))
                self._memo[fingerprint] = ranked
        return ranked

    def route(
        self, fingerprint: str, alive: Collection[int] | None = None
    ) -> int | None:
        """The best live shard for ``fingerprint`` (``None`` if none live).

        With every shard alive this is the fingerprint's home shard; with
        some dead it is the highest-ranked survivor — the rendezvous
        property guarantees fingerprints homed on live shards do not move.
        """
        for shard in self.preference(fingerprint):
            if alive is None or shard in alive:
                return shard
        return None


@dataclass
class HotShardReport:
    """Projected load per shard plus the shards (and culprits) over the bar."""

    total: int = 0
    fair_share: float = 0.0
    hot_factor: float = 2.0
    load: dict[int, int] = field(default_factory=dict)
    hot_shards: list[int] = field(default_factory=list)
    # hot shard -> its heaviest fingerprints, heaviest first
    culprits: dict[int, list[tuple[str, int]]] = field(default_factory=dict)

    def snapshot(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "fair_share": self.fair_share,
            "hot_factor": self.hot_factor,
            "load": dict(self.load),
            "hot_shards": list(self.hot_shards),
            "culprits": {
                shard: list(pairs) for shard, pairs in self.culprits.items()
            },
        }


def detect_hot_shards(
    traffic: Mapping[str, int],
    router: RendezvousRouter,
    alive: Collection[int] | None = None,
    hot_factor: float = 2.0,
    min_requests: int = 20,
) -> HotShardReport:
    """Project per-fingerprint traffic onto shards and flag the hot ones.

    ``traffic`` is fingerprint -> request count (the cluster's observed
    counters).  A shard is hot when its projected load exceeds
    ``hot_factor`` x the fair share, once at least ``min_requests`` total
    requests have been seen (below that, "hot" is just noise).
    """
    shards = [s for s in router.shard_ids if alive is None or s in alive]
    report = HotShardReport(hot_factor=hot_factor)
    if not shards:
        return report
    by_shard: dict[int, list[tuple[str, int]]] = {s: [] for s in shards}
    for fingerprint, count in traffic.items():
        shard = router.route(fingerprint, alive)
        if shard is not None:
            by_shard[shard].append((fingerprint, count))
    report.total = sum(count for pairs in by_shard.values() for _, count in pairs)
    report.fair_share = report.total / len(shards)
    report.load = {
        shard: sum(count for _, count in pairs)
        for shard, pairs in by_shard.items()
    }
    if report.total < min_requests:
        return report
    for shard, pairs in by_shard.items():
        if report.load[shard] > hot_factor * report.fair_share:
            report.hot_shards.append(shard)
            report.culprits[shard] = sorted(
                pairs, key=lambda pair: pair[1], reverse=True
            )[:5]
    report.hot_shards.sort()
    return report
