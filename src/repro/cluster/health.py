"""Shard health: heartbeat probes, suspicion, and the live-set the router eats.

Failover needs one bit per shard — "may I route here?" — but producing
that bit well takes three states:

* **up** — probes succeed; the shard receives its rendezvous share;
* **suspect** — at least one probe failed but fewer than
  ``failure_threshold`` in a row.  A suspect shard *still receives
  traffic*: a single failed probe is usually a blip, and yanking a shard
  out of the route on one blip would stampede its fingerprints (and all
  their warm state) to a cold shard and back;
* **down** — ``failure_threshold`` consecutive probe failures.  The shard
  leaves the live-set, its fingerprints re-route to their next rendezvous
  choice, and the ``cluster_shard_healthy`` gauge drops to 0.  Probes
  continue: a shard that comes back (probe succeeds) is promoted straight
  to up and re-enters the route — rendezvous hashing guarantees its old
  fingerprints come home without any rebalancing step.

Two inputs besides the probe loop:

* :meth:`HealthMonitor.mark_down` — a declarative kill switch.  The
  cluster calls it from ``kill_shard`` and from request paths that see
  whole-shard symptoms, so routing reacts in the same millisecond rather
  than one probe interval later.
* :meth:`HealthMonitor.note_success` — any successfully served request is
  a free heartbeat; it clears suspicion without waiting for the prober.

Everything is injectable (clock, sleep, probes) and :meth:`check_once`
runs one probe round synchronously, so tests drive the full state machine
without threads or wall-clock time.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping

from ..obs.clock import Clock, monotonic
from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry

__all__ = ["DOWN", "HealthMonitor", "SUSPECT", "UP"]

UP = "up"
SUSPECT = "suspect"
DOWN = "down"

_log = get_logger("cluster.health")


class HealthMonitor:
    """Probe shards on a background thread; expose the live-set."""

    def __init__(
        self,
        probes: Mapping[int, Callable[[], bool]],
        interval: float = 0.25,
        failure_threshold: int = 2,
        clock: Clock = monotonic,
        sleep: Callable[[float], None] | None = None,
        metrics: MetricsRegistry | None = None,
        on_down: Callable[[int], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.failure_threshold = failure_threshold
        self.clock = clock
        self.on_down = on_down
        self._probes = dict(probes)
        self._lock = threading.Lock()
        self._state: dict[int, str] = {shard: UP for shard in self._probes}
        self._failures: dict[int, int] = {shard: 0 for shard in self._probes}
        self._last_change: dict[int, float] = {
            shard: clock() for shard in self._probes
        }
        self._stop = threading.Event()
        self._sleep = sleep
        self._thread: threading.Thread | None = None
        metrics = metrics if metrics is not None else MetricsRegistry(clock)
        self._healthy_gauge = metrics.gauge(
            "cluster_shard_healthy", "1 while the shard is routable, else 0"
        )
        self._probe_failures = metrics.counter(
            "cluster_health_probe_failures_total", "failed shard health probes"
        )
        self._transitions = metrics.counter(
            "cluster_shard_transitions_total", "shard health state changes"
        )
        for shard in self._probes:
            self._healthy_gauge.set(1, shard=shard)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-cluster-health"
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self.check_once()
            if self._sleep is not None:
                self._sleep(self.interval)
                if self._stop.is_set():
                    return
            elif self._stop.wait(self.interval):
                return

    # -- the state machine -------------------------------------------------------

    def check_once(self) -> dict[int, str]:
        """Run one probe round synchronously; returns the state snapshot.

        Public so tests (and the cluster's own ``stats()``, when the
        caller wants a fresh view) can drive the monitor without the
        thread.
        """
        for shard, probe in self._probes.items():
            try:
                healthy = bool(probe())
            except Exception:  # noqa: BLE001 - a probe bug reads as "down"
                healthy = False
            if healthy:
                self.note_success(shard)
            else:
                self._note_probe_failure(shard)
        return self.states()

    def note_success(self, shard: int) -> None:
        """A heartbeat: probe success or any successfully served request."""
        with self._lock:
            if shard not in self._state:
                return
            self._failures[shard] = 0
            if self._state[shard] != UP:
                self._transition(shard, UP)

    def _note_probe_failure(self, shard: int) -> None:
        fire = None
        with self._lock:
            if shard not in self._state:
                return
            self._probe_failures.inc(shard=shard)
            self._failures[shard] += 1
            if self._failures[shard] >= self.failure_threshold:
                if self._state[shard] != DOWN:
                    self._transition(shard, DOWN)
                    fire = self.on_down
            elif self._state[shard] == UP:
                self._transition(shard, SUSPECT)
        if fire is not None:
            fire(shard)

    def mark_down(self, shard: int) -> None:
        """Declare a shard dead right now (no probes needed).

        The cluster calls this on ``kill_shard`` and on whole-shard
        request symptoms, so the router stops choosing the shard before
        the next probe round.  The prober will keep it down while probes
        fail and revive it when they succeed again.
        """
        fire = None
        with self._lock:
            if shard not in self._state:
                return
            self._failures[shard] = self.failure_threshold
            if self._state[shard] != DOWN:
                self._transition(shard, DOWN)
                fire = self.on_down
        if fire is not None:
            fire(shard)

    def _transition(self, shard: int, state: str) -> None:
        """Record a state change (caller holds the lock)."""
        old = self._state[shard]
        self._state[shard] = state
        self._last_change[shard] = self.clock()
        self._transitions.inc(shard=shard, to=state)
        self._healthy_gauge.set(0 if state == DOWN else 1, shard=shard)
        _log.warning(
            "shard health transition",
            extra=log_fields(shard=shard, old=old, new=state),
        )

    # -- views -------------------------------------------------------------------

    def states(self) -> dict[int, str]:
        with self._lock:
            return dict(self._state)

    def state(self, shard: int) -> str:
        with self._lock:
            return self._state[shard]

    def alive(self) -> set[int]:
        """Shards the router may choose (up or merely suspect)."""
        with self._lock:
            return {
                shard
                for shard, state in self._state.items()
                if state != DOWN
            }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "states": dict(self._state),
                "consecutive_failures": dict(self._failures),
                "failure_threshold": self.failure_threshold,
                "interval": self.interval,
            }
