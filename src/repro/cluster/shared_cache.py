"""The shared cache tier: one memo across every gateway shard.

Per-shard caches already make repeats cheap *on their own shard*; the
shared tier makes a hit on any shard a hit everywhere.  It rides the
exact ``(normalised sentence, workbook fingerprint, options signature)``
keys the in-process caches use (:mod:`repro.cache.keys`) — same keys,
same commit rules (clean, fully-searched, fault-free results only), same
fingerprint-keyed invalidation — but stores every entry as *bytes*
through :mod:`repro.cache.codec`, because a shared store is a process
boundary even when, as here, the default backend happens to live in the
front-end process.

The backend is the four-method :class:`ByteStore` protocol (get / put /
delete / scan).  :class:`InMemoryByteStore` is the built-in
implementation — bounded, thread-safe, LRU — and the seam where a real
networked store (Redis, memcached) plugs in without touching the tier
logic.  Every read round-trips the codec, so a payload handed to one
caller is never the object handed to another (no cross-request aliasing),
and a corrupt blob decodes to a miss, is deleted, and is counted
(``cluster_cache_codec_errors_total``) instead of poisoning serving.
"""

from __future__ import annotations

import threading
from typing import Any, Protocol, runtime_checkable

from ..cache import CacheKey, decode_entry, encode_entry, store_key
from ..errors import CacheCodecError
from ..obs.clock import Clock, monotonic
from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry

__all__ = ["ByteStore", "InMemoryByteStore", "SharedCacheTier"]

_log = get_logger("cluster.shared_cache")


@runtime_checkable
class ByteStore(Protocol):
    """What the shared tier needs from a backing store: flat string keys,
    opaque byte values, and a prefix scan for invalidation."""

    def get(self, key: str) -> bytes | None: ...

    def put(self, key: str, value: bytes) -> None: ...

    def delete(self, key: str) -> bool: ...

    def scan(self, prefix: str) -> list[str]: ...


class InMemoryByteStore:
    """Bounded thread-safe LRU byte store (the default, in-process backend)."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        # Insertion order doubles as recency order (moved-to-end on get).
        self._data: dict[str, bytes] = {}

    def get(self, key: str) -> bytes | None:
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                del self._data[key]
                self._data[key] = value
            return value

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("byte store values must be bytes")
        with self._lock:
            if key in self._data:
                del self._data[key]
            self._data[key] = bytes(value)
            while len(self._data) > self.capacity:
                del self._data[next(iter(self._data))]

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._data.pop(key, None) is not None

    def scan(self, prefix: str) -> list[str]:
        with self._lock:
            return [key for key in self._data if key.startswith(prefix)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class SharedCacheTier:
    """Codec-framed cache shared by every shard of a cluster."""

    def __init__(
        self,
        store: ByteStore | None = None,
        capacity: int = 8192,
        namespace: str = "repro",
        clock: Clock = monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store if store is not None else InMemoryByteStore(capacity)
        self.namespace = namespace
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry(clock)
        m = self.metrics
        self._hits = m.counter(
            "cluster_cache_hits_total", "requests answered by the shared tier"
        )
        self._misses = m.counter(
            "cluster_cache_misses_total", "shared-tier lookups that missed"
        )
        self._puts = m.counter(
            "cluster_cache_puts_total", "entries committed to the shared tier"
        )
        self._invalidated = m.counter(
            "cluster_cache_invalidated_total",
            "shared-tier entries dropped by fingerprint invalidation",
        )
        self._codec_errors = m.counter(
            "cluster_cache_codec_errors_total",
            "shared-tier entries dropped because they failed to decode",
        )

    # -- the data path -----------------------------------------------------------

    def _store_key(self, key: CacheKey) -> str:
        return store_key(key, namespace=self.namespace)

    def get(self, key: CacheKey) -> dict | None:
        """The decoded payload for ``key``, or ``None``.

        A blob that fails to decode — or that decodes to a *different*
        key (a store bug or a colliding writer) — counts as a codec
        error, is deleted, and reads as a miss.
        """
        flat = self._store_key(key)
        blob = self.store.get(flat)
        if blob is None:
            self._misses.inc()
            return None
        try:
            stored_key, payload = decode_entry(blob)
            if stored_key != key:
                raise CacheCodecError(
                    f"entry under {flat!r} decodes to a different key"
                )
        except CacheCodecError as exc:
            self._codec_errors.inc()
            self._misses.inc()
            self.store.delete(flat)
            _log.warning(
                "dropped undecodable shared-cache entry",
                extra=log_fields(store_key=flat, error=str(exc)),
            )
            return None
        self._hits.inc()
        return payload

    def put(self, key: CacheKey, payload: dict) -> None:
        """Commit one clean reply payload (codec-validated at encode time)."""
        blob = encode_entry(key, payload)
        self.store.put(self._store_key(key), blob)
        self._puts.inc()

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry for one workbook fingerprint; returns count."""
        prefix = f"{self.namespace}:{fingerprint}:"
        dropped = 0
        for flat in self.store.scan(prefix):
            if self.store.delete(flat):
                dropped += 1
        if dropped:
            self._invalidated.inc(dropped)
        return dropped

    # -- diagnostics -------------------------------------------------------------

    @property
    def hits(self) -> int:
        return int(self._hits.total())

    @property
    def misses(self) -> int:
        return int(self._misses.total())

    @property
    def puts(self) -> int:
        return int(self._puts.total())

    @property
    def codec_errors(self) -> int:
        return int(self._codec_errors.total())

    def snapshot(self) -> dict[str, Any]:
        hits, misses = self.hits, self.misses
        lookups = hits + misses
        out = {
            "hits": hits,
            "misses": misses,
            "puts": self.puts,
            "invalidated": int(self._invalidated.total()),
            "codec_errors": self.codec_errors,
            "hit_rate": hits / lookups if lookups else 0.0,
        }
        try:
            out["size"] = len(self.store)  # type: ignore[arg-type]
        except TypeError:  # pragma: no cover - external stores may not size
            out["size"] = None
        return out
