"""Horizontal scale-out: the fingerprint-sharded gateway cluster.

``repro.cluster`` fronts N crash-isolated
:class:`~repro.serve.TranslationGateway` shards with one
:class:`ShardedCluster` (ROADMAP: cluster the serving layer):

* **fingerprint-sharded routing** — rendezvous hashing on
  ``Workbook.fingerprint()`` keeps each workbook's warm workers,
  translator caches, and circuit-breaker state on one shard
  (:mod:`repro.cluster.router`), with hot-shard detection projecting the
  observed per-fingerprint traffic back onto the routes;
* **health-checked failover** — a heartbeat monitor with an
  up/suspect/down state machine feeds the router's live-set; requests on
  a dying shard retry on the next rendezvous choice with exponential
  backoff and jitter (:mod:`repro.cluster.health`);
* **a shared cache tier** — the exact per-gateway ``(sentence,
  fingerprint, options)`` keys, serialised through
  :mod:`repro.cache.codec`, so a hit on any shard is a hit everywhere
  (:mod:`repro.cluster.shared_cache`);
* **zero-loss chaos guarantees** — SIGKILLing an entire shard under load
  (:meth:`ShardedCluster.kill_shard`) loses nothing: every in-flight
  request fails over or resolves with a coded result, exactly once
  (``tests/cluster/test_chaos_cluster.py``), and routing is
  byte-identical to a single gateway on the full evaluation split
  (``tests/cluster/test_differential_cluster.py``).

Quickstart::

    from repro.cluster import ShardedCluster
    from repro.dataset import build_sheet

    with ShardedCluster(build_sheet("payroll"), shards=3) as cluster:
        result = cluster.translate("sum the hours", deadline=1.0)
        print(result.top_formula, result.shard_id, cluster.stats().ok_rate)

See ``docs/CLUSTER.md`` for routing and failover semantics, the codec
format, and the operational knobs.
"""

from .cluster import (
    CLUSTER_CLOSED,
    REROUTED,
    SHARD_DOWN,
    ClusterConfig,
    ClusterResult,
    ClusterStats,
    Shard,
    ShardedCluster,
)
from .health import DOWN, SUSPECT, UP, HealthMonitor
from .router import HotShardReport, RendezvousRouter, detect_hot_shards
from .shared_cache import ByteStore, InMemoryByteStore, SharedCacheTier

__all__ = [
    "CLUSTER_CLOSED",
    "ByteStore",
    "ClusterConfig",
    "ClusterResult",
    "ClusterStats",
    "DOWN",
    "HealthMonitor",
    "HotShardReport",
    "InMemoryByteStore",
    "REROUTED",
    "RendezvousRouter",
    "SHARD_DOWN",
    "SUSPECT",
    "Shard",
    "ShardedCluster",
    "SharedCacheTier",
    "UP",
    "detect_hot_shards",
]
