"""The sharded gateway cluster: route → serve → (maybe) fail over.

:class:`ShardedCluster` is the horizontal-scale front end over N
:class:`~repro.serve.TranslationGateway` shards.  One request flows:

1. **Shared cache** — a hit under the ``(sentence, fingerprint, options)``
   key (:mod:`repro.cluster.shared_cache`) resolves immediately; no shard
   is touched.  Because the tier is shared, a result computed by *any*
   shard answers repeats arriving at *every* shard.
2. **Routing** — rendezvous hashing on ``Workbook.fingerprint()``
   (:mod:`repro.cluster.router`) picks the home shard among the live set
   (:mod:`repro.cluster.health`).  Same fingerprint, same shard: the
   shard's warm workers, translator caches, and circuit-breaker state all
   stay local and hot.  A request whose home shard is down lands on its
   next rendezvous choice and is counted ``rerouted``.
3. **Failover** — a shard-level failure (``worker_crashed``,
   ``worker_timeout``, ``circuit_open``, ``gateway_closed``) triggers a
   retry on the next-ranked live shard after exponential backoff with
   jitter.  Retries are event-driven (no thread per request): the
   attempt's :class:`~repro.serve.PendingResult` callback schedules the
   next attempt.  *Service*-level outcomes (``deadline_exhausted``,
   ``empty_description``, ...) are answers, not failures — they never
   retry, so the cluster returns byte-identical results to a single
   gateway.

The invariant the chaos suite asserts is the gateway's, lifted one level:
**every submitted request resolves to exactly one coded result, exactly
once** — across whole-shard SIGKILLs, reroutes, retries, and shutdown.
Zero lost, zero duplicated.

Cluster-level error codes (on top of the gateway/service codes that pass
through unchanged):

* ``shard_down`` — no live shard was available to try (every shard dead
  or every candidate exhausted);
* ``cluster_closed`` — the request was submitted, or its retry came due,
  after :meth:`ShardedCluster.close`;
* failed-over requests carry ``rerouted``/``attempts`` diagnostics on the
  result rather than an error code — a successful failover is a success.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Callable, Iterable

from ..cache import CacheKey, normalise_sentence, options_signature
from ..obs.clock import Clock, monotonic
from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from ..obs.export import render_prometheus
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import TelemetryHub, merge_states
from ..obs.trace import NULL_TRACER
from ..serve import GatewayConfig, GatewayResult, PendingResult, TranslationGateway
from ..sheet import Workbook
from ..translate import TranslatorConfig
from .health import DOWN, HealthMonitor
from .router import HotShardReport, RendezvousRouter, detect_hot_shards
from .shared_cache import ByteStore, SharedCacheTier

__all__ = [
    "CLUSTER_CLOSED",
    "ClusterConfig",
    "ClusterResult",
    "ClusterStats",
    "REROUTED",
    "SHARD_DOWN",
    "Shard",
    "ShardedCluster",
]

_UNSET = object()

_log = get_logger("cluster")

# Cluster-level error codes (documented in docs/CLUSTER.md and listed with
# the runtime/gateway codes in docs/ROBUSTNESS.md).
SHARD_DOWN = "shard_down"
CLUSTER_CLOSED = "cluster_closed"
# Not an error code: the event name counted/traced when a request lands
# somewhere other than its rendezvous home (dead shard or failover).
REROUTED = "rerouted"

# Shard-level failure codes worth trying on a different shard.  Service
# codes are answers and never appear here.
RETRYABLE_CODES = frozenset(
    {"worker_crashed", "worker_timeout", "circuit_open", "gateway_closed"}
)

_EVENTS = (
    "submitted", "completed", "ok", "failed", "cache_hits", "retries",
    "failovers", "rerouted", "shard_down", "closed_rejected", "cancelled",
)


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs for one cluster front end."""

    shards: int = 2
    workers_per_shard: int = 2
    queue_limit: int = 64  # per shard
    default_deadline: float | None = None
    max_derivations: int | None = None
    top_k: int = 5
    translator_config: TranslatorConfig | None = None
    breaker_threshold: int = 5
    breaker_reset: float = 2.0
    request_timeout: float = 30.0
    timeout_grace: float = 1.0
    restart_backoff: float = 0.05
    restart_backoff_cap: float = 2.0
    worker_faults: str | None = None
    start_method: str | None = None
    # Shared cache tier (repro.cluster.shared_cache + repro.cache.codec).
    shared_cache: bool = True
    cache_capacity: int = 8192
    # Retry / failover.  ``retry_max_attempts=None`` means shards + 1:
    # every shard gets a chance, plus one more for transient blips.
    retry_max_attempts: int | None = None
    retry_backoff: float = 0.02
    retry_backoff_cap: float = 1.0
    retry_jitter: float = 0.5
    # Health monitoring.
    health_interval: float = 0.25
    health_failure_threshold: int = 2
    # Hot-shard detection.
    hot_factor: float = 2.0
    hot_min_requests: int = 20
    # The telemetry plane: on in every shard gateway (worker deltas fold
    # into shard registries) and at the cluster front end (its own
    # ``scope="cluster"`` series).  ``federated_state()`` merges all of
    # it into one view.  Off only for differential/overhead harnesses.
    telemetry: bool = True
    # Override the stock objectives (repro.obs.telemetry.default_slos)
    # for the cluster scope AND every shard gateway; a tuple of SloSpec.
    slo_specs: tuple | None = None

    @property
    def attempts_limit(self) -> int:
        return (
            self.retry_max_attempts
            if self.retry_max_attempts is not None
            else self.shards + 1
        )


@dataclass
class ClusterResult(GatewayResult):
    """A gateway result plus cluster routing diagnostics."""

    shard_id: int | None = None  # None: cache hit or never dispatched
    attempts: int = 0
    rerouted: bool = False  # served off the fingerprint's home shard


def _lift(result: GatewayResult, **extra) -> ClusterResult:
    base = {
        f.name: getattr(result, f.name)
        for f in dataclass_fields(GatewayResult)
    }
    return ClusterResult(**base, **extra)


@dataclass
class _ClusterRequest:
    id: int
    sentence: str
    workbook: Workbook
    fingerprint: str
    submitted_at: float
    expires_at: float | None
    faults: str | None
    pending: PendingResult
    cache_key: CacheKey | None = None
    attempts: int = 0
    tried: list = field(default_factory=list)  # shard ids, attempt order
    last_failure: GatewayResult | None = None
    home_shard: int | None = None
    span: Any = None
    cancelled: bool = False  # caller abandoned; stop retrying
    inner: PendingResult | None = None  # the in-flight shard attempt
    trace_id: str | None = None  # telemetry-plane id (caller's or the span's)


class _RetryScheduler:
    """One timer thread running delayed callbacks (the retry clock).

    ``stop(flush=True)`` fires everything still queued immediately — the
    callbacks themselves observe the cluster's closed flag and resolve
    their requests with ``cluster_closed``, so no retry is ever silently
    dropped.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._heap: list = []
        self._seq = itertools.count()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-cluster-retry"
        )
        self._thread.start()

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        with self._cond:
            if self._stopped:
                run_now = True
            else:
                run_now = False
                heapq.heappush(
                    self._heap,
                    (time.monotonic() + max(0.0, delay), next(self._seq), fn),
                )
                self._cond.notify()
        if run_now:
            fn()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._stopped:
                    self._cond.wait(timeout=0.5)
                if self._stopped and not self._heap:
                    return
                due, _, fn = self._heap[0]
                now = time.monotonic()
                if not self._stopped and due > now:
                    self._cond.wait(timeout=min(due - now, 0.5))
                    continue
                heapq.heappop(self._heap)
            try:
                fn()
            except Exception:  # noqa: BLE001 - a retry bug must not kill the clock
                _log.exception("scheduled retry raised")

    def stop(self, timeout: float = 5.0) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)


class Shard:
    """One gateway plus its cluster-side identity and liveness flag."""

    def __init__(self, shard_id: int, gateway: TranslationGateway) -> None:
        self.shard_id = shard_id
        self.gateway = gateway
        self.dead = False  # set by kill(); health probes observe it

    def healthy(self) -> bool:
        return not self.dead and not self.gateway.quarantined

    def kill(self) -> int:
        """SIGKILL the whole shard (every worker, no respawns)."""
        self.dead = True
        return self.gateway.quarantine()


class ShardedCluster:
    """Serve translation requests across N crash-isolated gateway shards."""

    def __init__(
        self,
        workbook: Workbook | None = None,
        config: ClusterConfig | None = None,
        *,
        clock: Clock = monotonic,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        store: ByteStore | None = None,
        rng: random.Random | None = None,
        **overrides,
    ) -> None:
        self.config = replace(config or ClusterConfig(), **overrides)
        if self.config.shards < 1:
            raise ValueError("cluster needs at least one shard")
        self.default_workbook = workbook
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry(clock)
        self._rng = rng if rng is not None else random.Random()
        gateway_config = GatewayConfig(
            workers=self.config.workers_per_shard,
            queue_limit=self.config.queue_limit,
            default_deadline=None,  # the cluster owns the deadline budget
            max_derivations=self.config.max_derivations,
            top_k=self.config.top_k,
            translator_config=self.config.translator_config,
            breaker_threshold=self.config.breaker_threshold,
            breaker_reset=self.config.breaker_reset,
            request_timeout=self.config.request_timeout,
            timeout_grace=self.config.timeout_grace,
            restart_backoff=self.config.restart_backoff,
            restart_backoff_cap=self.config.restart_backoff_cap,
            worker_faults=self.config.worker_faults,
            start_method=self.config.start_method,
            cache=False,  # the shared tier replaces per-shard front caches
            telemetry=self.config.telemetry,
            slo_specs=self.config.slo_specs,
        )
        # Each shard keeps its own metrics registry: gateway_* series must
        # stay shard-local (breaker state, queue depth, EMA), while the
        # cluster_* series below live in the cluster's registry.
        self.shards = [
            Shard(
                shard_id,
                TranslationGateway(
                    config=gateway_config, clock=clock, tracer=self.tracer
                ),
            )
            for shard_id in range(self.config.shards)
        ]
        self.router = RendezvousRouter([s.shard_id for s in self.shards])
        self.cache = (
            SharedCacheTier(
                store=store,
                capacity=self.config.cache_capacity,
                clock=clock,
                metrics=self.metrics,
            )
            if self.config.shared_cache
            else None
        )
        self._cache_options = options_signature(
            self.config.translator_config or TranslatorConfig(),
            self.config.max_derivations,
            self.config.top_k,
        )
        self._lock = threading.Lock()
        self._closed = False
        self._ids = itertools.count(1)
        self._traffic: dict[str, int] = {}  # fingerprint -> requests
        m = self.metrics
        self._events = m.counter(
            "cluster_events_total", "cluster request lifecycle events by kind"
        )
        self._fingerprint_requests = m.counter(
            "cluster_fingerprint_requests_total",
            "requests per workbook fingerprint (feeds hot-shard detection)",
        )
        self._shard_requests = m.counter(
            "cluster_shard_requests_total", "attempts dispatched per shard"
        )
        self._attempt_seconds = m.histogram(
            "cluster_attempt_seconds", "per-attempt shard round-trip seconds"
        )
        self.health = HealthMonitor(
            probes={
                shard.shard_id: shard.healthy for shard in self.shards
            },
            interval=self.config.health_interval,
            failure_threshold=self.config.health_failure_threshold,
            clock=clock,
            metrics=self.metrics,
        )
        # The cluster's own telemetry scope: routed-request outcomes as
        # the caller saw them (``scope="cluster"`` keeps these series
        # disjoint from the shards' ``scope="gateway"`` series in the
        # federated view, so nothing double-counts within a label set).
        self.telemetry = (
            TelemetryHub(
                metrics=self.metrics,
                scope="cluster",
                deadline=self.config.default_deadline,
                specs=self.config.slo_specs,
            )
            if self.config.telemetry
            else None
        )
        self._scheduler = _RetryScheduler()
        self.health.start()

    # -- the public request path -------------------------------------------------

    def submit(
        self,
        sentence: str,
        workbook: Workbook | None = None,
        deadline: float | None | object = _UNSET,
        faults: str | None = None,
        *,
        trace_id: str | None = None,
    ) -> PendingResult:
        """Route one request into the cluster; always returns a future.

        Same contract as the gateway's ``submit``, one level up: the
        future resolves to exactly one coded :class:`ClusterResult`, no
        matter which shards die in between.  ``trace_id`` files the
        request in the telemetry plane under a caller-chosen id (the
        HTTP front end's ``X-Repro-Trace-Id``) and propagates to every
        shard attempt.
        """
        wb = workbook or self.default_workbook
        if wb is None:
            raise ValueError("no workbook: pass one or set a default")
        if deadline is _UNSET:
            deadline = self.config.default_deadline
        fingerprint = wb.fingerprint()
        now = self.clock()
        pending = PendingResult()
        cache_key = None
        if self.cache is not None and faults is None:
            cache_key = CacheKey(
                normalise_sentence(sentence), fingerprint, self._cache_options
            )
        span = self.tracer.span(
            "cluster.request", trace_id=trace_id,
            request_id=f"c{id(pending):x}", fingerprint=fingerprint,
        )
        if trace_id is None and self.tracer.enabled:
            trace_id = span.trace_id
        request = _ClusterRequest(
            id=next(self._ids),
            sentence=sentence,
            workbook=wb,
            fingerprint=fingerprint,
            submitted_at=now,
            expires_at=(now + deadline) if deadline is not None else None,
            faults=faults,
            pending=pending,
            cache_key=cache_key,
            home_shard=self.router.route(fingerprint),
            span=span,
            trace_id=trace_id,
        )
        pending._canceller = lambda: self._cancel_request(request)
        with self._lock:
            if self._closed:
                self._count("submitted")
                self._finalize_error(
                    request, CLUSTER_CLOSED, "cluster is shut down",
                    "closed_rejected",
                )
                return pending
            self._count("submitted")
            self._traffic[fingerprint] = self._traffic.get(fingerprint, 0) + 1
        self._fingerprint_requests.inc(fingerprint=fingerprint)
        if cache_key is not None:
            entry = self.cache.get(cache_key)
            if entry is not None:
                self._resolve_hit(request, entry)
                return pending
        self._dispatch(request)
        return pending

    def translate(
        self,
        sentence: str,
        workbook: Workbook | None = None,
        deadline: float | None | object = _UNSET,
        faults: str | None = None,
        wait: float | None = None,
    ) -> ClusterResult:
        """Synchronous ``submit`` + ``result``."""
        return self.submit(sentence, workbook, deadline, faults).result(wait)

    def translate_many(
        self,
        sentences: Iterable[str],
        workbook: Workbook | None = None,
        deadline: float | None | object = _UNSET,
        wait: float | None = None,
    ) -> list[ClusterResult]:
        """Submit a batch, then wait for every result (submission order)."""
        pendings = [
            self.submit(sentence, workbook, deadline) for sentence in sentences
        ]
        return [pending.result(wait) for pending in pendings]

    # -- lifecycle ----------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the cluster.  On return every outstanding future is
        resolved: queued retries fire as ``cluster_closed``, and each
        shard's ``close`` (see the gateway's drain guarantee) resolves
        whatever it still holds."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.health.stop()
        # Flush pending retries: their _dispatch observes _closed and
        # resolves cluster_closed.
        self._scheduler.stop()
        per_shard = max(1.0, timeout / max(1, len(self.shards)))
        for shard in self.shards:
            shard.gateway.close(drain=drain, timeout=per_shard)

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # -- chaos knobs ---------------------------------------------------------------

    def kill_shard(self, shard_id: int) -> int:
        """SIGKILL an entire shard (all workers, no respawns) and mark it
        down so routing reacts immediately.  In-flight and queued requests
        on the shard resolve ``worker_crashed`` and fail over to the next
        live shard.  Returns the number of worker processes killed."""
        shard = self.shards[shard_id]
        killed = shard.kill()
        self.health.mark_down(shard_id)
        _log.warning(
            "shard killed",
            extra=log_fields(shard=shard_id, workers_killed=killed),
        )
        return killed

    # -- internals -----------------------------------------------------------------

    def _count(self, *names: str) -> None:
        for name in names:
            self._events.inc(event=name)

    def _observe(self, request: _ClusterRequest, result: ClusterResult) -> None:
        """Feed the telemetry plane on any resolution path (never raises)."""
        if self.telemetry is not None:
            self.telemetry.observe(result, trace_id=request.trace_id)

    def _retry_delay(self, attempts: int) -> float:
        """Backoff before attempt ``attempts + 1``: exponential in the
        number of failures so far, scaled by ``[1 - jitter, 1]`` so a
        burst of failures (a whole shard dying under load) does not
        hammer the failover shard in one synchronized wave."""
        if attempts < 1 or self.config.retry_backoff <= 0:
            return 0.0
        envelope = min(
            self.config.retry_backoff_cap,
            self.config.retry_backoff * 2 ** (attempts - 1),
        )
        if self.config.retry_jitter <= 0:
            return envelope
        return envelope * (1.0 - self.config.retry_jitter * self._rng.random())

    def _pick_shard(self, request: _ClusterRequest) -> int | None:
        """The next shard to try: best-ranked live shard not yet tried,
        else (transient-blip insurance) the best-ranked live shard."""
        alive = self.health.alive()
        tried = set(request.tried)
        preference = self.router.preference(request.fingerprint)
        for shard_id in preference:
            if shard_id in alive and shard_id not in tried:
                return shard_id
        for shard_id in preference:
            if shard_id in alive:
                return shard_id
        return None

    def _cancel_request(self, request: _ClusterRequest) -> bool:
        """The :meth:`PendingResult.cancel` path, lifted over routing.

        Marks the request abandoned (a scheduled retry observes the flag
        and resolves ``cancelled`` instead of dispatching) and forwards
        the cancel to the in-flight shard attempt, whose gateway releases
        its queue slot if the attempt is still waiting for a worker.
        """
        request.cancelled = True
        inner = request.inner
        if inner is not None and inner.cancel():
            # The inner attempt resolves with code "cancelled"; it is not
            # retryable, so _on_attempt_done finalizes the outer future.
            return True
        return False

    def _dispatch(self, request: _ClusterRequest) -> None:
        """Route one attempt (also the retry-scheduler entry point)."""
        with self._lock:
            closed = self._closed
        if closed:
            self._finalize_error(
                request, CLUSTER_CLOSED,
                "cluster closed before the request could be (re)tried",
                "closed_rejected",
            )
            return
        if request.cancelled:
            self._finalize_error(
                request, "cancelled",
                "cancelled by the caller between attempts", "cancelled",
            )
            return
        remaining: float | None = None
        if request.expires_at is not None:
            remaining = request.expires_at - self.clock()
            if remaining <= 0:
                # Out of deadline mid-failover: the last shard failure is
                # the honest answer; absent one, this is a shed.
                if request.last_failure is not None:
                    self._finalize(request, request.last_failure)
                else:
                    self._finalize_error(
                        request, "shed_overload",
                        "deadline expired before any shard could serve",
                        "failed",
                    )
                return
        shard_id = self._pick_shard(request)
        if shard_id is None:
            self._finalize_error(
                request, SHARD_DOWN,
                "no live shard available for this request",
                "shard_down",
            )
            return
        shard = self.shards[shard_id]
        request.attempts += 1
        request.tried.append(shard_id)
        self._shard_requests.inc(shard=shard_id)
        attempt_span = self.tracer.span(
            "cluster.attempt", parent=request.span,
            shard=shard_id, attempt=request.attempts,
        )
        started = self.clock()
        inner = shard.gateway.submit(
            request.sentence,
            request.workbook,
            deadline=remaining,
            faults=request.faults,
            trace_parent=attempt_span,
            trace_id=request.trace_id,
        )
        request.inner = inner
        inner.add_done_callback(
            lambda result, shard=shard, span=attempt_span, t0=started: (
                self._on_attempt_done(request, shard, span, t0, result)
            )
        )

    def _on_attempt_done(
        self,
        request: _ClusterRequest,
        shard: Shard,
        attempt_span,
        started: float,
        result: GatewayResult,
    ) -> None:
        self._attempt_seconds.observe(self.clock() - started)
        retryable = (
            not result.ok and result.error_code in RETRYABLE_CODES
        )
        if not retryable:
            attempt_span.set(
                ok=result.ok, error_code=result.error_code
            ).finish()
            if result.ok:
                self.health.note_success(shard.shard_id)
            self._finalize(request, result, shard_id=shard.shard_id)
            return
        attempt_span.error(result.error).set(
            error_code=result.error_code
        ).finish()
        request.last_failure = result
        with self._lock:
            closed = self._closed
        if (
            closed
            or request.cancelled
            or request.attempts >= self.config.attempts_limit
        ):
            self._finalize(request, result, shard_id=shard.shard_id)
            return
        self._count("retries")
        delay = self._retry_delay(request.attempts)
        _log.warning(
            "failing over",
            extra=log_fields(
                request_id=request.id, shard=shard.shard_id,
                code=result.error_code, attempt=request.attempts,
                backoff_seconds=round(delay, 4),
            ),
        )
        self._scheduler.schedule(delay, lambda: self._dispatch(request))

    def _resolve_hit(self, request: _ClusterRequest, entry: dict) -> None:
        """Resolve a shared-tier hit without touching any shard."""
        now = self.clock()
        self._count("completed", "ok", "cache_hits")
        result = ClusterResult(
            ok=True,
            tier=entry["tier"],
            programs=list(entry["programs"]),
            n_candidates=entry["n_candidates"],
            top_formula=entry["top_formula"],
            elapsed=entry["elapsed"],
            budget_spent=entry["budget_spent"],
            total_seconds=now - request.submitted_at,
            fingerprint=request.fingerprint,
            cached=True,
            shard_id=None,
            attempts=0,
        )
        self._close_span(request, result)
        self._observe(request, result)
        request.pending._resolve(result)

    def _finalize(
        self,
        request: _ClusterRequest,
        result: GatewayResult,
        shard_id: int | None = None,
    ) -> None:
        """Lift a shard result into the cluster result and resolve."""
        rerouted = (
            shard_id is not None and shard_id != request.home_shard
        ) or request.attempts > 1
        lifted = _lift(
            result,
            shard_id=shard_id,
            attempts=request.attempts,
            rerouted=rerouted,
        )
        lifted.total_seconds = self.clock() - request.submitted_at
        buckets = ["completed", "ok" if lifted.ok else "failed"]
        if lifted.error_code == "cancelled":
            buckets.append("cancelled")
        if lifted.ok and request.attempts > 1:
            buckets.append("failovers")
        if rerouted:
            buckets.append(REROUTED)
        self._count(*buckets)
        if (
            lifted.ok
            and request.cache_key is not None
            and not lifted.degraded
            and not lifted.anytime
            and not lifted.cached
        ):
            # Clean full-fidelity answer: commit to the shared tier so the
            # next identical request — on any shard — is a hit.
            self.cache.put(
                request.cache_key,
                {
                    "tier": lifted.tier,
                    "programs": tuple(lifted.programs),
                    "n_candidates": lifted.n_candidates,
                    "top_formula": lifted.top_formula,
                    "elapsed": lifted.elapsed,
                    "budget_spent": lifted.budget_spent,
                },
            )
        self._close_span(request, lifted)
        self._observe(request, lifted)
        request.pending._resolve(lifted)

    def _finalize_error(
        self, request: _ClusterRequest, code: str, message: str, bucket: str
    ) -> None:
        """Resolve a request that never got a shard result (counts itself)."""
        self._count("completed", "failed", bucket)
        now = self.clock()
        result = ClusterResult(
            ok=False,
            error_code=code,
            error=message,
            fingerprint=request.fingerprint,
            total_seconds=now - request.submitted_at,
            attempts=request.attempts,
            rerouted=request.attempts > 1,
        )
        self._close_span(request, result)
        self._observe(request, result)
        request.pending._resolve(result)

    def _close_span(self, request: _ClusterRequest, result: ClusterResult):
        span = request.span
        if span is None:
            return
        if not result.ok:
            span.error(result.error).set(error_code=result.error_code)
        span.set(
            shard=result.shard_id,
            attempts=result.attempts,
            rerouted=result.rerouted,
            cached=result.cached,
        ).finish()

    # -- diagnostics ----------------------------------------------------------------

    def federated_state(self) -> dict[str, Any]:
        """One merged metric state over the whole cluster.

        The fold of the cluster registry (``cluster_*``, shared-cache,
        health, and ``scope="cluster"`` telemetry series) with every
        shard's gateway registry (``gateway_*``, folded ``worker_*``, and
        ``scope="gateway"`` telemetry series): counters sum per label
        set, histogram buckets add element-wise.  Exactly what a
        per-shard scrape would sum to — the federated-equality test in
        tests/cluster asserts this.
        """
        return merge_states(
            self.metrics.export_state(),
            *[
                shard.gateway.metrics.export_state()
                for shard in self.shards
            ],
        )

    def federated_render(self) -> str:
        """The federated state as Prometheus text (``GET /metrics``)."""
        return render_prometheus(self.federated_state())

    def slo_report(self) -> dict[str, Any] | None:
        """The ``GET /slo`` document: the cluster scope's own report plus
        each live shard's, or ``None`` with telemetry off."""
        if self.telemetry is None:
            return None
        report = self.telemetry.slo_report()
        report["shards"] = [
            {
                "shard_id": shard.shard_id,
                "healthy": shard.healthy(),
                **(shard.gateway.slo_report() or {}),
            }
            for shard in self.shards
        ]
        return report

    def sampled_traces(self) -> list[str]:
        """Tail-sampled trace JSONL from the cluster scope and every
        shard (cluster lines first, then shards in id order)."""
        if self.telemetry is None:
            return []
        lines = self.telemetry.sampler.jsonl()
        for shard in self.shards:
            lines.extend(shard.gateway.sampled_traces())
        return lines

    def hot_shards(self) -> HotShardReport:
        """Project observed per-fingerprint traffic onto the live shards."""
        with self._lock:
            traffic = dict(self._traffic)
        return detect_hot_shards(
            traffic,
            self.router,
            alive=self.health.alive(),
            hot_factor=self.config.hot_factor,
            min_requests=self.config.hot_min_requests,
        )

    def stats(self) -> "ClusterStats":
        counters = {
            name: int(self._events.value(event=name)) for name in _EVENTS
        }
        states = self.health.states()
        return ClusterStats(
            shards=[
                ShardStats(
                    shard_id=shard.shard_id,
                    state=states.get(shard.shard_id, DOWN),
                    dead=shard.dead,
                    gateway=shard.gateway.stats(),
                )
                for shard in self.shards
            ],
            shared_cache=(
                self.cache.snapshot() if self.cache is not None else None
            ),
            hot=self.hot_shards(),
            **counters,
        )

    def snapshot(self) -> dict[str, Any]:
        """The ``snapshot()`` protocol (same shape as ``stats().snapshot()``)."""
        return self.stats().snapshot()


@dataclass
class ShardStats:
    """One shard's identity, health, and gateway diagnostics."""

    shard_id: int
    state: str
    dead: bool
    gateway: Any  # GatewayStats

    def snapshot(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "state": self.state,
            "dead": self.dead,
            "gateway": self.gateway.snapshot(),
        }


@dataclass
class ClusterStats:
    """A diagnostics snapshot (``ShardedCluster.stats()``)."""

    submitted: int
    completed: int
    ok: int
    failed: int
    cache_hits: int
    retries: int
    failovers: int
    rerouted: int
    shard_down: int
    closed_rejected: int
    cancelled: int
    shards: list[ShardStats] = field(default_factory=list)
    shared_cache: dict | None = None
    hot: HotShardReport | None = None

    @property
    def ok_rate(self) -> float:
        return self.ok / self.submitted if self.submitted else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.submitted if self.submitted else 0.0

    @property
    def live_shards(self) -> int:
        return sum(1 for shard in self.shards if shard.state != DOWN)

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for f in dataclass_fields(self):
            out[f.name] = getattr(self, f.name)
        out["shards"] = [shard.snapshot() for shard in self.shards]
        out["hot"] = self.hot.snapshot() if self.hot is not None else None
        out.update(
            ok_rate=self.ok_rate,
            cache_hit_rate=self.cache_hit_rate,
            live_shards=self.live_shards,
        )
        return out
