"""Translate DSL programs into Excel formulas (paper §4).

"We transform each result expression into both Excel formulas and structured
unambiguous English.  Translation into Excel formulas is enabled by
syntax-directed rewriting strategies ... done to avoid forcing users to learn
our DSL."

The emitter is syntax-directed: simple conjunctive filters become the
``SUMIFS`` / ``AVERAGEIFS`` / ``COUNTIFS`` family; disjunctions, negations,
and column-to-column comparisons fall back to ``SUMPRODUCT`` array forms
(exactly the ``IF(b1+b2, 1, 0)`` workaround the paper's footnote mentions);
lookups become ``INDEX``/``MATCH``.  Selection and formatting programs have
no formula equivalent, so they render as bracketed action descriptions.
"""

from __future__ import annotations

from ..errors import EvaluationError
from ..sheet.table import Table
from ..sheet.values import CellValue, ValueType
from ..sheet.workbook import Workbook
from . import ast

_REDUCE_PLAIN = {
    ast.ReduceOp.SUM: "SUM",
    ast.ReduceOp.AVG: "AVERAGE",
    ast.ReduceOp.MIN: "MIN",
    ast.ReduceOp.MAX: "MAX",
}
_REDUCE_IFS = {
    ast.ReduceOp.SUM: "SUMIFS",
    ast.ReduceOp.AVG: "AVERAGEIFS",
    ast.ReduceOp.MIN: "MINIFS",
    ast.ReduceOp.MAX: "MAXIFS",
}


class ExcelEmitter:
    """Emits an Excel formula string for a complete DSL program."""

    def __init__(self, workbook: Workbook) -> None:
        self.workbook = workbook

    # -- public API --------------------------------------------------------

    def emit(self, program: ast.Expr) -> str:
        """The Excel rendering shown beside each candidate in the UI."""
        if isinstance(program, ast.MakeActive):
            return f"[select {self._describe_query(program.query)}]"
        if isinstance(program, ast.FormatCells):
            fmt = ", ".join(fn.describe() for fn in program.spec.fns)
            return f"[apply {fmt} to {self._describe_query(program.query)}]"
        body = self._value(program)
        return f"={body}"

    # -- value expressions ---------------------------------------------------

    def _value(self, e: ast.Expr) -> str:
        if isinstance(e, ast.Lit):
            return _literal(e.value)
        if isinstance(e, ast.CellRef):
            return e.a1.upper()
        if isinstance(e, ast.ColumnRef):
            table = self._table_of(e)
            return _column_range(table, e.name)
        if isinstance(e, ast.BinOp):
            return f"({self._value(e.left)}{e.op.symbol}{self._value(e.right)})"
        if isinstance(e, ast.Reduce):
            return self._reduce(e)
        if isinstance(e, ast.Count):
            return self._count(e)
        if isinstance(e, ast.Lookup):
            return self._lookup(e)
        raise EvaluationError(f"cannot emit Excel for {e}")

    def _reduce(self, e: ast.Reduce) -> str:
        table = self._source_table(e.source)
        data = _column_range(table, _name(e.column))
        if isinstance(e.condition, ast.TrueF):
            return f"{_REDUCE_PLAIN[e.op]}({data})"
        criteria = _conjunctive_criteria(e.condition)
        if criteria is not None:
            pairs = ", ".join(
                f"{_column_range(table, col)}, {self._criterion(op, rhs)}"
                for col, op, rhs in criteria
            )
            return f"{_REDUCE_IFS[e.op]}({data}, {pairs})"
        cond = self._array_condition(e.condition, table)
        if e.op is ast.ReduceOp.SUM:
            return f"SUMPRODUCT({cond}*{data})"
        inner = f"IF({cond}, {data})"
        return f"{_REDUCE_PLAIN[e.op]}({inner})"

    def _count(self, e: ast.Count) -> str:
        table = self._source_table(e.source)
        if isinstance(e.condition, ast.TrueF):
            first = _column_range(table, table.column_names[0])
            return f"COUNTA({first})"
        criteria = _conjunctive_criteria(e.condition)
        if criteria is not None:
            pairs = ", ".join(
                f"{_column_range(table, col)}, {self._criterion(op, rhs)}"
                for col, op, rhs in criteria
            )
            return f"COUNTIFS({pairs})"
        cond = self._array_condition(e.condition, table)
        return f"SUMPRODUCT(1*{cond})"

    def _lookup(self, e: ast.Lookup) -> str:
        table = self._source_table(e.source)
        out = _column_range(table, _name(e.out))
        key = _column_range(table, _name(e.key))
        needle = self._value(e.needle)
        return f"INDEX({out}, MATCH({needle}, {key}, 0))"

    # -- filters ----------------------------------------------------------------

    def _criterion(self, op: ast.RelOp, rhs: ast.Expr) -> str:
        """A SUMIFS-style criterion: ``"barista"``, ``"<20"``, or a computed
        one like ``">"&AVERAGE(...)``."""
        rendered = self._value(rhs)
        if op is ast.RelOp.EQ:
            return rendered
        if isinstance(rhs, ast.Lit):
            return f'"{op.symbol}{rendered}"'
        if isinstance(rhs, ast.CellRef):
            return f'"{op.symbol}"&{rendered}'
        return f'"{op.symbol}"&({rendered})'

    def _array_condition(self, f: ast.Expr, table: Table) -> str:
        """Render a filter as a 0/1 array expression for SUMPRODUCT."""
        if isinstance(f, ast.TrueF):
            return "1"
        if isinstance(f, ast.And):
            return (
                f"({self._array_condition(f.left, table)}"
                f"*{self._array_condition(f.right, table)})"
            )
        if isinstance(f, ast.Or):
            left = self._array_condition(f.left, table)
            right = self._array_condition(f.right, table)
            return f"(({left}+{right})>0)"
        if isinstance(f, ast.Not):
            return f"(1-{self._array_condition(f.operand, table)})"
        if isinstance(f, ast.Compare):
            left = self._comparand(f.left, table)
            right = self._comparand(f.right, table)
            return f"({left}{f.op.symbol}{right})"
        raise EvaluationError(f"cannot emit condition for {f}")

    def _comparand(self, e: ast.Expr, table: Table) -> str:
        if isinstance(e, ast.ColumnRef) and e.table is None:
            return _column_range(table, e.name)
        return self._value(e)

    # -- queries (described, not emitted) ------------------------------------------

    def _describe_query(self, q: ast.Expr) -> str:
        if isinstance(q, ast.SelectRows):
            table = self._source_table(q.source)
            if isinstance(q.condition, ast.TrueF):
                return f"all rows of {table.name}"
            return f"rows of {table.name} where {self._condition_text(q.condition, table)}"
        if isinstance(q, ast.SelectCells):
            table = self._source_table(q.source)
            cols = ", ".join(_name(c) for c in q.columns)
            if isinstance(q.condition, ast.TrueF):
                return f"{cols} of {table.name}"
            return (
                f"{cols} of {table.name} where "
                f"{self._condition_text(q.condition, table)}"
            )
        raise EvaluationError(f"not a query: {q}")

    def _condition_text(self, f: ast.Expr, table: Table) -> str:
        if isinstance(f, ast.And):
            return (
                f"{self._condition_text(f.left, table)} and "
                f"{self._condition_text(f.right, table)}"
            )
        if isinstance(f, ast.Or):
            return (
                f"{self._condition_text(f.left, table)} or "
                f"{self._condition_text(f.right, table)}"
            )
        if isinstance(f, ast.Not):
            return f"not ({self._condition_text(f.operand, table)})"
        if isinstance(f, ast.Compare):
            return (
                f"{self._comparand(f.left, table)}"
                f"{f.op.symbol}{self._comparand(f.right, table)}"
            )
        return str(f)

    # -- table resolution -----------------------------------------------------------

    def _source_table(self, rs: ast.Expr) -> Table:
        if isinstance(rs, (ast.GetTable, ast.GetFormat)) and rs.table:
            return self.workbook.table(rs.table)
        return self.workbook.default_table

    def _table_of(self, c: ast.ColumnRef) -> Table:
        if c.table:
            return self.workbook.table(c.table)
        return self.workbook.default_table


def _conjunctive_criteria(
    f: ast.Expr,
) -> list[tuple[str, ast.RelOp, ast.Expr]] | None:
    """Decompose a filter into SUMIFS-compatible (column, op, rhs) criteria.

    Only conjunctions of comparisons with exactly one local-table column on
    one side qualify; returns ``None`` otherwise (the caller falls back to a
    SUMPRODUCT array form).
    """
    if isinstance(f, ast.And):
        left = _conjunctive_criteria(f.left)
        right = _conjunctive_criteria(f.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(f, ast.Compare):
        flipped = {ast.RelOp.LT: ast.RelOp.GT, ast.RelOp.GT: ast.RelOp.LT}
        left_col = isinstance(f.left, ast.ColumnRef) and f.left.table is None
        right_col = isinstance(f.right, ast.ColumnRef) and f.right.table is None
        if left_col and not right_col:
            return [(f.left.name, f.op, f.right)]
        if right_col and not left_col:
            op = flipped.get(f.op, f.op)
            return [(f.right.name, op, f.left)]
        return None
    return None


def _name(e: ast.Expr) -> str:
    if isinstance(e, ast.ColumnRef):
        return e.name
    raise EvaluationError(f"expected a column, got {e}")


def _column_range(table: Table, column: str) -> str:
    j = table.column_index(column)
    if table.n_rows == 0:
        # An empty table still has a well-defined first data cell.
        from ..sheet.address import CellAddress

        return CellAddress(table.origin.col + j, table.origin.row + 1).to_a1()
    first = table.address_of(0, j).to_a1()
    last = table.address_of(table.n_rows - 1, j).to_a1()
    return f"{first}:{last}"


def _literal(v: CellValue) -> str:
    if v.type is ValueType.TEXT or v.type is ValueType.DATE:
        return f'"{v.payload}"'
    if v.type is ValueType.BOOL:
        return "TRUE" if v.payload else "FALSE"
    if v.type is ValueType.CURRENCY:
        x = float(v.payload)
        return str(int(x)) if x == int(x) else str(x)
    x = v.payload
    if isinstance(x, float) and x == int(x):
        return str(int(x))
    return str(x)
