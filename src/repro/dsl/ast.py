"""The NLyze DSL abstract syntax (paper §2, Fig. 2).

Every node is an immutable, hashable dataclass, so expression sets in the
translator deduplicate structurally and subtrees can be shared freely.

Grammar recap::

    Program    := MakeActive(Q) | Format(fe, Q) | v | V
    Query Q    := SelectRows(rs, f) | SelectCells(C~, rs, f)
    RowSource  := GetTable(Tbl) | GetActive() | GetFormat(Tbl, fe)
    Filter f   := relop(C, v) | relop(v, C) | relop(C, C)
                | And(f, f) | Or(f, f) | Not(f) | True
    Scalar v   := rop(C, rs, f) | Count(rs, f) | bop(v, v)
                | Lookup(v, rs, C, C) | c
    Vector V   := bop(V, V) | bop(V, v) | bop(v, V) | C
                | Lookup(C, rs, C, C)

Partial expressions extend this grammar with :class:`Hole` placeholders
(paper §3.1); see :mod:`repro.dsl.holes` for substitution machinery.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, fields
from typing import ClassVar, Iterator

from ..sheet.formatting import FormatFn
from ..sheet.values import CellValue

# ---------------------------------------------------------------------------
# Hash-consing and the hot-path switch
# ---------------------------------------------------------------------------
#
# The translator's DP creates the same (sub-)expressions millions of times
# per sentence.  :func:`intern` hash-conses them: structurally equal nodes
# become the *same object*, and every node caches its structural hash and
# ``str()`` on first use, so dedup maps, type-checker probes, and prune
# tiebreakers stop re-walking trees (docs/PERFORMANCE.md).
#
# ``REPRO_NO_INTERN=1`` is the escape hatch: it disables interning and every
# downstream memoisation layer keyed on it (holes/type-checker/context
# caches, rule prefilters), restoring the pre-optimisation code paths.  The
# differential harness proves both modes byte-identical; the hotpath bench
# measures the speedup between them.

_HOTPATH = os.environ.get("REPRO_NO_INTERN", "") != "1"
_INTERN_TABLE: dict["Expr", "Expr"] = {}
# Soft cap on distinct interned nodes.  A long-lived service translating
# against many workbooks must not leak; clearing only costs future identity
# sharing (correctness is structural, never identity-based).
_INTERN_CAP = 1 << 18


def hotpath_enabled() -> bool:
    """True when interning + hot-path memoisation are active (default)."""
    return _HOTPATH


def set_hotpath(enabled: bool) -> None:
    """Flip the hot-path switch at runtime (tests, differential harness).

    The intern table is cleared on every flip so the two modes never share
    canonical nodes.
    """
    global _HOTPATH
    _HOTPATH = bool(enabled)
    _INTERN_TABLE.clear()


def sync_hotpath_from_env() -> None:
    """Re-read ``REPRO_NO_INTERN`` — needed by forked gateway workers whose
    parent imported this module before the env var was set.

    Also re-reads ``REPRO_NO_COLUMNAR`` (:mod:`repro.sheet.columnar`): the
    columnar backend and the template intern tables ride the same fork
    serialisation path into workers, so the two switches stay in sync from
    one call site.
    """
    set_hotpath(os.environ.get("REPRO_NO_INTERN", "") != "1")
    from ..sheet.columnar import sync_columnar_from_env

    sync_columnar_from_env()


def intern_table_size() -> int:
    return len(_INTERN_TABLE)


def intern(expr: "Expr") -> "Expr":
    """The canonical instance structurally equal to ``expr``.

    Children are interned recursively, so every sub-expression of a
    canonical node is canonical too — which is what turns the type
    checker's structural cache probes into O(1) identity-backed hits.
    A no-op (returns ``expr`` unchanged) when the hot path is disabled.
    """
    if not _HOTPATH:
        return expr
    table = _INTERN_TABLE
    found = table.get(expr)
    if found is not None:
        return found
    children = expr.children()
    if children:
        interned = tuple(intern(c) for c in children)
        if any(a is not b for a, b in zip(children, interned)):
            expr = expr.replace_children(interned)
            found = table.get(expr)
            if found is not None:
                return found
    if len(table) >= _INTERN_CAP:
        table.clear()
    table[expr] = expr
    return expr


class ReduceOp(enum.Enum):
    SUM = "Sum"
    AVG = "Avg"
    MIN = "Min"
    MAX = "Max"


class BinaryOp(enum.Enum):
    ADD = "Add"
    SUB = "Sub"
    MULT = "Mult"
    DIV = "Div"

    @property
    def symbol(self) -> str:
        return {"Add": "+", "Sub": "-", "Mult": "*", "Div": "/"}[self.value]


class RelOp(enum.Enum):
    LT = "Lt"
    GT = "Gt"
    EQ = "Eq"

    @property
    def symbol(self) -> str:
        return {"Lt": "<", "Gt": ">", "Eq": "="}[self.value]


class HoleKind(enum.Enum):
    """Restriction symbol on a hole (paper §3.1)."""

    GENERAL = "G"
    LITERAL = "L"
    COLUMN = "C"
    VALUE = "V"


@dataclass(frozen=True)
class Expr:
    """Base class of every DSL node.

    ``_child_fields`` names the dataclass fields holding sub-expressions
    (either a single ``Expr`` or a tuple of ``Expr``); the generic traversal
    helpers below rely on it, which keeps substitution and printing free of
    per-node boilerplate.
    """

    _child_fields: ClassVar[tuple[str, ...]] = ()

    def children(self) -> tuple["Expr", ...]:
        out: list[Expr] = []
        for name in self._child_fields:
            value = getattr(self, name)
            if isinstance(value, Expr):
                out.append(value)
            else:
                out.extend(value)
        return tuple(out)

    def replace_children(self, new_children: tuple["Expr", ...]) -> "Expr":
        """Rebuild this node with ``new_children`` in traversal order."""
        queue = list(new_children)
        updates = {}
        for name in self._child_fields:
            value = getattr(self, name)
            if isinstance(value, Expr):
                updates[name] = queue.pop(0)
            else:
                updates[name] = tuple(queue.pop(0) for _ in value)
        if queue:
            raise ValueError("wrong number of replacement children")
        kwargs = {
            f.name: updates.get(f.name, getattr(self, f.name))
            for f in fields(self)
        }
        return type(self)(**kwargs)

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal including self."""
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def is_atom(self) -> bool:
        return not self.children()


# ---------------------------------------------------------------------------
# Holes (partial expressions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Hole(Expr):
    """A symbolic placeholder ``□φi`` with identifier ``ident`` and
    restriction ``kind`` (G = any expression, L = literal, C = column
    header, V = sheet value)."""

    ident: int
    kind: HoleKind = HoleKind.GENERAL

    def __str__(self) -> str:
        return f"□{self.kind.value}{self.ident}"


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lit(Expr):
    """A literal scalar constant: number, currency, text (sheet value),
    bool, or date."""

    value: CellValue

    def __str__(self) -> str:
        return self.value.display()


@dataclass(frozen=True)
class CellRef(Expr):
    """An A1-style reference to a single cell, e.g. ``I2``."""

    a1: str

    def __str__(self) -> str:
        return self.a1.upper()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to a named column; ``table`` is None for the table in
    scope (the paper drops the table argument when the context is clear)."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


# ---------------------------------------------------------------------------
# Row sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GetTable(Expr):
    """All rows of a table (default table when ``table`` is None)."""

    table: str | None = None

    def __str__(self) -> str:
        return f"GetTable({self.table or ''})"


@dataclass(frozen=True)
class GetActive(Expr):
    """All rows containing actively-selected cells — the anonymous view
    created by a previous ``MakeActive`` step."""

    def __str__(self) -> str:
        return "GetActive()"


@dataclass(frozen=True)
class FormatSpec(Expr):
    """A collection of formatting attribute constraints ``{fmt1..fmtn}``."""

    fns: tuple[FormatFn, ...]

    def __str__(self) -> str:
        inner = ", ".join(fn.describe() for fn in self.fns)
        return "{" + inner + "}"


@dataclass(frozen=True)
class GetFormat(Expr):
    """Rows whose cells match the given formatting attributes — the named
    view created by a previous ``Format`` step."""

    _child_fields: ClassVar[tuple[str, ...]] = ("spec",)

    spec: FormatSpec
    table: str | None = None

    def __str__(self) -> str:
        return f"GetFormat({self.table or ''}, {self.spec})"


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrueF(Expr):
    """The trivially-true filter."""

    def __str__(self) -> str:
        return "True"


@dataclass(frozen=True)
class Compare(Expr):
    """``relop(C, v) | relop(v, C) | relop(C, C)`` — at least one operand
    must be a column reference (checked by the type system)."""

    _child_fields: ClassVar[tuple[str, ...]] = ("left", "right")

    op: RelOp
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.op.value}({self.left}, {self.right})"


@dataclass(frozen=True)
class And(Expr):
    _child_fields: ClassVar[tuple[str, ...]] = ("left", "right")

    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"And({self.left}, {self.right})"


@dataclass(frozen=True)
class Or(Expr):
    _child_fields: ClassVar[tuple[str, ...]] = ("left", "right")

    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"Or({self.left}, {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    _child_fields: ClassVar[tuple[str, ...]] = ("operand",)

    operand: Expr

    def __str__(self) -> str:
        return f"Not({self.operand})"


# ---------------------------------------------------------------------------
# Scalar / vector computations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reduce(Expr):
    """``rop(C, rs, f)``: filter the rows of ``source`` with ``condition``
    and fold ``column`` with the reduce function."""

    _child_fields: ClassVar[tuple[str, ...]] = ("column", "source", "condition")

    op: ReduceOp
    column: Expr
    source: Expr
    condition: Expr

    def __str__(self) -> str:
        return f"{self.op.value}({self.column}, {self.source}, {self.condition})"


@dataclass(frozen=True)
class Count(Expr):
    """``Count(rs, f)``: the number of rows satisfying the filter."""

    _child_fields: ClassVar[tuple[str, ...]] = ("source", "condition")

    source: Expr
    condition: Expr

    def __str__(self) -> str:
        return f"Count({self.source}, {self.condition})"


@dataclass(frozen=True)
class BinOp(Expr):
    """``bop(v, v)`` and the vector variants ``bop(V, V) | bop(V, v) |
    bop(v, V)`` — the type checker decides scalar vs. map semantics."""

    _child_fields: ClassVar[tuple[str, ...]] = ("left", "right")

    op: BinaryOp
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.op.value}({self.left}, {self.right})"


@dataclass(frozen=True)
class Lookup(Expr):
    """``Lookup(v, rs, C1, C2)`` (scalar) or ``Lookup(C, rs, C1, C2)``
    (vector / single-column join): find the row of ``source`` whose value in
    key column ``key`` equals ``needle`` and return its value in ``out``."""

    _child_fields: ClassVar[tuple[str, ...]] = ("needle", "source", "key", "out")

    needle: Expr
    source: Expr
    key: Expr
    out: Expr

    def __str__(self) -> str:
        return f"Lookup({self.needle}, {self.source}, {self.key}, {self.out})"


# ---------------------------------------------------------------------------
# Queries and top-level programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectRows(Expr):
    """Entire rows of the row source passing the filter."""

    _child_fields: ClassVar[tuple[str, ...]] = ("source", "condition")

    source: Expr
    condition: Expr

    def __str__(self) -> str:
        return f"SelectRows({self.source}, {self.condition})"


@dataclass(frozen=True)
class SelectCells(Expr):
    """Rows passing the filter, projected onto the given columns."""

    _child_fields: ClassVar[tuple[str, ...]] = ("columns", "source", "condition")

    columns: tuple[Expr, ...]
    source: Expr
    condition: Expr

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"SelectCells([{cols}], {self.source}, {self.condition})"


@dataclass(frozen=True)
class MakeActive(Expr):
    """Highlight the query result (an anonymous view for later steps)."""

    _child_fields: ClassVar[tuple[str, ...]] = ("query",)

    query: Expr

    def __str__(self) -> str:
        return f"MakeActive({self.query})"


@dataclass(frozen=True)
class FormatCells(Expr):
    """Apply formatting attributes to the query result (a named view) —
    ``Format(fe, Q)`` in the paper grammar."""

    _child_fields: ClassVar[tuple[str, ...]] = ("spec", "query")

    spec: FormatSpec
    query: Expr

    def __str__(self) -> str:
        return f"Format({self.spec}, {self.query})"


# ---------------------------------------------------------------------------
# Node-level caches (structural hash, rendered string)
# ---------------------------------------------------------------------------


def _make_cached_hash(gen_hash):
    def __hash__(self):
        h = self.__dict__.get("_h")
        if h is None:
            h = gen_hash(self)
            if _HOTPATH:
                object.__setattr__(self, "_h", h)
        return h

    return __hash__


def _make_cached_str(raw_str):
    def __str__(self):
        s = self.__dict__.get("_s")
        if s is None:
            s = raw_str(self)
            if _HOTPATH:
                object.__setattr__(self, "_s", s)
        return s

    return __str__


def _install_node_caches() -> None:
    """Wrap every concrete node's ``__hash__``/``__str__`` in a once-only
    cache stashed on the (frozen, immutable) instance.

    The cached values are *identical* to the generated/declared ones —
    dataclass structural hash and the node's own rendering — so dict and
    sort behaviour is byte-for-byte unchanged; only the recomputation
    disappears.  When the hot path is disabled nothing is stashed and every
    call recomputes, reproducing the pre-optimisation cost model.
    """
    for cls in Expr.__subclasses__():
        cls.__hash__ = _make_cached_hash(cls.__hash__)
        cls.__str__ = _make_cached_str(cls.__str__)


_install_node_caches()
