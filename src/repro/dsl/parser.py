"""Parser for the DSL's textual form.

Every AST node prints as a readable constructor form (``Sum(totalpay,
GetTable(), Lt(hours, 20))``); this module parses that form back, giving
the DSL a round-trippable concrete syntax.  Scripts saved by the session
layer (see :mod:`repro.session.script`) persist through this syntax.

Grammar (whitespace-insensitive)::

    expr   := call | atom
    call   := NAME '(' [expr (',' expr)*] ')'
    atom   := NUMBER | CURRENCY | quoted string | bare words | HOLE | A1
    HOLE   := '□' KIND? INT

Bare words (``totalpay``, ``capitol hill``) parse as column references when
possible at evaluation time; the parser itself emits ``ColumnRef`` for bare
identifiers and ``Lit`` text for quoted strings.  ``Table.name`` qualifies
a column reference.
"""

from __future__ import annotations

import re

from ..errors import DslTypeError, ReproError
from ..sheet.address import is_cell_reference
from ..sheet.formatting import Color, FormatFn
from ..sheet.values import CellValue, parse_literal
from . import ast


class DslParseError(ReproError):
    """The textual form could not be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)
    |(?P<hole>□[GLCV]?\d+)
    |(?P<string>"[^"]*")
    |(?P<word>[^(),\s]+)
    """,
    re.VERBOSE,
)

_REDUCE_OPS = {op.value: op for op in ast.ReduceOp}
_BIN_OPS = {op.value: op for op in ast.BinaryOp}
_REL_OPS = {op.value: op for op in ast.RelOp}


def _tokenize(text: str) -> list[tuple[str, str]]:
    out = []
    position = 0
    for match in _TOKEN_RE.finditer(text):
        if text[position:match.start()].strip():
            raise DslParseError(
                f"unexpected characters {text[position:match.start()]!r}"
            )
        position = match.end()
        out.append((match.lastgroup, match.group()))
    if text[position:].strip():
        raise DslParseError(f"trailing characters {text[position:]!r}")
    return out


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> tuple[str, str] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self, kind: str | None = None) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise DslParseError("unexpected end of input")
        if kind is not None and token[0] != kind:
            raise DslParseError(f"expected {kind}, got {token[1]!r}")
        self.position += 1
        return token

    # -- grammar -------------------------------------------------------------

    def expr(self) -> ast.Expr:
        kind, text = self.take()
        if kind == "hole":
            return _parse_hole(text)
        if kind == "string":
            return ast.Lit(CellValue.text(text[1:-1]))
        if kind != "word":
            raise DslParseError(f"unexpected token {text!r}")
        nxt = self.peek()
        if nxt is not None and nxt[0] == "lparen":
            return self.call(text)
        return _parse_atom(text)

    def call(self, name: str) -> ast.Expr:
        self.take("lparen")
        args: list[ast.Expr | str] = []
        while True:
            token = self.peek()
            if token is None:
                raise DslParseError(f"unterminated call {name!r}")
            if token[0] == "rparen":
                self.take()
                break
            if token[0] == "comma":
                self.take()
                continue
            args.append(self.expr())
        return _build_call(name, args)


def _parse_hole(text: str) -> ast.Hole:
    body = text[1:]
    if body[0].isdigit():
        return ast.Hole(int(body))
    return ast.Hole(int(body[1:]), ast.HoleKind(body[0]))


def _parse_atom(text: str) -> ast.Expr:
    # the bare word True is the trivial filter, not a boolean literal (the
    # DSL's printer only ever emits it in filter position)
    if text in ("True", "true"):
        return ast.TrueF()
    literal = parse_literal(text)
    if literal is not None:
        return ast.Lit(literal)
    if is_cell_reference(text) and text[0].isupper():
        return ast.CellRef(text)
    if "." in text:
        table, _, column = text.partition(".")
        return ast.ColumnRef(column, table)
    # bare identifier: a column reference (multi-word text values are
    # always quoted by print_expr)
    return ast.ColumnRef(text)


def _build_call(name: str, args: list) -> ast.Expr:
    try:
        return _dispatch_call(name, args)
    except (IndexError, TypeError) as exc:
        raise DslParseError(f"bad arguments for {name}: {exc}") from exc


def _dispatch_call(name: str, args: list) -> ast.Expr:
    if name in _REDUCE_OPS:
        return ast.Reduce(_REDUCE_OPS[name], args[0], args[1], args[2])
    if name in _BIN_OPS:
        return ast.BinOp(_BIN_OPS[name], args[0], args[1])
    if name in _REL_OPS:
        return ast.Compare(_REL_OPS[name], args[0], args[1])
    if name == "And":
        return ast.And(args[0], args[1])
    if name == "Or":
        return ast.Or(args[0], args[1])
    if name == "Not":
        return ast.Not(args[0])
    if name == "Count":
        return ast.Count(args[0], args[1])
    if name == "Lookup":
        return ast.Lookup(args[0], args[1], args[2], args[3])
    if name == "GetTable":
        if not args:
            return ast.GetTable()
        ref = args[0]
        return ast.GetTable(ref.name if isinstance(ref, ast.ColumnRef) else str(ref))
    if name == "GetActive":
        return ast.GetActive()
    if name == "SelectRows":
        return ast.SelectRows(args[0], args[1])
    if name == "SelectCells":
        *columns, source, condition = args
        return ast.SelectCells(tuple(columns), source, condition)
    if name == "MakeActive":
        return ast.MakeActive(args[0])
    if name in ("Color", "Bold", "Italics", "Underline", "FontSize"):
        return _format_fn_spec(name, args)
    if name == "Spec":
        fns: list[FormatFn] = []
        for arg in args:
            if not isinstance(arg, ast.FormatSpec):
                raise DslParseError("Spec takes format functions")
            fns.extend(arg.fns)
        return ast.FormatSpec(tuple(fns))
    if name == "Format":
        spec, query = args
        if not isinstance(spec, ast.FormatSpec):
            raise DslParseError("Format needs a Spec first argument")
        return ast.FormatCells(spec, query)
    if name == "GetFormat":
        spec = args[0]
        if not isinstance(spec, ast.FormatSpec):
            raise DslParseError("GetFormat needs a Spec first argument")
        table = None
        if len(args) > 1:
            ref = args[1]
            table = ref.name if isinstance(ref, ast.ColumnRef) else str(ref)
        return ast.GetFormat(spec, table)
    raise DslParseError(f"unknown constructor {name!r}")


def _format_fn_spec(name: str, args: list) -> ast.FormatSpec:
    """A single formatting function, represented as a one-element spec so
    it can flow through the expression-only parser plumbing."""
    (arg,) = args
    if name == "Color":
        if not isinstance(arg, ast.ColumnRef):
            raise DslParseError("Color takes a color name")
        return ast.FormatSpec((FormatFn.color(Color.from_name(arg.name)),))
    if name == "FontSize":
        if not isinstance(arg, ast.Lit):
            raise DslParseError("FontSize takes a number")
        return ast.FormatSpec((FormatFn.font_size(int(arg.value.payload)),))
    # "true" parses as the TrueF filter; "false" as a boolean literal
    truth = isinstance(arg, ast.TrueF) or (
        isinstance(arg, ast.Lit) and bool(arg.value.payload)
    )
    maker = {
        "Bold": FormatFn.bold,
        "Italics": FormatFn.italics,
        "Underline": FormatFn.underline,
    }[name]
    return ast.FormatSpec((maker(truth),))


def parse_expr(text: str) -> ast.Expr:
    """Parse the textual form of a DSL expression.

    Round-trips with ``str(expr)`` for the value/query sublanguage (the
    formatting sublanguage embeds :class:`FormatFn` records and is excluded
    — scripts persist those through the session layer instead).

    Caveat: multi-word text values print unquoted (``capitol hill``) and
    re-parse as two tokens; :func:`normalize_multiword_lits` on the printing
    side quotes them, so use :func:`print_expr` for round-trip output.
    """
    tokens = _tokenize(text)
    parser = _Parser(tokens)
    result = parser.expr()
    if parser.peek() is not None:
        raise DslParseError(f"trailing tokens after expression in {text!r}")
    return result


def print_expr(expr: ast.Expr) -> str:
    """Print an expression in round-trippable form (text literals quoted)."""
    if isinstance(expr, ast.Lit):
        if expr.value.type.value == "text":
            return f'"{expr.value.payload}"'
        return expr.value.display().replace(",", "")
    if isinstance(expr, ast.Hole):
        return str(expr)
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.CellRef):
        return expr.a1.upper()
    if isinstance(expr, ast.TrueF):
        return "True"
    if isinstance(expr, ast.GetTable):
        return f"GetTable({expr.table or ''})"
    if isinstance(expr, ast.GetActive):
        return "GetActive()"
    if isinstance(expr, ast.Reduce):
        inner = ", ".join(
            print_expr(e) for e in (expr.column, expr.source, expr.condition)
        )
        return f"{expr.op.value}({inner})"
    if isinstance(expr, ast.Count):
        return (
            f"Count({print_expr(expr.source)}, {print_expr(expr.condition)})"
        )
    if isinstance(expr, ast.BinOp):
        return (
            f"{expr.op.value}({print_expr(expr.left)}, "
            f"{print_expr(expr.right)})"
        )
    if isinstance(expr, ast.Compare):
        return (
            f"{expr.op.value}({print_expr(expr.left)}, "
            f"{print_expr(expr.right)})"
        )
    if isinstance(expr, (ast.And, ast.Or)):
        name = "And" if isinstance(expr, ast.And) else "Or"
        return f"{name}({print_expr(expr.left)}, {print_expr(expr.right)})"
    if isinstance(expr, ast.Not):
        return f"Not({print_expr(expr.operand)})"
    if isinstance(expr, ast.Lookup):
        inner = ", ".join(
            print_expr(e) for e in (expr.needle, expr.source, expr.key, expr.out)
        )
        return f"Lookup({inner})"
    if isinstance(expr, ast.SelectRows):
        return (
            f"SelectRows({print_expr(expr.source)}, "
            f"{print_expr(expr.condition)})"
        )
    if isinstance(expr, ast.SelectCells):
        parts = [print_expr(c) for c in expr.columns]
        parts += [print_expr(expr.source), print_expr(expr.condition)]
        return f"SelectCells({', '.join(parts)})"
    if isinstance(expr, ast.MakeActive):
        return f"MakeActive({print_expr(expr.query)})"
    if isinstance(expr, ast.FormatSpec):
        inner = ", ".join(_print_format_fn(fn) for fn in expr.fns)
        return f"Spec({inner})"
    if isinstance(expr, ast.FormatCells):
        return (
            f"Format({print_expr(expr.spec)}, {print_expr(expr.query)})"
        )
    if isinstance(expr, ast.GetFormat):
        if expr.table:
            return f"GetFormat({print_expr(expr.spec)}, {expr.table})"
        return f"GetFormat({print_expr(expr.spec)})"
    raise DslTypeError(f"cannot print {type(expr).__name__} for round-trip")


def _print_format_fn(fn: FormatFn) -> str:
    if fn.attribute == "color":
        return f"Color({fn.value.value})"
    if fn.attribute == "font_size":
        return f"FontSize({fn.value})"
    name = {"bold": "Bold", "italics": "Italics", "underline": "Underline"}[
        fn.attribute
    ]
    return f"{name}({'true' if fn.value else 'false'})"
