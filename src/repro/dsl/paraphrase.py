"""Paraphrase DSL programs into structured, unambiguous English (paper §4).

"Translation into structured English is supported since many end users
struggle with understanding Excel formulas."  The running example renders as
``sum up the totalpay where title = barista and location = capitol hill``.
"""

from __future__ import annotations

from ..errors import EvaluationError
from . import ast

_REDUCE_PHRASE = {
    ast.ReduceOp.SUM: "sum up",
    ast.ReduceOp.AVG: "average",
    ast.ReduceOp.MIN: "take the minimum of",
    ast.ReduceOp.MAX: "take the maximum of",
}
_BINOP_PHRASE = {
    ast.BinaryOp.ADD: "plus",
    ast.BinaryOp.SUB: "minus",
    ast.BinaryOp.MULT: "times",
    ast.BinaryOp.DIV: "divided by",
}
_RELOP_PHRASE = {
    ast.RelOp.EQ: "=",
    ast.RelOp.LT: "<",
    ast.RelOp.GT: ">",
}


def paraphrase(program: ast.Expr) -> str:
    """English rendering of a complete program.

    Shown in the UI when the user hovers over the Excel formula, so it must
    read naturally but stay unambiguous.
    """
    if isinstance(program, ast.MakeActive):
        return f"select {_query(program.query)}"
    if isinstance(program, ast.FormatCells):
        fmt = " and ".join(fn.describe() for fn in program.spec.fns)
        return f"apply {fmt} to {_query(program.query)}"
    return _value(program)


def _query(q: ast.Expr) -> str:
    if isinstance(q, ast.SelectRows):
        head = f"the rows{_of_source(q.source)}"
        return head + _where(q.condition)
    if isinstance(q, ast.SelectCells):
        cols = " and ".join(_value(c) for c in q.columns)
        head = f"the {cols} cells{_of_source(q.source)}"
        return head + _where(q.condition)
    raise EvaluationError(f"not a query: {q}")


def _of_source(rs: ast.Expr) -> str:
    if isinstance(rs, ast.GetTable):
        return f" of {rs.table}" if rs.table else ""
    if isinstance(rs, ast.GetActive):
        return " of the current selection"
    if isinstance(rs, ast.GetFormat):
        attrs = " and ".join(fn.describe() for fn in rs.spec.fns)
        where = f" of {rs.table}" if rs.table else ""
        return f"{where} with {attrs}"
    if isinstance(rs, ast.Hole):
        return f" of {rs}"
    raise EvaluationError(f"not a row source: {rs}")


def _where(f: ast.Expr) -> str:
    if isinstance(f, ast.TrueF):
        return ""
    return f" where {_filter(f)}"


def _filter(f: ast.Expr) -> str:
    if isinstance(f, ast.TrueF):
        return "always"
    if isinstance(f, ast.And):
        return f"{_filter(f.left)} and {_filter(f.right)}"
    if isinstance(f, ast.Or):
        return f"{_filter(f.left)} or {_filter(f.right)}"
    if isinstance(f, ast.Not):
        inner = f.operand
        if isinstance(inner, ast.Compare) and inner.op is ast.RelOp.EQ:
            return f"{_value(inner.left)} ≠ {_value(inner.right)}"
        return f"not ({_filter(inner)})"
    if isinstance(f, ast.Compare):
        return f"{_value(f.left)} {_RELOP_PHRASE[f.op]} {_value(f.right)}"
    if isinstance(f, ast.Hole):
        return str(f)
    raise EvaluationError(f"not a filter: {f}")


def _value(e: ast.Expr) -> str:
    if isinstance(e, ast.Lit):
        return e.value.display()
    if isinstance(e, ast.CellRef):
        return e.a1.upper()
    if isinstance(e, ast.ColumnRef):
        return f"{e.table} {e.name}" if e.table else e.name
    if isinstance(e, ast.Reduce):
        head = f"{_REDUCE_PHRASE[e.op]} the {_value(e.column)}"
        return head + _source_suffix(e.source) + _where(e.condition)
    if isinstance(e, ast.Count):
        return f"count the rows{_source_suffix(e.source)}" + _where(e.condition)
    if isinstance(e, ast.BinOp):
        return f"{_value(e.left)} {_BINOP_PHRASE[e.op]} {_value(e.right)}"
    if isinstance(e, ast.Lookup):
        return (
            f"look up {_value(e.needle)} in {_value(e.key)}"
            f"{_source_suffix(e.source)} and take {_value(e.out)}"
        )
    if isinstance(e, ast.Hole):
        return str(e)
    raise EvaluationError(f"cannot paraphrase {e}")


def _source_suffix(rs: ast.Expr) -> str:
    text = _of_source(rs)
    return text
