"""The DSL interpreter.

Executes complete (hole-free) programs against a :class:`Workbook`,
producing values and the spreadsheet side effects of paper §2/§4:

* scalar / vector programs place their result at the active cursor,
* ``MakeActive`` replaces the active selection (anonymous views),
* ``Format`` mutates cell formatting (named views).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EvaluationError
from ..sheet.address import CellAddress
from ..sheet.table import Table
from ..sheet.values import CellValue, ValueType
from ..sheet.workbook import Workbook
from . import ast
from .holes import is_complete
from .types import TypeChecker, _unit_result


@dataclass
class ProgramResult:
    """What executing one program did.

    ``kind`` is one of ``"scalar"``, ``"vector"``, ``"selection"``,
    ``"format"``.  ``addresses`` lists every cell written, selected, or
    reformatted, so callers (and tests) can observe the side effects.
    """

    kind: str
    value: CellValue | None = None
    values: list[CellValue] = field(default_factory=list)
    table: str | None = None
    rows: list[int] = field(default_factory=list)
    addresses: list[CellAddress] = field(default_factory=list)

    def display(self) -> str:
        if self.kind == "scalar":
            return self.value.display()
        if self.kind == "vector":
            return "[" + ", ".join(v.display() for v in self.values) + "]"
        if self.kind == "selection":
            return f"selected {len(self.addresses)} cells"
        return f"formatted {len(self.addresses)} cells"


class Evaluator:
    """Interprets DSL programs over a workbook."""

    def __init__(self, workbook: Workbook) -> None:
        self.workbook = workbook
        self.checker = TypeChecker(workbook)

    # -- entry point -------------------------------------------------------

    def run(self, program: ast.Expr, place: bool = True) -> ProgramResult:
        """Execute a complete program.  When ``place`` is true and a cursor
        is set, scalar/vector results are written into the sheet."""
        if not is_complete(program):
            raise EvaluationError(f"program has unfilled holes: {program}")
        if not self.checker.valid(program):
            raise EvaluationError(f"program is ill-typed: {program}")
        if isinstance(program, ast.MakeActive):
            return self._run_make_active(program)
        if isinstance(program, ast.FormatCells):
            return self._run_format(program)
        return self._run_value(program, place)

    # -- value programs ----------------------------------------------------

    def _run_value(self, program: ast.Expr, place: bool) -> ProgramResult:
        scope = self._default_key()
        kind = self.checker.type_of(program).kind
        if kind.value in ("column", "vector"):
            values = self.eval_vector(program, scope)
            result = ProgramResult(kind="vector", values=values)
            if place and self.workbook.has_cursor:
                result.addresses = self.workbook.place_vector(values)
            return result
        value = self.eval_scalar(program, scope)
        result = ProgramResult(kind="scalar", value=value)
        if place and self.workbook.has_cursor:
            result.addresses = [self.workbook.place_scalar(value)]
        return result

    def _run_make_active(self, program: ast.MakeActive) -> ProgramResult:
        table, rows, cols = self.eval_query(program.query)
        cells = [(i, j) for i in rows for j in cols]
        self.workbook.select_cells(table, cells)
        addresses = [table.address_of(i, j) for i, j in cells]
        return ProgramResult(
            kind="selection", table=table.name, rows=rows, addresses=addresses
        )

    def _run_format(self, program: ast.FormatCells) -> ProgramResult:
        table, rows, cols = self.eval_query(program.query)
        addresses = []
        for i in rows:
            for j in cols:
                table.cell(i, j).apply_formats(program.spec.fns)
                addresses.append(table.address_of(i, j))
        return ProgramResult(
            kind="format", table=table.name, rows=rows, addresses=addresses
        )

    # -- queries -----------------------------------------------------------

    def eval_query(self, q: ast.Expr) -> tuple[Table, list[int], list[int]]:
        """Evaluate a query to (table, row indices, column indices)."""
        if isinstance(q, ast.SelectRows):
            table, rows = self.eval_row_source(q.source)
            rows = self._filter_rows(q.condition, table, rows)
            return table, rows, list(range(table.n_cols))
        if isinstance(q, ast.SelectCells):
            table, rows = self.eval_row_source(q.source)
            rows = self._filter_rows(q.condition, table, rows)
            cols = [table.column_index(_column_name(c)) for c in q.columns]
            return table, rows, cols
        raise EvaluationError(f"not a query: {q}")

    def eval_row_source(self, rs: ast.Expr) -> tuple[Table, list[int]]:
        if isinstance(rs, ast.GetTable):
            table = self._table(rs.table)
            return table, list(range(table.n_rows))
        if isinstance(rs, ast.GetActive):
            # The selection may live in any table; prefer the table that
            # actually contains selected cells, falling back to the default.
            for table in self.workbook.tables:
                rows = self.workbook.selected_row_indices(table)
                if rows:
                    return table, rows
            return self.workbook.default_table, []
        if isinstance(rs, ast.GetFormat):
            table = self._table(rs.table)
            return table, table.rows_matching_format(rs.spec.fns)
        raise EvaluationError(f"not a row source: {rs}")

    def _filter_rows(
        self, condition: ast.Expr, table: Table, rows: list[int]
    ) -> list[int]:
        return [i for i in rows if self.eval_filter(condition, table, i)]

    # -- filters -------------------------------------------------------------

    def eval_filter(self, f: ast.Expr, table: Table, row: int) -> bool:
        if isinstance(f, ast.TrueF):
            return True
        if isinstance(f, ast.And):
            return self.eval_filter(f.left, table, row) and self.eval_filter(
                f.right, table, row
            )
        if isinstance(f, ast.Or):
            return self.eval_filter(f.left, table, row) or self.eval_filter(
                f.right, table, row
            )
        if isinstance(f, ast.Not):
            return not self.eval_filter(f.operand, table, row)
        if isinstance(f, ast.Compare):
            left = self._operand(f.left, table, row)
            right = self._operand(f.right, table, row)
            if left.is_empty or right.is_empty:
                return False
            if f.op is ast.RelOp.EQ:
                return left.equals(right)
            if f.op is ast.RelOp.LT:
                return left.less_than(right)
            return right.less_than(left)
        raise EvaluationError(f"not a filter: {f}")

    def _operand(self, e: ast.Expr, table: Table, row: int) -> CellValue:
        """A comparison operand: a column yields the row's cell, anything
        else is a scalar evaluated once in the *default* scope (nested
        reductions like "larger than the average" land here)."""
        if isinstance(e, ast.ColumnRef):
            j = table.column_index(e.name)
            return table.cell(row, j).value
        return self.eval_scalar(e, self._default_key())

    # -- scalars ----------------------------------------------------------------

    def eval_scalar(self, e: ast.Expr, scope: str) -> CellValue:
        if isinstance(e, ast.Lit):
            return e.value
        if isinstance(e, ast.CellRef):
            value = self.workbook.get_value(e.a1)
            if value.is_empty:
                raise EvaluationError(f"cell {e.a1} is empty")
            return value
        if isinstance(e, ast.Reduce):
            return self._eval_reduce(e)
        if isinstance(e, ast.Count):
            table, rows = self.eval_row_source(e.source)
            matched = self._filter_rows(e.condition, table, rows)
            return CellValue.number(len(matched))
        if isinstance(e, ast.BinOp):
            return self._eval_scalar_binop(e, scope)
        if isinstance(e, ast.Lookup):
            needle = self.eval_scalar(e.needle, scope)
            return self._lookup_one(e, needle)
        raise EvaluationError(f"not a scalar expression: {e}")

    def _eval_reduce(self, e: ast.Reduce) -> CellValue:
        table, rows = self.eval_row_source(e.source)
        rows = self._filter_rows(e.condition, table, rows)
        column = table.column(_column_name(e.column))
        values = [
            v
            for v in table.column_values(column.name, rows)
            if not v.is_empty
        ]
        if e.op is ast.ReduceOp.SUM:
            total = sum(float(v.payload) for v in values)
            return _make_numeric(total, column.dtype)
        if not values:
            raise EvaluationError(
                f"{e.op.value} over no rows (filter matched nothing)"
            )
        numbers = [float(v.payload) for v in values]
        if e.op is ast.ReduceOp.AVG:
            return _make_numeric(sum(numbers) / len(numbers), column.dtype)
        if e.op is ast.ReduceOp.MIN:
            return _make_numeric(min(numbers), column.dtype)
        return _make_numeric(max(numbers), column.dtype)

    def _eval_scalar_binop(self, e: ast.BinOp, scope: str) -> CellValue:
        left = self.eval_scalar(e.left, scope)
        right = self.eval_scalar(e.right, scope)
        elem = _unit_result(e.op, left.type, right.type)
        return _apply_binop(e.op, left, right, elem)

    def _lookup_one(self, e: ast.Lookup, needle: CellValue) -> CellValue:
        table, rows = self.eval_row_source(e.source)
        key = table.column(_column_name(e.key)).name
        out = table.column(_column_name(e.out)).name
        key_values = table.column_values(key, rows)
        out_values = table.column_values(out, rows)
        for k, v in zip(key_values, out_values):
            if not k.is_empty and k.equals(needle):
                return v
        raise EvaluationError(
            f"lookup failed: no row with {key} = {needle.display()}"
        )

    # -- vectors --------------------------------------------------------------

    def eval_vector(self, e: ast.Expr, scope: str) -> list[CellValue]:
        if isinstance(e, ast.ColumnRef):
            table = self._table(e.table) if e.table else self._table(scope)
            return table.column_values(e.name)
        if isinstance(e, ast.Lookup):
            needles = self.eval_vector(e.needle, scope)
            return [self._lookup_one(e, n) for n in needles]
        if isinstance(e, ast.BinOp):
            return self._eval_vector_binop(e, scope)
        raise EvaluationError(f"not a vector expression: {e}")

    def _eval_vector_binop(self, e: ast.BinOp, scope: str) -> list[CellValue]:
        lt = self.checker.type_of(e.left)
        rt = self.checker.type_of(e.right)
        left_is_vec = lt.kind.value in ("column", "vector")
        right_is_vec = rt.kind.value in ("column", "vector")
        elem = _unit_result(e.op, lt.elem, rt.elem)
        if left_is_vec and right_is_vec:
            lv = self.eval_vector(e.left, scope)
            rv = self.eval_vector(e.right, scope)
            if len(lv) != len(rv):
                raise EvaluationError("vector length mismatch")
            return [_apply_binop(e.op, a, b, elem) for a, b in zip(lv, rv)]
        if left_is_vec:
            lv = self.eval_vector(e.left, scope)
            r = self.eval_scalar(e.right, scope)
            return [_apply_binop(e.op, a, r, elem) for a in lv]
        l = self.eval_scalar(e.left, scope)
        rv = self.eval_vector(e.right, scope)
        return [_apply_binop(e.op, l, b, elem) for b in rv]

    # -- misc ------------------------------------------------------------------

    def _table(self, name: str | None) -> Table:
        if name is None:
            return self.workbook.default_table
        return self.workbook.table(name)

    def _default_key(self) -> str:
        return self.workbook.default_table.name.strip().lower()


def _column_name(e: ast.Expr) -> str:
    if not isinstance(e, ast.ColumnRef):
        raise EvaluationError(f"expected a column reference, got {e}")
    return e.name


def _make_numeric(x: float, dtype: ValueType) -> CellValue:
    if x == int(x):
        x = int(x)
    if dtype is ValueType.CURRENCY:
        return CellValue.currency(x)
    return CellValue.number(x)


def _apply_binop(
    op: ast.BinaryOp, a: CellValue, b: CellValue, elem: ValueType | None
) -> CellValue:
    if a.is_empty or b.is_empty:
        raise EvaluationError("arithmetic on an empty cell")
    x, y = float(a.payload), float(b.payload)
    if op is ast.BinaryOp.ADD:
        z = x + y
    elif op is ast.BinaryOp.SUB:
        z = x - y
    elif op is ast.BinaryOp.MULT:
        z = x * y
    else:
        if y == 0:
            raise EvaluationError("division by zero")
        z = x / y
    return _make_numeric(z, elem or ValueType.NUMBER)
