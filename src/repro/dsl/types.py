"""The DSL type system — the ``Valid`` function of paper §2.

The paper: "The DSL supports a strict, but intuitive, type system ...  For
example, multiplication is well defined on two numbers, or a number and a
currency, but not on two currency values.  The vector operations are defined
only on vectors of the same size.  Each reference to a column name should be
consistent with the table in scope.  We encapsulate these constraints using
the function Valid."

Type checking is *contextual*: a row source fixes the table in scope for the
column references inside its filter, reduce, and select expressions.  Partial
expressions type-check with holes treated as wildcards, which is exactly what
the synthesis algorithm needs when it validates candidate substitutions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DslTypeError, UnknownColumnError, UnknownTableError
from ..sheet.columnar import columnar_enabled
from ..sheet.values import ValueType
from ..sheet.workbook import Workbook
from . import ast


class Kind(enum.Enum):
    SCALAR = "scalar"
    COLUMN = "column"
    VECTOR = "vector"
    FILTER = "filter"
    ROWSET = "rowset"
    QUERY = "query"
    FORMAT = "format"
    PROGRAM = "program"
    ANY = "any"  # the type of a hole


@dataclass(frozen=True)
class DslType:
    """A DSL type: a kind, an element type for data-bearing kinds, and the
    table a rowset/query/column/vector is anchored to (used both for column
    scoping and for the vectors-same-size check)."""

    kind: Kind
    elem: ValueType | None = None
    table: str | None = None

    def __str__(self) -> str:
        parts = [self.kind.value]
        if self.elem is not None:
            parts.append(self.elem.value)
        if self.table is not None:
            parts.append(f"@{self.table}")
        return ":".join(parts)


ANY = DslType(Kind.ANY)

_PROGRAM_KINDS = (Kind.PROGRAM, Kind.SCALAR, Kind.VECTOR, Kind.COLUMN, Kind.ANY)


class TypeChecker:
    """Typing judgments for DSL expressions over a concrete workbook."""

    def __init__(self, workbook: Workbook, content_check: bool = False) -> None:
        """``content_check=True`` additionally rejects text equalities whose
        value does not occur in the compared column — the translator's
        context-driven pruning.  Hand-written programs (a sum over a value
        that happens to match nothing is a legitimate zero) keep the purely
        type-level ``Valid``."""
        self.workbook = workbook
        self.content_check = content_check
        self._cache: dict[tuple[ast.Expr, str | None], DslType] = {}
        self._values_cache: dict[str, dict[str, list[str]]] = {}
        # Hot-path memos (active only while ast.hotpath_enabled()): verdict
        # caches that spare the synthesis closure both the repeated tree
        # walks and the repeated DslTypeError raises for candidates it has
        # already judged.  Keys are expressions — structurally hashed, so
        # with interning every probe is an O(1) identity-backed dict hit.
        self._valid_cache: dict[ast.Expr, bool] = {}
        self._fail_cache: dict[tuple[ast.Expr, str | None], str] = {}
        self._program_cache: dict[ast.Expr, bool] = {}

    # -- public API --------------------------------------------------------

    def valid(self, expr: ast.Expr) -> bool:
        """The paper's ``Valid(e)``: True iff ``e`` is well-typed (holes are
        permitted and act as wildcards)."""
        if ast.hotpath_enabled():
            cached = self._valid_cache.get(expr)
            if cached is not None:
                return cached
            try:
                self.type_of(expr)
                ok = True
            except DslTypeError:
                ok = False
            self._valid_cache[expr] = ok
            return ok
        try:
            self.type_of(expr)
            return True
        except DslTypeError:
            return False

    def valid_program(self, expr: ast.Expr) -> bool:
        """True iff ``e`` is a complete (hole-free), well-typed program."""
        if not ast.hotpath_enabled():
            return self._compute_valid_program(expr)
        cached = self._program_cache.get(expr)
        if cached is None:
            cached = self._compute_valid_program(expr)
            self._program_cache[expr] = cached
        return cached

    def _compute_valid_program(self, expr: ast.Expr) -> bool:
        if any(isinstance(node, ast.Hole) for node in expr.walk()):
            return False
        try:
            t = self.type_of(expr)
        except DslTypeError:
            return False
        return t.kind in _PROGRAM_KINDS

    def type_of(self, expr: ast.Expr, scope: str | None = None) -> DslType:
        """The type of ``expr`` with ``scope`` as the table in scope
        (defaults to the workbook's primary table).  Raises
        :class:`DslTypeError` on ill-typed expressions."""
        key = (expr, scope)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if ast.hotpath_enabled():
            message = self._fail_cache.get(key)
            if message is not None:
                raise DslTypeError(message)
            try:
                result = self._compute(expr, scope)
            except DslTypeError as exc:
                self._fail_cache[key] = str(exc)
                raise
        else:
            result = self._compute(expr, scope)
        self._cache[key] = result
        return result

    # -- dispatch ----------------------------------------------------------

    def _compute(self, e: ast.Expr, scope: str | None) -> DslType:
        if isinstance(e, ast.Hole):
            return ANY
        if isinstance(e, ast.Lit):
            if e.value.is_empty:
                raise DslTypeError("empty literal")
            return DslType(Kind.SCALAR, e.value.type)
        if isinstance(e, ast.CellRef):
            return self._cell_ref(e)
        if isinstance(e, ast.ColumnRef):
            return self._column_ref(e, scope)
        if isinstance(e, (ast.GetTable, ast.GetActive, ast.GetFormat)):
            return self._row_source(e)
        if isinstance(e, ast.TrueF):
            return DslType(Kind.FILTER)
        if isinstance(e, ast.Compare):
            return self._compare(e, scope)
        if isinstance(e, (ast.And, ast.Or)):
            self._expect(e.left, Kind.FILTER, scope)
            self._expect(e.right, Kind.FILTER, scope)
            return DslType(Kind.FILTER)
        if isinstance(e, ast.Not):
            self._expect(e.operand, Kind.FILTER, scope)
            return DslType(Kind.FILTER)
        if isinstance(e, ast.Reduce):
            return self._reduce(e)
        if isinstance(e, ast.Count):
            return self._count(e)
        if isinstance(e, ast.BinOp):
            return self._binop(e, scope)
        if isinstance(e, ast.Lookup):
            return self._lookup(e, scope)
        if isinstance(e, ast.SelectRows):
            return self._select_rows(e)
        if isinstance(e, ast.SelectCells):
            return self._select_cells(e)
        if isinstance(e, ast.FormatSpec):
            if not e.fns:
                raise DslTypeError("format spec must constrain something")
            return DslType(Kind.FORMAT)
        if isinstance(e, ast.MakeActive):
            self._expect(e.query, Kind.QUERY, scope)
            return DslType(Kind.PROGRAM)
        if isinstance(e, ast.FormatCells):
            self._expect(e.spec, Kind.FORMAT, scope)
            self._expect(e.query, Kind.QUERY, scope)
            return DslType(Kind.PROGRAM)
        raise DslTypeError(f"unknown expression kind: {type(e).__name__}")

    # -- helpers -----------------------------------------------------------

    def _expect(self, e: ast.Expr, kind: Kind, scope: str | None) -> DslType:
        t = self.type_of(e, scope)
        if t.kind is Kind.ANY or t.kind is kind:
            return t
        raise DslTypeError(f"expected {kind.value}, got {t} in {e}")

    def _default_table_key(self) -> str:
        return self.workbook.default_table.name.strip().lower()

    def _resolve_scope(self, scope: str | None) -> str:
        return scope if scope is not None else self._default_table_key()

    def _cell_ref(self, e: ast.CellRef) -> DslType:
        value = self.workbook.get_value(e.a1)
        if value.is_empty:
            # Cell refs to not-yet-filled cells default to NUMBER, the
            # common case for step-programming arithmetic over results.
            return DslType(Kind.SCALAR, ValueType.NUMBER)
        return DslType(Kind.SCALAR, value.type)

    def _column_ref(self, e: ast.ColumnRef, scope: str | None) -> DslType:
        table_key = (
            e.table.strip().lower() if e.table else self._resolve_scope(scope)
        )
        try:
            table = self.workbook.table(table_key)
            column = table.column(e.name)
        except (UnknownTableError, UnknownColumnError) as exc:
            raise DslTypeError(str(exc)) from exc
        return DslType(Kind.COLUMN, column.dtype, table_key)

    def _row_source(self, e: ast.Expr) -> DslType:
        if isinstance(e, ast.GetTable):
            key = (
                e.table.strip().lower() if e.table else self._default_table_key()
            )
            if not self.workbook.has_table(key):
                raise DslTypeError(f"unknown table {key!r}")
            return DslType(Kind.ROWSET, table=key)
        if isinstance(e, ast.GetActive):
            return DslType(Kind.ROWSET, table=self._default_table_key())
        assert isinstance(e, ast.GetFormat)
        self._expect(e.spec, Kind.FORMAT, None)
        key = e.table.strip().lower() if e.table else self._default_table_key()
        if not self.workbook.has_table(key):
            raise DslTypeError(f"unknown table {key!r}")
        return DslType(Kind.ROWSET, table=key)

    def _source_table(self, source: ast.Expr) -> str | None:
        """Table key of a row source; None when the source is still a hole."""
        t = self._expect(source, Kind.ROWSET, None)
        return t.table

    # -- comparisons ---------------------------------------------------------

    def _compare(self, e: ast.Compare, scope: str | None) -> DslType:
        lt = self.type_of(e.left, scope)
        rt = self.type_of(e.right, scope)
        in_scope = self._resolve_scope(scope)
        for t in (lt, rt):
            if t.kind not in (Kind.SCALAR, Kind.COLUMN, Kind.ANY):
                raise DslTypeError(f"filter operand has kind {t.kind.value}")
            if t.kind is Kind.COLUMN and t.table != in_scope:
                # "Each reference to a column name should be consistent with
                # the table in scope" — a filter over one table cannot test
                # another table's column.
                raise DslTypeError(
                    f"column from table {t.table!r} in a filter over "
                    f"{in_scope!r}"
                )
        if Kind.ANY not in (lt.kind, rt.kind):
            if Kind.COLUMN not in (lt.kind, rt.kind):
                raise DslTypeError("a comparison needs at least one column")
            if (
                lt.kind is Kind.COLUMN
                and rt.kind is Kind.COLUMN
                and isinstance(e.left, ast.ColumnRef)
                and isinstance(e.right, ast.ColumnRef)
                and lt.table == rt.table
                and e.left.name.strip().lower() == e.right.name.strip().lower()
            ):
                raise DslTypeError("comparison of a column with itself")
            self._check_comparable(e.op, lt, rt)
            if self.content_check:
                self._check_value_in_column(e)
        return DslType(Kind.FILTER)

    def _check_value_in_column(self, e: ast.Compare) -> None:
        """Content check: an equality between a text column and a text
        literal is only meaningful when the value actually occurs in that
        column.  This is the Valid-level face of the paper's context-driven
        value resolution ("the columns that contain the value ... must be
        identified"); it prunes spurious pairings like Eq(title, "capitol
        hill") that are type-correct but contradict the sheet."""
        if e.op is not ast.RelOp.EQ:
            return
        pairs = [(e.left, e.right), (e.right, e.left)]
        for column, literal in pairs:
            if not (
                isinstance(column, ast.ColumnRef)
                and isinstance(literal, ast.Lit)
                and literal.value.type is ValueType.TEXT
            ):
                continue
            ct = self.type_of(column)
            if ct.elem is not ValueType.TEXT or ct.table is None:
                continue
            table = self.workbook.table(ct.table)
            needle = str(literal.value.payload).strip().lower()
            column_name = table.column(column.name).name
            if columnar_enabled():
                # One pool probe + one distinct-id set test against the
                # interned columnar index — the row walk below scans the
                # whole table on the first probe per table, which dominates
                # first-translate time on large sheets.
                occurs_here = self.workbook.columnar_index().occurs_in(
                    ct.table, needle, column_name
                )
            else:
                occurs = self._values_cache.get(ct.table)
                if occurs is None:
                    occurs = table.distinct_text_values()
                    self._values_cache[ct.table] = occurs
                occurs_here = column_name in occurs.get(needle, ())
            if not occurs_here:
                raise DslTypeError(
                    f"value {needle!r} does not occur in column "
                    f"{column_name!r}"
                )

    def _check_comparable(self, op: ast.RelOp, lt: DslType, rt: DslType) -> None:
        a, b = lt.elem, rt.elem
        if a is None or b is None:
            return
        if op is ast.RelOp.EQ:
            # Strict same-type equality; this is what lets the type system
            # disambiguate $10 vs 10 against a currency column (paper §3.2).
            if a is not b:
                raise DslTypeError(f"cannot Eq {a.value} with {b.value}")
            return
        if a is not b or not a.is_orderable:
            raise DslTypeError(f"cannot order {a.value} vs {b.value}")

    # -- reductions ----------------------------------------------------------

    def _reduce(self, e: ast.Reduce) -> DslType:
        table = self._source_table(e.source)
        ct = self._expect(e.column, Kind.COLUMN, table)
        if ct.kind is not Kind.ANY and not (ct.elem and ct.elem.is_numeric):
            raise DslTypeError(
                f"{e.op.value} needs a numeric column, got {ct.elem}"
            )
        if ct.kind is Kind.COLUMN and table is not None and ct.table != table:
            raise DslTypeError(
                f"reduce column from {ct.table!r} over rows of {table!r}"
            )
        self._expect(e.condition, Kind.FILTER, table)
        return DslType(Kind.SCALAR, ct.elem)

    def _count(self, e: ast.Count) -> DslType:
        table = self._source_table(e.source)
        self._expect(e.condition, Kind.FILTER, table)
        return DslType(Kind.SCALAR, ValueType.NUMBER)

    # -- arithmetic -----------------------------------------------------------

    def _binop(self, e: ast.BinOp, scope: str | None) -> DslType:
        lt = self.type_of(e.left, scope)
        rt = self.type_of(e.right, scope)
        for t in (lt, rt):
            if t.kind not in (Kind.SCALAR, Kind.COLUMN, Kind.VECTOR, Kind.ANY):
                raise DslTypeError(f"arithmetic operand has kind {t.kind.value}")
        if Kind.ANY in (lt.kind, rt.kind):
            vectorish = [t for t in (lt, rt) if t.kind in (Kind.COLUMN, Kind.VECTOR)]
            if vectorish:
                return DslType(Kind.VECTOR, vectorish[0].elem, vectorish[0].table)
            return ANY
        elem = _unit_result(e.op, lt.elem, rt.elem)
        vector_tables = [
            t.table for t in (lt, rt) if t.kind in (Kind.COLUMN, Kind.VECTOR)
        ]
        if not vector_tables:
            return DslType(Kind.SCALAR, elem)
        # "Vector operations are defined only on vectors of the same size":
        # two same-table vectors always agree in length.
        if len(set(vector_tables)) > 1:
            raise DslTypeError("vector operands come from different tables")
        return DslType(Kind.VECTOR, elem, vector_tables[0])

    # -- lookup ----------------------------------------------------------------

    def _lookup(self, e: ast.Lookup, scope: str | None) -> DslType:
        table = self._source_table(e.source)
        kt = self._expect(e.key, Kind.COLUMN, table)
        ot = self._expect(e.out, Kind.COLUMN, table)
        for t in (kt, ot):
            if t.kind is Kind.COLUMN and table is not None and t.table != table:
                raise DslTypeError(
                    f"lookup column from {t.table!r} over rows of {table!r}"
                )
        nt = self.type_of(e.needle, scope)
        if nt.kind is Kind.ANY or kt.kind is Kind.ANY:
            pass
        elif nt.kind is Kind.SCALAR:
            if kt.elem is not None and nt.elem is not kt.elem:
                raise DslTypeError(
                    f"lookup needle {nt.elem} does not match key {kt.elem}"
                )
        elif nt.kind in (Kind.COLUMN, Kind.VECTOR):
            if kt.elem is not None and nt.elem is not kt.elem:
                raise DslTypeError(
                    f"lookup source column {nt.elem} does not match key {kt.elem}"
                )
        else:
            raise DslTypeError(f"bad lookup needle kind {nt.kind.value}")
        out_elem = ot.elem
        if nt.kind in (Kind.COLUMN, Kind.VECTOR):
            # Vector lookup: one output element per row of the *current*
            # table — the single-column join of paper §2.
            return DslType(Kind.VECTOR, out_elem, nt.table)
        return DslType(Kind.SCALAR, out_elem)

    # -- queries -----------------------------------------------------------------

    def _select_rows(self, e: ast.SelectRows) -> DslType:
        table = self._source_table(e.source)
        self._expect(e.condition, Kind.FILTER, table)
        return DslType(Kind.QUERY, table=table)

    def _select_cells(self, e: ast.SelectCells) -> DslType:
        table = self._source_table(e.source)
        if not e.columns:
            raise DslTypeError("SelectCells needs at least one column")
        for col in e.columns:
            t = self._expect(col, Kind.COLUMN, table)
            if t.kind is Kind.COLUMN and table is not None and t.table != table:
                raise DslTypeError(
                    f"selected column from {t.table!r} over rows of {table!r}"
                )
        self._expect(e.condition, Kind.FILTER, table)
        return DslType(Kind.QUERY, table=table)


def _unit_result(
    op: ast.BinaryOp, a: ValueType | None, b: ValueType | None
) -> ValueType | None:
    """Dimensional-unit arithmetic over NUMBER and CURRENCY (paper §2 cites
    Osprey-style unit checking [12])."""
    if a is None or b is None:
        return a or b
    for t in (a, b):
        if not t.is_numeric:
            raise DslTypeError(f"arithmetic on non-numeric type {t.value}")
    num, cur = ValueType.NUMBER, ValueType.CURRENCY
    if op in (ast.BinaryOp.ADD, ast.BinaryOp.SUB):
        if a is b:
            return a
        raise DslTypeError(f"cannot {op.value} {a.value} and {b.value}")
    if op is ast.BinaryOp.MULT:
        if a is cur and b is cur:
            raise DslTypeError("cannot multiply two currency values")
        return cur if cur in (a, b) else num
    # DIV
    if a is cur and b is cur:
        return num
    if a is cur and b is num:
        return cur
    if a is num and b is num:
        return num
    raise DslTypeError("cannot divide a number by a currency")
