"""Partial expressions: holes and substitution (paper §3.1).

A *partial expression* is a DSL expression that may contain
:class:`~repro.dsl.ast.Hole` placeholders.  Substitution
``e[□φi ← e']`` succeeds only when ``e'`` is consistent with the hole's
restriction φ and the substituted expression passes ``Valid`` — both checks
are performed by :func:`substitute`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import HoleError
from ..sheet.values import ValueType
from . import ast
from .types import TypeChecker


def holes_of(expr: ast.Expr) -> tuple[ast.Hole, ...]:
    """All holes in ``expr``, in pre-order.

    Cached on the (immutable) node after the first call — ``comb_all``
    probes the same receivers and fillers across every pair of the
    synthesis closure, and with interned nodes the cache is computed once
    per distinct expression for the whole process.
    """
    cached = expr.__dict__.get("_holes")
    if cached is not None:
        return cached
    holes = tuple(node for node in expr.walk() if isinstance(node, ast.Hole))
    if ast.hotpath_enabled():
        object.__setattr__(expr, "_holes", holes)
    return holes


def hole_idents(expr: ast.Expr) -> set[int]:
    return {h.ident for h in holes_of(expr)}


def is_complete(expr: ast.Expr) -> bool:
    """True when ``expr`` contains no holes."""
    return not any(isinstance(node, ast.Hole) for node in expr.walk())


def consistent(replacement: ast.Expr, kind: ast.HoleKind) -> bool:
    """Is ``replacement`` consistent with hole restriction ``kind``?

    G admits anything; L admits numeric/currency literals and cell
    references; C admits column references; V admits sheet values (non-
    numeric literals such as text and dates).
    """
    if kind is ast.HoleKind.GENERAL:
        return True
    if kind is ast.HoleKind.LITERAL:
        if isinstance(replacement, ast.CellRef):
            return True
        return isinstance(replacement, ast.Lit) and replacement.value.type in (
            ValueType.NUMBER,
            ValueType.CURRENCY,
            ValueType.DATE,
        )
    if kind is ast.HoleKind.COLUMN:
        return isinstance(replacement, ast.ColumnRef)
    # VALUE: a value appearing in the sheet (text / date / bool).
    return isinstance(replacement, ast.Lit) and replacement.value.type in (
        ValueType.TEXT,
        ValueType.DATE,
        ValueType.BOOL,
    )


def substitute_unchecked(
    expr: ast.Expr, bindings: Mapping[int, ast.Expr]
) -> ast.Expr:
    """Structurally replace every hole whose ident is bound.

    No restriction or validity checking — callers that need the paper's ∆
    side condition use :func:`substitute`.
    """
    if isinstance(expr, ast.Hole):
        return bindings.get(expr.ident, expr)
    children = expr.children()
    if not children:
        return expr
    new_children = tuple(substitute_unchecked(c, bindings) for c in children)
    if new_children == children:
        return expr
    return expr.replace_children(new_children)


def substitute(
    expr: ast.Expr,
    bindings: Mapping[int, ast.Expr],
    checker: TypeChecker,
) -> ast.Expr | None:
    """The paper's (multi-)substitution ``e[□φm ← em, ..., □φn ← en]``.

    Returns the substituted expression, or ``None`` when any binding is
    inconsistent with its hole's restriction or the result fails ``Valid``.
    Raises :class:`HoleError` if a binding names a hole not present in
    ``expr`` (a bug in the caller, not a translation failure).
    """
    holes = {h.ident: h for h in holes_of(expr)}
    for ident, replacement in bindings.items():
        hole = holes.get(ident)
        if hole is None:
            raise HoleError(f"no hole with ident {ident} in {expr}")
        if not consistent(replacement, hole.kind):
            return None
    # Interning before the Valid probe turns repeat substitutions (the same
    # rule filled with the same bindings at another span) into cache hits.
    result = ast.intern(substitute_unchecked(expr, bindings))
    if not checker.valid(result):
        return None
    return result


def fresh_idents(exprs: Iterable[ast.Expr], start: int = 1) -> int:
    """The first hole ident not used by any expression in ``exprs`` (used
    when composing partial expressions that must not collide)."""
    used = set()
    for e in exprs:
        used.update(hole_idents(e))
    ident = start
    while ident in used:
        ident += 1
    return ident


def renumber(expr: ast.Expr, offset: int) -> ast.Expr:
    """Shift every hole ident by ``offset`` (collision avoidance when a rule
    expression is embedded into another partial expression)."""
    if isinstance(expr, ast.Hole):
        return ast.Hole(expr.ident + offset, expr.kind)
    children = expr.children()
    if not children:
        return expr
    return expr.replace_children(tuple(renumber(c, offset) for c in children))
