"""Crash-isolated worker pool for the translation gateway.

Each pool slot owns at most one OS process running
:func:`repro.serve.worker.worker_main` and the parent end of its pipe.
The slot's :class:`WorkerHandle` is permanent — it survives any number of
process deaths and carries the slot's history (restart count, consecutive
crashes, warm fingerprints) across respawns.

Crash containment contract:

* :meth:`WorkerHandle.call` either returns a reply dict or raises
  :class:`WorkerCrashed` (the process died mid-request: killed, crashed,
  or exited) / :class:`WorkerTimedOut` (no reply within the allotted
  wall clock — a hung worker is killed and treated like a crash);
* a dead slot is respawned lazily by :meth:`WorkerPool.ensure` with
  exponential backoff proportional to the slot's *consecutive* crash
  count (a successful call resets it), so a crash-looping workload
  cannot melt the host with fork storms.  Each delay is jittered
  (``restart_jitter``) so the slots of a crashed shard do not respawn in
  lockstep and re-fork as one thundering herd;
* :meth:`WorkerPool.kill` SIGKILLs a live worker on purpose — the chaos
  tests use it as the external "segfault" injector;
* :meth:`WorkerPool.quarantine` kills every worker *and* refuses all
  future respawns: the pool behaves like a machine that just lost power.
  ``ensure`` on a quarantined pool raises :class:`WorkerCrashed`, which
  flows through the gateway's existing crash containment, so every
  request routed at a dead shard resolves promptly with
  ``worker_crashed`` instead of blocking — the hook
  ``repro.cluster``'s shard-kill chaos rides on.

The pool prefers the ``fork`` start method when the platform offers it
(workers inherit the already-imported translation stack instead of
re-importing it); ``spawn`` works too and is selected automatically
elsewhere.
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from .worker import worker_main

__all__ = [
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerPool",
    "WorkerTimedOut",
    "pick_start_method",
]


class WorkerCrashed(Exception):
    """The worker process died before replying."""


class WorkerTimedOut(Exception):
    """The worker process failed to reply within the allotted time."""


def pick_start_method(preferred: str | None = None) -> str:
    """``preferred`` if given, else ``fork`` when available, else spawn."""
    available = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} not available (have: {available})"
            )
        return preferred
    return "fork" if "fork" in available else "spawn"


_log = get_logger("serve.pool")

# Process-wide fork lock, shared by every pool in the parent.  With the
# ``fork`` start method a child inherits every file descriptor open at
# fork time — including the *child* end of another worker's pipe if some
# runner thread is between ``Pipe()`` and its parent-side
# ``child_conn.close()``.  A leaked child end is fatal to crash
# containment: the parent's ``poll()`` on that pipe only sees EOF once
# every copy of the child end is closed, so SIGKILLing the worker no
# longer wakes its runner — the request blocks until its full timeout
# instead of failing over promptly.  Holding this lock from pipe
# creation through the parent-side close makes the window atomic across
# all pools (a multi-shard cluster forks workers from many threads of
# one parent).
_FORK_LOCK = threading.Lock()


@dataclass
class WorkerStats:
    """One slot's diagnostics snapshot."""

    worker_id: int
    alive: bool
    restarts: int
    served: int
    warm_fingerprints: int

    def snapshot(self) -> dict[str, Any]:
        """The ``snapshot()`` protocol (see :mod:`repro.obs.metrics`)."""
        return asdict(self)


@dataclass
class WorkerHandle:
    """Permanent per-slot state wrapping the current (if any) process."""

    slot: int
    process: object | None = None
    conn: object | None = None
    restarts: int = -1  # first spawn brings it to 0
    consecutive_crashes: int = 0
    served: int = 0
    warm: set = field(default_factory=set)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def call(self, request: dict, timeout: float) -> dict:
        """Send one request and wait for its reply (see module docstring)."""
        try:
            self.conn.send(request)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.slot}: send failed: {exc}")
        try:
            if not self.conn.poll(timeout):
                raise WorkerTimedOut(
                    f"worker {self.slot}: no reply within {timeout:.2f}s"
                )
            reply = self.conn.recv()
        except WorkerTimedOut:
            raise
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.slot}: died mid-request: {exc}")
        if not isinstance(reply, dict) or reply.get("id") != request["id"]:
            raise WorkerCrashed(
                f"worker {self.slot}: protocol violation in reply"
            )
        return reply


class WorkerPool:
    """Spawn, respawn, kill, and drain the gateway's worker processes."""

    def __init__(
        self,
        size: int,
        worker_faults: str | None = None,
        start_method: str | None = None,
        restart_backoff: float = 0.05,
        restart_backoff_cap: float = 2.0,
        restart_jitter: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if not 0.0 <= restart_jitter <= 1.0:
            raise ValueError("restart_jitter must be within [0, 1]")
        self.worker_faults = worker_faults
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.restart_jitter = restart_jitter
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._quarantined = False
        self._ctx = multiprocessing.get_context(pick_start_method(start_method))
        self.handles = [WorkerHandle(slot) for slot in range(size)]

    @property
    def size(self) -> int:
        return len(self.handles)

    @property
    def quarantined(self) -> bool:
        return self._quarantined

    # -- lifecycle --------------------------------------------------------------

    def backoff_delay(self, consecutive_crashes: int) -> float:
        """Seconds to sleep before respawning after ``n`` consecutive crashes.

        The deterministic envelope is ``min(cap, backoff * 2**(n-1))``;
        the returned delay is that envelope scaled by a random factor in
        ``[1 - restart_jitter, 1]``.  Without the jitter, every slot of a
        shard whose workers were killed at once would sleep the *same*
        exponential series and re-fork in lockstep — a thundering herd of
        simultaneous forks on an already-struggling host.  The jitter
        spreads the respawns while keeping the exponential growth (the
        factor never drops the delay below half its envelope at the
        default ``restart_jitter=0.5``).
        """
        if consecutive_crashes < 1 or self.restart_backoff <= 0:
            return 0.0
        envelope = min(
            self.restart_backoff_cap,
            self.restart_backoff * 2 ** (consecutive_crashes - 1),
        )
        if self.restart_jitter <= 0.0:
            return envelope
        return envelope * (1.0 - self.restart_jitter * self._rng.random())

    def ensure(self, slot: int) -> WorkerHandle:
        """The slot's handle, respawning the process first if it is dead.

        A respawn after ``n`` consecutive crashes sleeps
        :meth:`backoff_delay` before forking — jittered exponential
        backoff against crash loops.  The very first spawn is free.  A
        quarantined pool (see :meth:`quarantine`) never respawns: the
        call raises :class:`WorkerCrashed` immediately.
        """
        if self._quarantined:
            raise WorkerCrashed(
                f"worker {slot}: pool is quarantined (shard marked dead)"
            )
        handle = self.handles[slot]
        if handle.alive:
            return handle
        self._retire(handle)
        delay = self.backoff_delay(handle.consecutive_crashes)
        if delay > 0:
            _log.warning(
                "respawning crashed worker",
                extra=log_fields(
                    slot=slot,
                    consecutive_crashes=handle.consecutive_crashes,
                    backoff_seconds=delay,
                ),
            )
            self._sleep(delay)
        with _FORK_LOCK:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=worker_main,
                args=(child_conn, slot, self.worker_faults),
                daemon=True,
                name=f"repro-gateway-worker-{slot}",
            )
            process.start()
            child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.restarts += 1
        # A fresh process has a cold service cache regardless of history.
        handle.warm = set()
        return handle

    def note_crash(self, slot: int) -> None:
        """Record a mid-request death and tear the process down."""
        handle = self.handles[slot]
        handle.consecutive_crashes += 1
        _log.warning(
            "worker died mid-request",
            extra=log_fields(
                slot=slot, consecutive_crashes=handle.consecutive_crashes
            ),
        )
        self._retire(handle)

    def note_success(self, slot: int) -> None:
        self.handles[slot].consecutive_crashes = 0

    def kill(self, slot: int) -> bool:
        """SIGKILL a live worker (chaos injection). True if one was killed."""
        handle = self.handles[slot]
        process = handle.process
        if process is None or not process.is_alive():
            return False
        process.kill()
        return True

    def quarantine(self) -> int:
        """Kill every live worker and refuse all future respawns.

        This is whole-shard death (power loss, OOM-killed host): requests
        already dispatched die with their workers, and every later
        ``ensure`` raises :class:`WorkerCrashed` without forking, so the
        queue drains into prompt ``worker_crashed`` resolutions a cluster
        front end can fail over.  Returns the number of processes killed.
        Irreversible for the life of the pool.
        """
        self._quarantined = True
        killed = 0
        for handle in self.handles:
            if self.kill(handle.slot):
                killed += 1
        _log.warning(
            "pool quarantined",
            extra=log_fields(killed=killed, size=self.size),
        )
        return killed

    def _retire(self, handle: WorkerHandle) -> None:
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=1.0)
            handle.process = None
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    def shutdown(self) -> None:
        """Politely stop every live worker, then force the stragglers."""
        for handle in self.handles:
            if handle.alive and handle.conn is not None:
                try:
                    handle.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for handle in self.handles:
            if handle.process is not None:
                handle.process.join(timeout=1.0)
            self._retire(handle)

    # -- diagnostics -------------------------------------------------------------

    def stats(self) -> list[WorkerStats]:
        return [
            WorkerStats(
                worker_id=h.slot,
                alive=h.alive,
                restarts=max(0, h.restarts),
                served=h.served,
                warm_fingerprints=len(h.warm),
            )
            for h in self.handles
        ]
