"""Crash-isolated worker pool for the translation gateway.

Each pool slot owns at most one OS process running
:func:`repro.serve.worker.worker_main` and the parent end of its pipe.
The slot's :class:`WorkerHandle` is permanent — it survives any number of
process deaths and carries the slot's history (restart count, consecutive
crashes, warm fingerprints) across respawns.

Crash containment contract:

* :meth:`WorkerHandle.call` either returns a reply dict or raises
  :class:`WorkerCrashed` (the process died mid-request: killed, crashed,
  or exited) / :class:`WorkerTimedOut` (no reply within the allotted
  wall clock — a hung worker is killed and treated like a crash);
* a dead slot is respawned lazily by :meth:`WorkerPool.ensure` with
  exponential backoff proportional to the slot's *consecutive* crash
  count (a successful call resets it), so a crash-looping workload
  cannot melt the host with fork storms;
* :meth:`WorkerPool.kill` SIGKILLs a live worker on purpose — the chaos
  tests use it as the external "segfault" injector.

The pool prefers the ``fork`` start method when the platform offers it
(workers inherit the already-imported translation stack instead of
re-importing it); ``spawn`` works too and is selected automatically
elsewhere.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from .worker import worker_main

__all__ = [
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerPool",
    "WorkerTimedOut",
    "pick_start_method",
]


class WorkerCrashed(Exception):
    """The worker process died before replying."""


class WorkerTimedOut(Exception):
    """The worker process failed to reply within the allotted time."""


def pick_start_method(preferred: str | None = None) -> str:
    """``preferred`` if given, else ``fork`` when available, else spawn."""
    available = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} not available (have: {available})"
            )
        return preferred
    return "fork" if "fork" in available else "spawn"


_log = get_logger("serve.pool")


@dataclass
class WorkerStats:
    """One slot's diagnostics snapshot."""

    worker_id: int
    alive: bool
    restarts: int
    served: int
    warm_fingerprints: int

    def snapshot(self) -> dict[str, Any]:
        """The ``snapshot()`` protocol (see :mod:`repro.obs.metrics`)."""
        return asdict(self)


@dataclass
class WorkerHandle:
    """Permanent per-slot state wrapping the current (if any) process."""

    slot: int
    process: object | None = None
    conn: object | None = None
    restarts: int = -1  # first spawn brings it to 0
    consecutive_crashes: int = 0
    served: int = 0
    warm: set = field(default_factory=set)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def call(self, request: dict, timeout: float) -> dict:
        """Send one request and wait for its reply (see module docstring)."""
        try:
            self.conn.send(request)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.slot}: send failed: {exc}")
        try:
            if not self.conn.poll(timeout):
                raise WorkerTimedOut(
                    f"worker {self.slot}: no reply within {timeout:.2f}s"
                )
            reply = self.conn.recv()
        except WorkerTimedOut:
            raise
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.slot}: died mid-request: {exc}")
        if not isinstance(reply, dict) or reply.get("id") != request["id"]:
            raise WorkerCrashed(
                f"worker {self.slot}: protocol violation in reply"
            )
        return reply


class WorkerPool:
    """Spawn, respawn, kill, and drain the gateway's worker processes."""

    def __init__(
        self,
        size: int,
        worker_faults: str | None = None,
        start_method: str | None = None,
        restart_backoff: float = 0.05,
        restart_backoff_cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.worker_faults = worker_faults
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self._sleep = sleep
        self._ctx = multiprocessing.get_context(pick_start_method(start_method))
        self.handles = [WorkerHandle(slot) for slot in range(size)]

    @property
    def size(self) -> int:
        return len(self.handles)

    # -- lifecycle --------------------------------------------------------------

    def ensure(self, slot: int) -> WorkerHandle:
        """The slot's handle, respawning the process first if it is dead.

        A respawn after ``n`` consecutive crashes sleeps
        ``min(cap, backoff * 2**(n-1))`` before forking — exponential
        backoff against crash loops.  The very first spawn is free.
        """
        handle = self.handles[slot]
        if handle.alive:
            return handle
        self._retire(handle)
        if handle.consecutive_crashes > 0 and self.restart_backoff > 0:
            delay = min(
                self.restart_backoff_cap,
                self.restart_backoff * 2 ** (handle.consecutive_crashes - 1),
            )
            _log.warning(
                "respawning crashed worker",
                extra=log_fields(
                    slot=slot,
                    consecutive_crashes=handle.consecutive_crashes,
                    backoff_seconds=delay,
                ),
            )
            self._sleep(delay)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, slot, self.worker_faults),
            daemon=True,
            name=f"repro-gateway-worker-{slot}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.restarts += 1
        # A fresh process has a cold service cache regardless of history.
        handle.warm = set()
        return handle

    def note_crash(self, slot: int) -> None:
        """Record a mid-request death and tear the process down."""
        handle = self.handles[slot]
        handle.consecutive_crashes += 1
        _log.warning(
            "worker died mid-request",
            extra=log_fields(
                slot=slot, consecutive_crashes=handle.consecutive_crashes
            ),
        )
        self._retire(handle)

    def note_success(self, slot: int) -> None:
        self.handles[slot].consecutive_crashes = 0

    def kill(self, slot: int) -> bool:
        """SIGKILL a live worker (chaos injection). True if one was killed."""
        handle = self.handles[slot]
        process = handle.process
        if process is None or not process.is_alive():
            return False
        process.kill()
        return True

    def _retire(self, handle: WorkerHandle) -> None:
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=1.0)
            handle.process = None
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    def shutdown(self) -> None:
        """Politely stop every live worker, then force the stragglers."""
        for handle in self.handles:
            if handle.alive and handle.conn is not None:
                try:
                    handle.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for handle in self.handles:
            if handle.process is not None:
                handle.process.join(timeout=1.0)
            self._retire(handle)

    # -- diagnostics -------------------------------------------------------------

    def stats(self) -> list[WorkerStats]:
        return [
            WorkerStats(
                worker_id=h.slot,
                alive=h.alive,
                restarts=max(0, h.restarts),
                served=h.served,
                warm_fingerprints=len(h.warm),
            )
            for h in self.handles
        ]
