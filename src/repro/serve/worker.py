"""The gateway worker: one process, one request at a time.

``worker_main`` is the target of every pool process.  It speaks a tiny
pickled-dict protocol over a duplex pipe:

* request — ``{"id", "sentence", "fingerprint", "payload", "deadline",
  "max_derivations", "top_k", "faults", "cache"}`` (``payload`` is the
  pickled workbook; ``faults`` an optional ``REPRO_FAULTS``-style plan
  armed for this request only; ``cache`` asks the service for a
  per-process rung memo, :mod:`repro.cache`).  An optional ``trace``
  entry — ``{"trace_id", "parent_id"}`` — carries the gateway's trace
  context across the process boundary: the worker runs the request under
  a local :class:`~repro.obs.trace.Tracer`, opens a ``worker.translate``
  span as a child of the remote parent, and returns the finished span
  records in the reply (``"spans"``) for the gateway to stitch in;
* reply — a flat dict of primitives mirroring
  :class:`~repro.runtime.service.ServiceResult` (no DSL objects cross the
  boundary, so a reply never fails to unpickle);
* ``None`` — shutdown sentinel: the worker drains nothing and exits 0.

Workbooks are cached per fingerprint (bounded LRU) so repeat fingerprints
reuse a warm :class:`~repro.runtime.TranslationService` — this is the
cache the gateway's affinity routing tries to hit.

Crash semantics: the ``worker_crash`` fault stage fires *before*
translation; any exception it raises makes the process ``os._exit`` with
:data:`CRASH_EXIT_CODE` — no reply, no cleanup, no exception propagation —
which is the closest a pure-Python harness gets to a segfault or OOM
kill.  Everything else is wrapped by the ``TranslationService`` never-
crash contract plus a final belt-and-braces handler that reports
``internal_error`` rather than dying.
"""

from __future__ import annotations

import os
import pickle
from contextlib import nullcontext

# Imported eagerly so a fork()ed worker never takes the import lock for
# the translation stack mid-flight (the parent is multi-threaded).
from ..cache import ResultCache
from ..obs.trace import Tracer
from ..rules import builtin_rules  # noqa: F401  (warms the import cache)
from ..runtime.faults import fault_point, install, installed, parse_plan
from ..runtime.service import TranslationService
from ..translate import TranslatorConfig  # noqa: F401  (warms the import cache)

__all__ = [
    "CRASH_EXIT_CODE",
    "SERVICE_CACHE_SIZE",
    "WORKER_CACHE_CAPACITY",
    "worker_main",
]

CRASH_EXIT_CODE = 23
SERVICE_CACHE_SIZE = 8
WORKER_CACHE_CAPACITY = 512  # per-service rung memo when the gateway caches


def _build_reply(request: dict, services: dict) -> dict:
    """Translate one request into a flat reply dict (never raises)."""
    fingerprint = request["fingerprint"]
    warm = fingerprint in services
    if warm:
        workbook, service = services[fingerprint]
    else:
        workbook = pickle.loads(request["payload"])
        service = TranslationService(
            workbook,
            config=request.get("config"),
            cache=(
                ResultCache(capacity=WORKER_CACHE_CAPACITY)
                if request.get("cache")
                else None
            ),
        )
        if len(services) >= SERVICE_CACHE_SIZE:
            services.pop(next(iter(services)))
        services[fingerprint] = (workbook, service)
    # Budgets are per request: the service object is warm state, the
    # deadline is whatever slice of the caller's deadline is left.
    service.deadline = request.get("deadline")
    service.max_derivations = request.get("max_derivations")

    # Trace context (if the gateway is tracing): run this request under a
    # short-lived local tracer parented to the gateway's worker_call span,
    # and ship the finished records back in the reply for adoption.
    trace_ctx = request.get("trace")
    spans: list[dict] = []
    if trace_ctx:
        tracer = Tracer()
        root = tracer.span(
            "worker.translate",
            trace_id=trace_ctx["trace_id"],
            parent_id=trace_ctx["parent_id"],
            warm=warm,
        )
        with root:
            result = service.translate(request["sentence"], tracer=tracer)
        spans = tracer.clear()
    else:
        result = service.translate(request["sentence"])

    top_k = request.get("top_k", 5)
    programs = [
        (str(c.program), c.score) for c in result.candidates[:top_k]
    ]
    top_formula = None
    if result.top is not None:
        try:
            top_formula = result.top.excel(workbook)
        except Exception:  # noqa: BLE001 - a render bug must not kill the reply
            top_formula = None
    return {
        "id": request["id"],
        "ok": result.ok,
        "error_code": result.error_code,
        "error": result.error,
        "tier": result.tier,
        "degraded": result.degraded,
        "anytime": result.anytime,
        "elapsed": result.elapsed,
        "budget_spent": result.budget_spent,
        "n_candidates": len(result.candidates),
        "programs": programs,
        "top_formula": top_formula,
        "warm": warm,
        "cached": result.cached,
        "spans": spans,
    }


def worker_main(conn, worker_id: int, worker_faults: str | None = None) -> None:
    """Process entry point: serve requests from ``conn`` until shutdown."""
    # Honour REPRO_NO_INTERN even under fork: the parent imported the DSL
    # before the env var may have been set, so re-read it here — this is
    # what lets the differential harness run a de-optimised gateway.
    from ..dsl import ast as _ast

    _ast.sync_hotpath_from_env()
    if worker_faults:
        install(parse_plan(worker_faults))
    services: dict[str, tuple] = {}
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if request is None:
            break
        plan_text = request.get("faults")
        scope = installed(parse_plan(plan_text)) if plan_text else nullcontext()
        with scope:
            try:
                fault_point("worker_crash")
            except BaseException:  # noqa: BLE001 - deliberate hard death
                os._exit(CRASH_EXIT_CODE)
            try:
                reply = _build_reply(request, services)
            except Exception as exc:  # noqa: BLE001 - the never-crash contract
                reply = {
                    "id": request.get("id"),
                    "ok": False,
                    "error_code": "internal_error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "tier": None,
                    "degraded": True,
                    "anytime": False,
                    "elapsed": 0.0,
                    "budget_spent": 0,
                    "n_candidates": 0,
                    "programs": [],
                    "top_formula": None,
                    "warm": False,
                    "cached": False,
                }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
