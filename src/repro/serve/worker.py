"""The gateway worker: one process, one request at a time.

``worker_main`` is the target of every pool process.  It speaks a tiny
pickled-dict protocol over a duplex pipe:

* request — ``{"id", "sentence", "fingerprint", "payload", "deadline",
  "max_derivations", "top_k", "faults", "cache"}`` (``payload`` is the
  pickled workbook; ``faults`` an optional ``REPRO_FAULTS``-style plan
  armed for this request only; ``cache`` asks the service for a
  per-process rung memo, :mod:`repro.cache`).  An optional ``trace``
  entry — ``{"trace_id", "parent_id"}`` — carries the gateway's trace
  context across the process boundary: the worker runs the request under
  a local :class:`~repro.obs.trace.Tracer`, opens a ``worker.translate``
  span as a child of the remote parent, and returns the finished span
  records in the reply (``"spans"``) for the gateway to stitch in;
* reply — a flat dict of primitives mirroring
  :class:`~repro.runtime.service.ServiceResult` (no DSL objects cross the
  boundary, so a reply never fails to unpickle); when the request set
  ``"telemetry"``, the reply piggybacks ``"metrics"`` — the worker
  registry's delta since the previous reply, encoded by the strict wire
  codec (:mod:`repro.obs.telemetry.codec`) for the gateway to fold;
* ``None`` — shutdown sentinel: the worker drains nothing and exits 0.

Workbooks are cached per fingerprint (bounded LRU) so repeat fingerprints
reuse a warm :class:`~repro.runtime.TranslationService` — this is the
cache the gateway's affinity routing tries to hit.

Crash semantics: the ``worker_crash`` fault stage fires *before*
translation; any exception it raises makes the process ``os._exit`` with
:data:`CRASH_EXIT_CODE` — no reply, no cleanup, no exception propagation —
which is the closest a pure-Python harness gets to a segfault or OOM
kill.  Everything else is wrapped by the ``TranslationService`` never-
crash contract plus a final belt-and-braces handler that reports
``internal_error`` rather than dying.
"""

from __future__ import annotations

import os
import pickle
from contextlib import nullcontext

# Imported eagerly so a fork()ed worker never takes the import lock for
# the translation stack mid-flight (the parent is multi-threaded).
from ..cache import ResultCache
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import DeltaTracker, encode_state
from ..obs.trace import Tracer
from ..rules import builtin_rules  # noqa: F401  (warms the import cache)
from ..runtime.faults import fault_point, install, installed, parse_plan
from ..runtime.service import TranslationService
from ..translate import TranslatorConfig  # noqa: F401  (warms the import cache)

__all__ = [
    "CRASH_EXIT_CODE",
    "SERVICE_CACHE_SIZE",
    "WORKER_CACHE_CAPACITY",
    "worker_main",
]

CRASH_EXIT_CODE = 23
SERVICE_CACHE_SIZE = 8
WORKER_CACHE_CAPACITY = 512  # per-service rung memo when the gateway caches

# Worker-side translate latency buckets: 1 ms .. 30 s, serving-scale.
_WORKER_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class _WorkerTelemetry:
    """Per-process registry + delta cursor for reply-pipe piggybacking.

    The worker records its own view of each request
    (``worker_requests_total``, ``worker_translate_seconds``) and ships
    only the increment since the previous reply, so blobs stay small and
    the gateway's fold is idempotent per reply.  Everything here is
    best-effort: a telemetry failure must never cost a reply.
    """

    def __init__(self, worker_id: int) -> None:
        self.registry = MetricsRegistry()
        self.worker_id = str(worker_id)
        self._tracker = DeltaTracker(self.registry)
        self._requests = self.registry.counter(
            "worker_requests_total", "requests finished by this worker"
        )
        self._seconds = self.registry.histogram(
            "worker_translate_seconds",
            "worker-side translate seconds by ladder rung",
            buckets=_WORKER_BUCKETS,
        )

    def record(self, reply: dict) -> bytes | None:
        self._requests.inc(
            worker=self.worker_id,
            code=reply.get("error_code") or "ok",
        )
        self._seconds.observe(
            float(reply.get("elapsed") or 0.0),
            worker=self.worker_id,
            tier=reply.get("tier") or "none",
        )
        delta = self._tracker.delta()
        return encode_state(delta) if delta else None


def _build_reply(request: dict, services: dict) -> dict:
    """Translate one request into a flat reply dict (never raises)."""
    fingerprint = request["fingerprint"]
    warm = fingerprint in services
    if warm:
        workbook, service = services[fingerprint]
    else:
        workbook = pickle.loads(request["payload"])
        service = TranslationService(
            workbook,
            config=request.get("config"),
            cache=(
                ResultCache(capacity=WORKER_CACHE_CAPACITY)
                if request.get("cache")
                else None
            ),
        )
        if len(services) >= SERVICE_CACHE_SIZE:
            services.pop(next(iter(services)))
        services[fingerprint] = (workbook, service)
    # Budgets are per request: the service object is warm state, the
    # deadline is whatever slice of the caller's deadline is left.
    service.deadline = request.get("deadline")
    service.max_derivations = request.get("max_derivations")

    # Trace context (if the gateway is tracing): run this request under a
    # short-lived local tracer parented to the gateway's worker_call span,
    # and ship the finished records back in the reply for adoption.
    trace_ctx = request.get("trace")
    spans: list[dict] = []
    if trace_ctx:
        tracer = Tracer()
        root = tracer.span(
            "worker.translate",
            trace_id=trace_ctx["trace_id"],
            parent_id=trace_ctx["parent_id"],
            warm=warm,
        )
        with root:
            result = service.translate(request["sentence"], tracer=tracer)
        spans = tracer.clear()
    else:
        result = service.translate(request["sentence"])

    top_k = request.get("top_k", 5)
    programs = [
        (str(c.program), c.score) for c in result.candidates[:top_k]
    ]
    top_formula = None
    if result.top is not None:
        try:
            top_formula = result.top.excel(workbook)
        except Exception:  # noqa: BLE001 - a render bug must not kill the reply
            top_formula = None
    return {
        "id": request["id"],
        "ok": result.ok,
        "error_code": result.error_code,
        "error": result.error,
        "tier": result.tier,
        "degraded": result.degraded,
        "anytime": result.anytime,
        "elapsed": result.elapsed,
        "budget_spent": result.budget_spent,
        "n_candidates": len(result.candidates),
        "programs": programs,
        "top_formula": top_formula,
        "warm": warm,
        "cached": result.cached,
        "spans": spans,
    }


def worker_main(conn, worker_id: int, worker_faults: str | None = None) -> None:
    """Process entry point: serve requests from ``conn`` until shutdown."""
    # Honour REPRO_NO_INTERN and REPRO_NO_COLUMNAR even under fork: the
    # parent imported the DSL before the env vars may have been set, so
    # re-read both here (one call syncs both switches) — this is what lets
    # the differential harness run a de-optimised gateway.  In the default
    # modes the fork inherits the parent's warm intern, template, and
    # columnar-index tables through copy-on-write.
    from ..dsl import ast as _ast

    _ast.sync_hotpath_from_env()
    if worker_faults:
        install(parse_plan(worker_faults))
    services: dict[str, tuple] = {}
    telemetry = _WorkerTelemetry(worker_id)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if request is None:
            break
        plan_text = request.get("faults")
        scope = installed(parse_plan(plan_text)) if plan_text else nullcontext()
        with scope:
            try:
                fault_point("worker_crash")
            except BaseException:  # noqa: BLE001 - deliberate hard death
                os._exit(CRASH_EXIT_CODE)
            try:
                reply = _build_reply(request, services)
            except Exception as exc:  # noqa: BLE001 - the never-crash contract
                reply = {
                    "id": request.get("id"),
                    "ok": False,
                    "error_code": "internal_error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "tier": None,
                    "degraded": True,
                    "anytime": False,
                    "elapsed": 0.0,
                    "budget_spent": 0,
                    "n_candidates": 0,
                    "programs": [],
                    "top_formula": None,
                    "warm": False,
                    "cached": False,
                }
        if request.get("telemetry"):
            try:
                blob = telemetry.record(reply)
                if blob is not None:
                    reply["metrics"] = blob
            except Exception:  # noqa: BLE001 - telemetry never costs a reply
                reply.pop("metrics", None)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
