"""Workbook identity and transport for the translation gateway.

The gateway and its worker processes never share memory; a workbook
crosses the process boundary as a pickled payload and is identified on
both sides by :meth:`repro.sheet.Workbook.fingerprint` — a stable content
hash.  The fingerprint keys three things at once:

* the worker-side translator cache (a repeat fingerprint reuses the warm
  :class:`~repro.runtime.TranslationService` instead of rebuilding the
  sheet context),
* warm-worker routing in the gateway (repeat fingerprints prefer workers
  that already served them),
* the per-workbook circuit breaker (:mod:`repro.serve.breaker`).

:class:`WorkbookRegistry` memoises the fingerprint → payload mapping on
the gateway side so each distinct workbook is pickled exactly once no
matter how many requests reference it.
"""

from __future__ import annotations

import pickle
import threading

from ..sheet import Workbook

__all__ = [
    "WorkbookRegistry",
    "load_payload",
    "workbook_fingerprint",
    "workbook_payload",
]


def workbook_fingerprint(workbook: Workbook) -> str:
    """The workbook's stable content hash (see ``Workbook.fingerprint``)."""
    return workbook.fingerprint()


def workbook_payload(workbook: Workbook) -> bytes:
    """Serialize a workbook for shipping to a worker process."""
    return pickle.dumps(workbook, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(payload: bytes) -> Workbook:
    """Worker-side inverse of :func:`workbook_payload`."""
    return pickle.loads(payload)


class WorkbookRegistry:
    """Thread-safe fingerprint → payload memo used by the gateway.

    ``register`` is called on every submit; the pickle (the expensive
    part) runs only the first time a given content hash is seen.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._payloads: dict[str, bytes] = {}

    def register(self, workbook: Workbook) -> tuple[str, bytes]:
        """Return ``(fingerprint, payload)`` for a workbook, memoised."""
        fingerprint = workbook_fingerprint(workbook)
        with self._lock:
            payload = self._payloads.get(fingerprint)
            if payload is None:
                payload = workbook_payload(workbook)
                self._payloads[fingerprint] = payload
        return fingerprint, payload

    def payload(self, fingerprint: str) -> bytes | None:
        with self._lock:
            return self._payloads.get(fingerprint)

    @property
    def fingerprints(self) -> list[str]:
        with self._lock:
            return sorted(self._payloads)

    def __len__(self) -> int:
        with self._lock:
            return len(self._payloads)
