"""The crash-isolated translation gateway: queue → breaker → pool.

:class:`TranslationGateway` is the multi-user front end over
:class:`~repro.runtime.TranslationService`.  Requests flow through three
stages, each with its own guarantee:

1. **Admission control** (``submit``) — a bounded queue.  A request is
   shed *immediately* with a ``shed_overload`` coded result when the
   queue is full, when its deadline has already expired, or when the
   predicted dispatch wait (queue depth × observed service time ÷
   workers) would outlast the deadline — queuing a request only to watch
   it die is strictly worse than telling the caller now.  A fingerprint
   whose circuit breaker is open fast-fails with ``circuit_open``.
2. **Dispatch** — one runner thread per pool slot pulls work, preferring
   requests whose workbook fingerprint the slot's worker has already
   served (warm translator-cache affinity), and re-checks the deadline at
   dispatch time.
3. **Execution** — the request runs in a worker *process*.  A worker that
   dies mid-request yields a structured ``worker_crashed`` result; one
   that hangs past the deadline (plus grace) is killed and yields
   ``worker_timeout``.  Either failure feeds the workbook's circuit
   breaker and the slot respawns with exponential backoff.

The invariant the chaos tests assert: **every submitted request resolves
to exactly one coded** :class:`GatewayResult` — across worker kills,
hangs, overload, open breakers, and shutdown.  ``close(drain=True)``
serves everything already queued before stopping; ``drain=False`` fails
queued requests with ``gateway_closed`` (in-flight requests still finish).

Observability (docs/OBSERVABILITY.md): all counters live in a
:class:`~repro.obs.metrics.MetricsRegistry` shared with the result cache
(``gateway_*`` / ``cache_*`` metric names), timing uses an injectable
monotonic clock, and when a :class:`~repro.obs.trace.Tracer` is attached
every request grows one span tree — ``gateway.request`` over
``gateway.queue`` and ``gateway.worker_call``, with the worker's own
spans shipped back in the reply and stitched in via
:meth:`~repro.obs.trace.Tracer.adopt`.  A request whose worker dies
still yields a complete tree: the gateway synthesises a
``worker_crashed`` / ``worker_timeout`` error span in the dead worker's
place.
"""

from __future__ import annotations

import itertools
import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Iterable

from ..cache import CacheKey, CacheStats, ResultCache, normalise_sentence, options_signature
from ..obs.clock import Clock, monotonic
from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import TelemetryHub
from ..obs.trace import NULL_TRACER
from ..sheet import Workbook
from ..translate import TranslatorConfig
from .breaker import OPEN, BreakerBoard
from .fingerprint import WorkbookRegistry
from .pool import WorkerCrashed, WorkerPool, WorkerStats, WorkerTimedOut

__all__ = [
    "GatewayConfig",
    "GatewayResult",
    "GatewayStats",
    "PendingResult",
    "TranslationGateway",
]

_UNSET = object()

_log = get_logger("serve.gateway")

# The lifecycle buckets counted per request (``gateway_events_total``).
_EVENTS = (
    "submitted", "completed", "ok", "failed", "shed", "crashed",
    "timed_out", "circuit_rejected", "closed_rejected", "cache_hits",
    "cancelled",
)


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs for one gateway instance."""

    workers: int = 2
    queue_limit: int = 64
    default_deadline: float | None = None  # seconds per request
    max_derivations: int | None = None
    top_k: int = 5
    translator_config: TranslatorConfig | None = None
    breaker_threshold: int = 5
    breaker_reset: float = 2.0
    request_timeout: float = 30.0  # poll cap for undeadlined requests
    timeout_grace: float = 1.0  # slack past the deadline before declaring a hang
    restart_backoff: float = 0.05
    restart_backoff_cap: float = 2.0
    worker_faults: str | None = None  # REPRO_FAULTS plan armed in every worker
    start_method: str | None = None  # fork/spawn/forkserver; None = best
    # Memoised results (repro.cache): hits resolve in the front end before
    # admission control; workers additionally memoise per ladder rung.
    cache: bool = False
    cache_capacity: int = 4096
    cache_ttl: float | None = None  # seconds; None = entries never expire
    # The telemetry plane (repro.obs.telemetry): always on by default —
    # windowed series, SLO accounting, tail-sampled traces, and worker
    # registry deltas folded from reply-pipe messages.  The off switch
    # exists for the differential harness (byte-identical output proof)
    # and the overhead benchmark, not for production configurations.
    telemetry: bool = True
    # Override the stock objectives (repro.obs.telemetry.default_slos);
    # a tuple of SloSpec.  None = the defaults scaled to default_deadline.
    slo_specs: tuple | None = None


@dataclass
class GatewayResult:
    """One request's outcome: translation payload plus serving diagnostics.

    ``error_code`` is ``None`` on success; gateway-level codes are
    ``shed_overload``, ``circuit_open``, ``worker_crashed``,
    ``worker_timeout``, ``gateway_closed``, and ``gateway_error``;
    service-level codes (``deadline_exhausted``, ``empty_description``,
    ...) pass through unchanged.
    """

    ok: bool
    error_code: str | None = None
    error: str | None = None
    tier: str | None = None
    degraded: bool = False
    anytime: bool = False
    programs: list[tuple[str, float]] = field(default_factory=list)
    n_candidates: int = 0
    top_formula: str | None = None
    elapsed: float = 0.0  # worker-side service time
    budget_spent: int = 0
    queue_seconds: float = 0.0
    total_seconds: float = 0.0
    worker_id: int | None = None
    fingerprint: str | None = None
    warm: bool = False
    cached: bool = False  # answered from the gateway cache, no worker touched
    service_cached: bool = False  # worker hit its in-process rung memo

    @property
    def top_program(self) -> str | None:
        return self.programs[0][0] if self.programs else None


class PendingResult:
    """A one-shot future resolved exactly once by the gateway."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: GatewayResult | None = None
        self._lock = threading.Lock()
        self._callbacks: list = []
        # Installed by the owner (gateway/cluster) before the request can
        # resolve; called at most once, from cancel().
        self._canceller = None

    def _resolve(self, result: GatewayResult) -> None:
        with self._lock:
            if self._result is not None:  # pragma: no cover - defensive
                return
            self._result = result
            callbacks, self._callbacks = self._callbacks, []
        # Callbacks fire *before* the event: a waiter woken by result()
        # may rely on every pre-resolution callback having completed
        # (e.g. the chaos suites' exactly-once accounting).  Late
        # registrations key off _result, so none are dropped in between.
        for callback in callbacks:
            self._fire(callback, result)
        self._event.set()

    @staticmethod
    def _fire(callback, result: GatewayResult) -> None:
        try:
            callback(result)
        except Exception:  # noqa: BLE001 - a callback bug must not poison
            # the firing thread (a gateway runner, or the submitter on the
            # already-resolved path)
            _log.exception("pending-result callback raised")

    def add_done_callback(self, callback) -> None:
        """Run ``callback(result)`` when this future resolves.

        Fires immediately (on the calling thread) if already resolved;
        otherwise fires exactly once on whichever thread resolves the
        request.  Exceptions from the callback are logged, never raised.
        This is the event-driven seam the cluster layer's retry/failover
        logic hangs off — no thread-per-request waiting.
        """
        with self._lock:
            if self._result is None:
                self._callbacks.append(callback)
                return
        self._fire(callback, self._result)

    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> bool:
        """Abandon this request (best effort, e.g. the HTTP client hung up).

        Returns ``True`` iff the request was withdrawn before it reached a
        worker — its bounded-queue slot is released immediately and the
        future resolves with error code ``cancelled``.  Returns ``False``
        when the request already resolved or is executing on a worker
        (worker processes are not preemptible mid-request; the eventual
        result is simply dropped by the caller).  Safe to call from any
        thread, and idempotent.
        """
        with self._lock:
            if self._result is not None:
                return False
            canceller = self._canceller
        if canceller is None:
            return False
        return bool(canceller())

    def result(self, timeout: float | None = None) -> GatewayResult:
        if not self._event.wait(timeout):
            raise TimeoutError("gateway request still pending")
        return self._result


@dataclass
class _Request:
    id: int
    sentence: str
    fingerprint: str
    payload: bytes
    submitted_at: float
    expires_at: float | None
    faults: str | None
    pending: PendingResult
    cache_key: CacheKey | None = None  # set iff this request may commit
    # Trace nodes (no-op spans when tracing is off).  ``span`` is the
    # request's root; it opens at submit and finishes on whichever thread
    # resolves the request.  ``queue_span`` covers admission → dispatch.
    span: Any = None
    queue_span: Any = None
    # The id the telemetry plane files this request under: the caller's
    # (e.g. an HTTP X-Repro-Trace-Id) when given, else the root span's.
    trace_id: str | None = None


@dataclass
class GatewayStats:
    """A diagnostics snapshot (``TranslationGateway.stats()``)."""

    queue_depth: int
    in_flight: int
    submitted: int
    completed: int
    ok: int
    failed: int
    shed: int
    crashed: int
    timed_out: int
    circuit_rejected: int
    closed_rejected: int
    cache_hits: int
    cancelled: int
    restarts: int
    avg_call_seconds: float
    registered_workbooks: int
    workers: list[WorkerStats] = field(default_factory=list)
    breakers: dict[str, str] = field(default_factory=dict)
    cache: CacheStats | None = None  # None when the gateway cache is off

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def crash_rate(self) -> float:
        return self.crashed / self.submitted if self.submitted else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.submitted if self.submitted else 0.0

    def snapshot(self) -> dict[str, Any]:
        """The ``snapshot()`` protocol: plain data, nested stats included."""
        out: dict[str, Any] = {}
        for f in dataclass_fields(self):
            out[f.name] = getattr(self, f.name)
        out["workers"] = [w.snapshot() for w in self.workers]
        out["breakers"] = dict(self.breakers)
        out["cache"] = self.cache.snapshot() if self.cache is not None else None
        out.update(
            shed_rate=self.shed_rate,
            crash_rate=self.crash_rate,
            cache_hit_rate=self.cache_hit_rate,
        )
        return out


class TranslationGateway:
    """Serve translation requests on a crash-isolated worker pool."""

    def __init__(
        self,
        workbook: Workbook | None = None,
        config: GatewayConfig | None = None,
        *,
        clock: Clock = monotonic,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        **overrides,
    ) -> None:
        self.config = replace(config or GatewayConfig(), **overrides)
        self.default_workbook = workbook
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry(clock)
        self._registry = WorkbookRegistry()
        self._breakers = BreakerBoard(
            self.config.breaker_threshold, self.config.breaker_reset
        )
        self._pool = WorkerPool(
            self.config.workers,
            worker_faults=self.config.worker_faults,
            start_method=self.config.start_method,
            restart_backoff=self.config.restart_backoff,
            restart_backoff_cap=self.config.restart_backoff_cap,
        )
        self._cache = (
            ResultCache(
                capacity=self.config.cache_capacity,
                ttl=self.config.cache_ttl,
                clock=clock,
                metrics=self.metrics,
            )
            if self.config.cache
            else None
        )
        self._cache_options = options_signature(
            self.config.translator_config or TranslatorConfig(),
            self.config.max_derivations,
            self.config.top_k,
        )
        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._ids = itertools.count(1)
        self._in_flight = 0
        self._closed = False
        self._stopping = False
        self._aborting = False  # set by close() when drain gives up
        m = self.metrics
        self._events = m.counter(
            "gateway_events_total", "request lifecycle events by kind"
        )
        self._queue_depth_gauge = m.gauge(
            "gateway_queue_depth", "requests waiting for dispatch"
        )
        self._in_flight_gauge = m.gauge(
            "gateway_in_flight", "requests executing on workers"
        )
        self._call_seconds = m.histogram(
            "gateway_call_seconds", "worker round-trip seconds"
        )
        self._queue_seconds = m.histogram(
            "gateway_queue_seconds", "submit-to-dispatch wait seconds"
        )
        self._ema_gauge = m.gauge(
            "gateway_ema_call_seconds", "EMA of worker round-trip seconds"
        )
        # The EMA is a genuine read-modify-write, so it keeps its own lock
        # (gauges guard single writes, not compound updates).
        self._ema_lock = threading.Lock()
        self._ema_call_seconds = 0.0
        # The telemetry plane shares this registry, so the federated view
        # and GET /metrics carry gateway_*, cache_*, telemetry_*, slo_*,
        # and folded worker_* series side by side.
        self.telemetry = (
            TelemetryHub(
                metrics=self.metrics,
                scope="gateway",
                deadline=self.config.default_deadline,
                specs=self.config.slo_specs,
            )
            if self.config.telemetry
            else None
        )
        self._runners = [
            threading.Thread(
                target=self._runner, args=(slot,), daemon=True,
                name=f"repro-gateway-runner-{slot}",
            )
            for slot in range(self.config.workers)
        ]
        for thread in self._runners:
            thread.start()

    # -- the public request path -------------------------------------------------

    def submit(
        self,
        sentence: str,
        workbook: Workbook | None = None,
        deadline: float | None | object = _UNSET,
        faults: str | None = None,
        trace_parent=None,
        *,
        trace_id: str | None = None,
    ) -> PendingResult:
        """Enqueue one request; always returns a resolvable future.

        ``deadline`` (seconds) defaults to the gateway's
        ``default_deadline``; ``faults`` arms a ``REPRO_FAULTS``-style
        plan inside the worker for this request only (chaos-testing
        knob — this is how tests crash or hang a worker on demand).
        ``trace_parent`` (a span from this gateway's own tracer) parents
        the request's ``gateway.request`` span — the cluster layer passes
        its per-attempt span here so a routed request yields one stitched
        tree across cluster, gateway, and worker.  ``trace_id`` is the
        caller-chosen id (e.g. an HTTP ``X-Repro-Trace-Id``) the request
        is filed under in the telemetry plane and, when tracing is on and
        no parent is given, the id of its span tree.
        """
        wb = workbook or self.default_workbook
        if wb is None:
            raise ValueError("no workbook: pass one or set a default")
        if deadline is _UNSET:
            deadline = self.config.default_deadline
        fingerprint, payload = self._registry.register(wb)
        pending = PendingResult()
        now = self.clock()
        # Fault-armed requests are chaos probes: they must reach a worker
        # and must never commit what they produce.
        cache_key = None
        if self._cache is not None and faults is None:
            cache_key = CacheKey(
                normalise_sentence(sentence), fingerprint, self._cache_options
            )
        request_id = next(self._ids)
        # The root span deliberately skips the with-statement: it is
        # finished by whichever thread resolves the request.
        span = self.tracer.span(
            "gateway.request",
            parent=trace_parent if self.tracer.enabled else None,
            trace_id=trace_id if trace_parent is None else None,
            request_id=request_id,
            fingerprint=fingerprint,
        )
        if trace_id is None and self.tracer.enabled:
            trace_id = span.trace_id
        request = _Request(
            id=request_id,
            sentence=sentence,
            fingerprint=fingerprint,
            payload=payload,
            submitted_at=now,
            expires_at=(now + deadline) if deadline is not None else None,
            faults=faults,
            pending=pending,
            cache_key=cache_key,
            span=span,
            trace_id=trace_id,
        )
        pending._canceller = lambda: self._cancel_request(request)
        with self._cond:
            if self._closed:
                self._reject(
                    request, "gateway_closed",
                    "gateway is shut down", "closed_rejected",
                )
                return pending
            if cache_key is not None:
                entry = self._cache.get(cache_key)
                if entry is not None:
                    # A known-good answer beats every admission check: the
                    # hit bypasses the breaker, the queue, and the pool.
                    self._resolve_hit(request, entry)
                    return pending
            if not self._breakers.allow(fingerprint):
                self._reject(
                    request, "circuit_open",
                    "circuit breaker open for this workbook "
                    "(repeated worker crashes/timeouts)",
                    "circuit_rejected",
                )
                return pending
            if len(self._queue) >= self.config.queue_limit:
                self._reject(
                    request, "shed_overload",
                    f"queue full ({self.config.queue_limit} waiting)", "shed",
                )
                return pending
            if request.expires_at is not None:
                remaining = request.expires_at - now
                if remaining <= 0 or remaining <= self._predicted_wait():
                    self._reject(
                        request, "shed_overload",
                        f"deadline ({remaining * 1000:.0f} ms left) cannot "
                        f"survive the predicted queue wait",
                        "shed",
                    )
                    return pending
            self._count("submitted")
            request.queue_span = self.tracer.span(
                "gateway.queue", parent=request.span
            )
            self._queue.append(request)
            self._queue_depth_gauge.set(len(self._queue))
            self._cond.notify()
        return pending

    def translate(
        self,
        sentence: str,
        workbook: Workbook | None = None,
        deadline: float | None | object = _UNSET,
        faults: str | None = None,
        wait: float | None = None,
    ) -> GatewayResult:
        """Synchronous ``submit`` + ``result``."""
        return self.submit(sentence, workbook, deadline, faults).result(wait)

    def translate_many(
        self,
        sentences: Iterable[str],
        workbook: Workbook | None = None,
        deadline: float | None | object = _UNSET,
        wait: float | None = None,
    ) -> list[GatewayResult]:
        """Submit a batch, then wait for every result (submission order)."""
        pendings = [
            self.submit(sentence, workbook, deadline) for sentence in sentences
        ]
        return [pending.result(wait) for pending in pendings]

    # -- lifecycle ----------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the gateway.  On return, every outstanding
        :class:`PendingResult` is resolved — none is left to block until
        its own caller-side timeout.

        ``drain=True`` tries to serve every already-queued request first;
        ``drain=False`` fails them with ``gateway_closed`` immediately.
        In-flight requests run to completion either way.  If a drain
        cannot finish within ``timeout`` seconds (hung workers, a queue
        deeper than the budget), the remaining *queued* requests are
        resolved with ``gateway_closed`` and the pool is torn down, which
        resolves the in-flight stragglers through the normal
        crash-containment path (``worker_crashed``).
        """
        with self._cond:
            self._closed = True
            if not drain:
                while self._queue:
                    request = self._queue.popleft()
                    self._reject(
                        request, "gateway_closed",
                        "gateway closed before dispatch", "closed_rejected",
                        count_submitted=False,  # counted at admission
                    )
                self._queue_depth_gauge.set(0)
            self._stopping = True
            self._cond.notify_all()
        deadline = _time.monotonic() + timeout
        for thread in self._runners:
            thread.join(timeout=max(0.0, deadline - _time.monotonic()))
        stragglers = any(thread.is_alive() for thread in self._runners)
        if stragglers:
            # The drain budget ran out: stop handing out work and resolve
            # everything still queued, so no waiter outlives close().
            with self._cond:
                self._aborting = True
                while self._queue:
                    request = self._queue.popleft()
                    self._reject(
                        request, "gateway_closed",
                        "gateway closed before dispatch (drain timed out)",
                        "closed_rejected",
                        count_submitted=False,  # counted at admission
                    )
                self._queue_depth_gauge.set(0)
                self._cond.notify_all()
            # Quarantine (not shutdown) while runners may still be inside
            # call(): it SIGKILLs the processes — which resolves the hung
            # in-flight requests as worker_crashed via pipe EOF — but
            # leaves the parent pipe ends open, so no runner ever races a
            # concurrently-closed handle.
            self._pool.quarantine()
            for thread in self._runners:
                thread.join(timeout=5.0)
        self._pool.shutdown()

    def __enter__(self) -> "TranslationGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # -- chaos knobs ---------------------------------------------------------------

    def kill_worker(self, slot: int | None = None) -> bool:
        """SIGKILL one live worker process (chaos injection).

        With ``slot=None`` the first live worker is killed.  Returns
        ``True`` if a process was killed.  The affected request (if any)
        resolves to ``worker_crashed``; the slot respawns with backoff.
        """
        slots = [slot] if slot is not None else range(self._pool.size)
        for s in slots:
            if self._pool.kill(s):
                return True
        return False

    def quarantine(self) -> int:
        """Kill every worker and refuse respawns — whole-shard death.

        Unlike :meth:`kill_worker`, the pool never comes back: queued and
        future dispatches resolve promptly as ``worker_crashed`` (see
        :meth:`~repro.serve.pool.WorkerPool.quarantine`).  This is the
        primitive ``repro.cluster`` uses to emulate losing an entire
        shard machine.  Returns the number of processes killed.
        """
        return self._pool.quarantine()

    @property
    def quarantined(self) -> bool:
        return self._pool.quarantined

    # -- diagnostics ----------------------------------------------------------------

    def stats(self) -> GatewayStats:
        counters = {
            name: int(self._events.value(event=name)) for name in _EVENTS
        }
        with self._ema_lock:
            ema = self._ema_call_seconds
        with self._cond:
            depth = len(self._queue)
            in_flight = self._in_flight
        workers = self._pool.stats()
        return GatewayStats(
            queue_depth=depth,
            in_flight=in_flight,
            restarts=sum(w.restarts for w in workers),
            avg_call_seconds=ema,
            registered_workbooks=len(self._registry),
            workers=workers,
            breakers=self._breakers.states(),
            cache=self._cache.stats() if self._cache is not None else None,
            **counters,
        )

    def snapshot(self) -> dict[str, Any]:
        """The ``snapshot()`` protocol (same shape as ``stats().snapshot()``)."""
        return self.stats().snapshot()

    def slo_report(self) -> dict[str, Any] | None:
        """The ``GET /slo`` document, or ``None`` with telemetry off."""
        if self.telemetry is None:
            return None
        return self.telemetry.slo_report()

    def sampled_traces(self) -> list[str]:
        """Tail-sampled trace records as JSONL lines (oldest first)."""
        if self.telemetry is None:
            return []
        return self.telemetry.sampler.jsonl()

    # -- internals -----------------------------------------------------------------

    def _predicted_wait(self) -> float:
        """Expected seconds before a new request reaches a worker."""
        with self._ema_lock:
            ema = self._ema_call_seconds
        return (len(self._queue) / self._pool.size) * ema

    def _count(self, *names: str) -> None:
        for name in names:
            self._events.inc(event=name)

    def _observe(self, request: _Request, result: GatewayResult) -> None:
        """Feed the telemetry plane on any resolution path (never raises)."""
        if self.telemetry is not None:
            self.telemetry.observe(result, trace_id=request.trace_id)

    def _close_span(self, request: _Request, result: GatewayResult) -> None:
        """Finish the request's root span with the outcome attached."""
        span = request.span
        if span is None:
            return
        if not result.ok:
            span.error(result.error).set(error_code=result.error_code)
        span.set(
            tier=result.tier,
            cached=result.cached,
            degraded=result.degraded,
            anytime=result.anytime,
            worker_id=result.worker_id,
        ).finish()

    def _resolve_hit(self, request: _Request, entry: dict) -> None:
        """Resolve a front-end cache hit without touching queue or pool."""
        now = self.clock()
        self._count("submitted", "completed", "ok", "cache_hits")
        self._cache.observe_hit(now - request.submitted_at)
        result = GatewayResult(
            ok=True,
            tier=entry["tier"],
            programs=list(entry["programs"]),
            n_candidates=entry["n_candidates"],
            top_formula=entry["top_formula"],
            elapsed=entry["elapsed"],
            budget_spent=entry["budget_spent"],
            queue_seconds=0.0,
            total_seconds=now - request.submitted_at,
            fingerprint=request.fingerprint,
            cached=True,
        )
        self._close_span(request, result)
        self._observe(request, result)
        request.pending._resolve(result)

    def _cancel_request(self, request: _Request) -> bool:
        """The :meth:`PendingResult.cancel` path: withdraw a queued request.

        Succeeds only while the request is still waiting for dispatch —
        removing it releases its bounded-queue slot to the next submit.
        A request already executing on a worker is not withdrawable (the
        worker finishes and its resolution is simply unobserved), and a
        request already resolved is a no-op.
        """
        with self._cond:
            try:
                self._queue.remove(request)
            except ValueError:
                return False
            self._queue_depth_gauge.set(len(self._queue))
        self._count("completed", "cancelled")
        _log.debug(
            "request cancelled before dispatch",
            extra=log_fields(
                request_id=request.id, fingerprint=request.fingerprint
            ),
        )
        if request.queue_span is not None:
            request.queue_span.error("cancelled").finish()
        now = self.clock()
        result = GatewayResult(
            ok=False,
            error_code="cancelled",
            error="cancelled by the caller before dispatch",
            fingerprint=request.fingerprint,
            queue_seconds=now - request.submitted_at,
            total_seconds=now - request.submitted_at,
        )
        self._close_span(request, result)
        self._observe(request, result)
        request.pending._resolve(result)
        return True

    def _reject(
        self,
        request: _Request,
        code: str,
        message: str,
        bucket: str,
        count_submitted: bool = True,
    ) -> None:
        """Resolve a request that never reached a worker (counts itself)."""
        if count_submitted:
            self._count("submitted")
        self._count("completed", bucket)
        _log.debug(
            "request rejected",
            extra=log_fields(
                request_id=request.id, code=code,
                fingerprint=request.fingerprint,
            ),
        )
        if request.queue_span is not None:
            request.queue_span.error(code).finish()
        now = self.clock()
        result = GatewayResult(
            ok=False,
            error_code=code,
            error=message,
            fingerprint=request.fingerprint,
            queue_seconds=now - request.submitted_at,
            total_seconds=now - request.submitted_at,
        )
        self._close_span(request, result)
        self._observe(request, result)
        request.pending._resolve(result)

    def _runner(self, slot: int) -> None:
        while True:
            request = self._next(slot)
            if request is None:
                return
            try:
                self._serve(slot, request)
            except Exception as exc:  # noqa: BLE001 - never lose a request
                self._finish(
                    request,
                    GatewayResult(
                        ok=False,
                        error_code="gateway_error",
                        error=f"{type(exc).__name__}: {exc}",
                        fingerprint=request.fingerprint,
                        worker_id=slot,
                    ),
                    "failed",
                )

    def _next(self, slot: int) -> _Request | None:
        """Block for the slot's next request (warm-affinity preferred)."""
        with self._cond:
            while True:
                if self._aborting:
                    return None
                if self._queue:
                    request = self._take(slot)
                    self._in_flight += 1
                    self._queue_depth_gauge.set(len(self._queue))
                    self._in_flight_gauge.set(self._in_flight)
                    return request
                if self._stopping:
                    return None
                self._cond.wait(timeout=0.1)

    def _take(self, slot: int) -> _Request:
        warm = self._pool.handles[slot].warm
        if warm:
            for i, request in enumerate(self._queue):
                if request.fingerprint in warm:
                    del self._queue[i]
                    return request
        return self._queue.popleft()

    def _serve(self, slot: int, request: _Request) -> None:
        now = self.clock()
        queue_seconds = now - request.submitted_at
        self._queue_seconds.observe(queue_seconds)
        if request.queue_span is not None:
            request.queue_span.set(seconds=round(queue_seconds, 6)).finish()
        if request.expires_at is not None:
            remaining = request.expires_at - now
            if remaining <= 0:
                self._finish(
                    request,
                    GatewayResult(
                        ok=False,
                        error_code="shed_overload",
                        error="deadline expired while queued",
                        fingerprint=request.fingerprint,
                        queue_seconds=queue_seconds,
                        total_seconds=queue_seconds,
                    ),
                    "shed",
                )
                return
            timeout = remaining + self.config.timeout_grace
        else:
            remaining = None
            timeout = self.config.request_timeout
        call_span = self.tracer.span(
            "gateway.worker_call", parent=request.span, slot=slot
        )
        message = {
            "id": request.id,
            "sentence": request.sentence,
            "fingerprint": request.fingerprint,
            "payload": request.payload,
            "deadline": remaining,
            "max_derivations": self.config.max_derivations,
            "top_k": self.config.top_k,
            "config": self.config.translator_config,
            "faults": request.faults,
            "cache": self.config.cache,
            "telemetry": self.telemetry is not None,
        }
        if self.tracer.enabled:
            # The worker opens its spans under the worker_call span; the
            # finished records come back in the reply for adoption.
            message["trace"] = {
                "trace_id": call_span.trace_id,
                "parent_id": call_span.span_id,
            }
        fingerprint = request.fingerprint
        try:
            handle = self._pool.ensure(slot)
            started = self.clock()
            reply = handle.call(message, timeout)
        except WorkerTimedOut as exc:
            self._worker_died(
                request, slot, call_span, queue_seconds,
                "worker_timeout", str(exc), "timed_out",
            )
        except WorkerCrashed as exc:
            self._worker_died(
                request, slot, call_span, queue_seconds,
                "worker_crashed", str(exc), "crashed",
            )
        else:
            duration = self.clock() - started
            call_span.set(warm=reply["warm"]).finish()
            blob = reply.get("metrics")
            if blob is not None and self.telemetry is not None:
                # The worker's registry delta: fold it so this gateway's
                # /metrics speaks for the whole process tree.  Undecodable
                # blobs are counted and dropped inside the hub.
                self.telemetry.fold(blob)
            spans = reply.get("spans")
            if spans:
                # Worker clocks share no epoch with ours: shift the
                # records so the earliest lands at the call start (the
                # residual skew is one pipe send, microseconds).
                self.tracer.adopt(spans, align_to=call_span.start)
            self._call_seconds.observe(duration)
            self._pool.note_success(slot)
            handle.served += 1
            handle.warm.add(fingerprint)
            self._breakers.record_success(fingerprint)
            with self._ema_lock:
                self._ema_call_seconds = (
                    duration
                    if self._ema_call_seconds == 0.0
                    else 0.8 * self._ema_call_seconds + 0.2 * duration
                )
                self._ema_gauge.set(self._ema_call_seconds)
            result = GatewayResult(
                ok=reply["ok"],
                error_code=reply["error_code"],
                error=reply["error"],
                tier=reply["tier"],
                degraded=reply["degraded"],
                anytime=reply["anytime"],
                programs=[tuple(p) for p in reply["programs"]],
                n_candidates=reply["n_candidates"],
                top_formula=reply["top_formula"],
                elapsed=reply["elapsed"],
                budget_spent=reply["budget_spent"],
                queue_seconds=queue_seconds,
                total_seconds=self.clock() - request.submitted_at,
                worker_id=slot,
                fingerprint=fingerprint,
                warm=reply["warm"],
                service_cached=reply.get("cached", False),
            )
            if (
                request.cache_key is not None
                and result.ok
                and not result.degraded
                and not result.anytime
            ):
                # Clean full-fidelity answer: deadline-independent, safe
                # to replay verbatim for the next identical request.
                self._cache.put(
                    request.cache_key,
                    {
                        "tier": result.tier,
                        "programs": tuple(result.programs),
                        "n_candidates": result.n_candidates,
                        "top_formula": result.top_formula,
                        "elapsed": result.elapsed,
                        "budget_spent": result.budget_spent,
                    },
                )
                self._cache.observe_miss(duration)
            self._finish(request, result, "ok" if result.ok else "failed")

    def _worker_died(
        self,
        request: _Request,
        slot: int,
        call_span,
        queue_seconds: float,
        code: str,
        message: str,
        bucket: str,
    ) -> None:
        """Resolve a request whose worker crashed or hung.

        The trace tree stays complete: the worker's own spans died with
        it, so the gateway plants a ``worker_crashed`` / ``worker_timeout``
        error span where they would have been.
        """
        _log.warning(
            code,
            extra=log_fields(
                request_id=request.id, slot=slot,
                fingerprint=request.fingerprint,
            ),
        )
        self.tracer.span(code, parent=call_span, slot=slot).error(
            message
        ).finish()
        call_span.error(message).set(kind=code).finish()
        self._pool.note_crash(slot)  # a hung worker is killed, not reused
        self._note_breaker_failure(request.fingerprint)
        self._finish(
            request,
            GatewayResult(
                ok=False,
                error_code=code,
                error=message,
                fingerprint=request.fingerprint,
                queue_seconds=queue_seconds,
                total_seconds=self.clock() - request.submitted_at,
                worker_id=slot,
            ),
            bucket,
        )

    def _note_breaker_failure(self, fingerprint: str) -> None:
        """Feed the breaker; a closed → open trip declares every cached
        result for this workbook suspect and purges them."""
        state = self._breakers.record_failure(fingerprint)
        if state == OPEN:
            _log.warning(
                "circuit breaker opened",
                extra=log_fields(fingerprint=fingerprint),
            )
            if self._cache is not None:
                self._cache.invalidate(fingerprint)

    def _finish(
        self, request: _Request, result: GatewayResult, bucket: str
    ) -> None:
        self._count("completed", bucket)
        with self._cond:
            self._in_flight -= 1
            self._in_flight_gauge.set(self._in_flight)
        self._close_span(request, result)
        self._observe(request, result)
        request.pending._resolve(result)
