"""Per-workbook circuit breakers for the translation gateway.

A workbook whose requests repeatedly crash or hang workers (a pathological
sheet, a poisoned cache entry, an adversarial payload) must not keep
burning worker restarts while healthy traffic queues behind it.  The
gateway keys one :class:`CircuitBreaker` per workbook fingerprint:

* **closed** — requests flow; worker-level failures (crashes, hangs)
  increment a consecutive-failure counter, successes reset it;
* **open** — after ``failure_threshold`` consecutive failures the breaker
  opens and the gateway fast-fails requests for that fingerprint with a
  ``circuit_open`` coded result, without touching the queue or a worker;
* **half-open** — after ``reset_timeout`` seconds one probe request is
  admitted; success closes the breaker, failure re-opens it (and restarts
  the reset clock).

Only *worker-level* failures trip the breaker.  A structured translation
error (``deadline_exhausted``, ``empty_description``, ...) is a healthy
worker doing its job and counts as a success.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..obs.clock import monotonic

__all__ = ["BreakerBoard", "CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 2.0,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request for this key proceed right now?

        In the open state, the first call after ``reset_timeout`` flips to
        half-open and admits exactly one probe; concurrent calls keep
        failing fast until the probe reports back.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self.clock() - self._opened_at >= self.reset_timeout:
                    self._state = HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # half-open: one probe at a time
            if not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> str:
        """Count one worker-level failure; returns the resulting state (so
        callers can react to the closed -> open trip, e.g. by purging the
        fingerprint's cached results)."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self.clock()
            self._probe_in_flight = False
            return self._state


class BreakerBoard:
    """A lazy registry of one breaker per workbook fingerprint."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 2.0,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.failure_threshold, self.reset_timeout, self.clock
                )
                self._breakers[key] = breaker
            return breaker

    def allow(self, key: str) -> bool:
        return self.breaker(key).allow()

    def record_success(self, key: str) -> None:
        self.breaker(key).record_success()

    def record_failure(self, key: str) -> str:
        """Record a failure for ``key``; returns the breaker's new state."""
        return self.breaker(key).record_failure()

    def states(self) -> dict[str, str]:
        """Fingerprint → state snapshot for diagnostics."""
        with self._lock:
            items = list(self._breakers.items())
        return {key: breaker.state for key, breaker in items}
