"""Crash-isolated serving layer: the translation gateway.

``repro.serve`` puts :class:`~repro.runtime.TranslationService` behind a
multiprocessing worker pool with the properties a multi-user deployment
needs (ROADMAP: distribute the service):

* **crash containment** — a worker that dies or hangs mid-request yields
  a coded result (``worker_crashed`` / ``worker_timeout``) and the slot
  respawns with exponential backoff (:mod:`repro.serve.pool`);
* **admission control & load shedding** — a bounded deadline-aware queue
  that sheds doomed requests immediately (``shed_overload``)
  (:mod:`repro.serve.gateway`);
* **per-workbook circuit breakers** keyed by ``Workbook.fingerprint()``
  (``circuit_open``) (:mod:`repro.serve.breaker`), with the same
  fingerprint driving warm-worker routing and the worker-side translator
  cache (:mod:`repro.serve.fingerprint`);
* **memoised results** — with ``GatewayConfig(cache=True)`` clean
  rankings are cached under (normalised sentence, fingerprint, options)
  and repeats are answered in the front end before admission control,
  bypassing the pool entirely; breaker trips purge the offending
  fingerprint's entries (:mod:`repro.cache`, docs/CACHING.md).

Quickstart::

    from repro.serve import TranslationGateway
    from repro.dataset import build_sheet

    with TranslationGateway(build_sheet("payroll"), workers=2) as gw:
        result = gw.translate("sum the hours", deadline=0.5)
        print(result.top_formula, gw.stats().shed_rate)
"""

from .breaker import BreakerBoard, CircuitBreaker
from .fingerprint import (
    WorkbookRegistry,
    load_payload,
    workbook_fingerprint,
    workbook_payload,
)
from .gateway import (
    GatewayConfig,
    GatewayResult,
    GatewayStats,
    PendingResult,
    TranslationGateway,
)
from .pool import WorkerCrashed, WorkerPool, WorkerStats, WorkerTimedOut
from .worker import CRASH_EXIT_CODE, worker_main

__all__ = [
    "BreakerBoard",
    "CRASH_EXIT_CODE",
    "CircuitBreaker",
    "GatewayConfig",
    "GatewayResult",
    "GatewayStats",
    "PendingResult",
    "TranslationGateway",
    "WorkbookRegistry",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerStats",
    "WorkerTimedOut",
    "load_payload",
    "worker_main",
    "workbook_fingerprint",
    "workbook_payload",
]
