"""Miniature programming-by-example (Flash Fill) for the §4 interop."""

from .flashfill import (
    Concat,
    FlashFillProgram,
    Substring,
    TokenAt,
    fill_column,
    learn,
)

__all__ = [
    "Concat",
    "FlashFillProgram",
    "Substring",
    "TokenAt",
    "fill_column",
    "learn",
]
