"""A miniature Flash Fill: string transformations from examples.

Paper §4 ("Inter-operability with PBE"): the NLyze DSL cannot express "how
many papers have R as the first author", but the user can Flash-Fill a
first-author column from one example and then finish with natural language.
This module provides exactly enough PBE to run that scenario: it learns a
small string-transformation program from input/output example pairs and
applies it to a whole column.

Program space (searched most-specific-first, verified on all examples):

* ``TokenAt`` — split on a delimiter, take the i-th token (negative index
  counts from the end), e.g. first author of "a, b, c";
* ``Substring`` — a fixed-position slice (optionally anchored to the end);
* an optional case transform (upper / lower / title) over either;
* ``Concat`` of a constant prefix/suffix around one extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..errors import PbeError
from ..sheet import CellValue, Column, Table, ValueType

_DELIMITERS = (", ", ",", "; ", ";", " - ", "-", "/", " ")
_CASES = {
    "identity": lambda s: s,
    "upper": str.upper,
    "lower": str.lower,
    "title": str.title,
}


class Extraction(Protocol):
    def apply(self, text: str) -> str | None: ...

    def describe(self) -> str: ...


@dataclass(frozen=True)
class TokenAt:
    """Split on ``delimiter`` and take token ``index`` (may be negative)."""

    delimiter: str
    index: int
    case: str = "identity"

    def apply(self, text: str) -> str | None:
        parts = [p for p in text.split(self.delimiter) if p != ""]
        if not parts or not (-len(parts) <= self.index < len(parts)):
            return None
        return _CASES[self.case](parts[self.index].strip())

    def describe(self) -> str:
        position = (
            f"{self.index + 1}th" if self.index >= 0
            else f"{abs(self.index)}th-from-last"
        )
        suffix = "" if self.case == "identity" else f", {self.case}-cased"
        return f"take the {position} piece split by {self.delimiter!r}{suffix}"


@dataclass(frozen=True)
class Substring:
    """A fixed slice; ``from_end`` anchors the window to the string end."""

    start: int
    length: int
    from_end: bool = False
    case: str = "identity"

    def apply(self, text: str) -> str | None:
        if self.from_end:
            start = len(text) - self.start
        else:
            start = self.start
        if start < 0 or start + self.length > len(text):
            return None
        return _CASES[self.case](text[start:start + self.length])

    def describe(self) -> str:
        anchor = "from the end" if self.from_end else "from the start"
        return f"characters [{self.start}:+{self.length}] {anchor}"


@dataclass(frozen=True)
class Concat:
    """Constant prefix + one extraction + constant suffix."""

    prefix: str
    inner: Extraction
    suffix: str

    def apply(self, text: str) -> str | None:
        middle = self.inner.apply(text)
        if middle is None:
            return None
        return f"{self.prefix}{middle}{self.suffix}"

    def describe(self) -> str:
        return (
            f"{self.prefix!r} + ({self.inner.describe()}) + {self.suffix!r}"
        )


@dataclass(frozen=True)
class FlashFillProgram:
    """A learned transformation."""

    extraction: Extraction

    def apply(self, text: str) -> str:
        result = self.extraction.apply(text)
        if result is None:
            raise PbeError(f"program undefined on input {text!r}")
        return result

    def describe(self) -> str:
        return self.extraction.describe()


def _token_candidates(inp: str, out: str) -> list[Extraction]:
    out = out.strip()
    candidates: list[Extraction] = []
    for delimiter in _DELIMITERS:
        if delimiter not in inp:
            continue
        parts = [p.strip() for p in inp.split(delimiter) if p != ""]
        for case_name, case_fn in _CASES.items():
            for i, part in enumerate(parts):
                if case_fn(part) == out:
                    candidates.append(TokenAt(delimiter, i, case_name))
                    if i == len(parts) - 1:
                        candidates.append(TokenAt(delimiter, -1, case_name))
    return candidates


def _substring_candidates(inp: str, out: str) -> list[Extraction]:
    candidates: list[Extraction] = []
    for case_name, case_fn in _CASES.items():
        transformed = case_fn(inp)
        start = transformed.find(out)
        if start >= 0:
            candidates.append(Substring(start, len(out), case=case_name))
            candidates.append(
                Substring(len(inp) - start, len(out), from_end=True,
                          case=case_name)
            )
    return candidates


def _concat_candidates(inp: str, out: str) -> list[Extraction]:
    candidates: list[Extraction] = []
    # try every split of the output into prefix + extracted + suffix where
    # the middle comes from the input (bounded: prefixes/suffixes <= 8 chars)
    for p in range(0, min(len(out), 8) + 1):
        for s in range(0, min(len(out) - p, 8) + 1):
            prefix, suffix = out[:p], out[len(out) - s:] if s else ""
            middle = out[p:len(out) - s] if s else out[p:]
            if not middle:
                continue
            if not (p or s):
                continue
            for inner in _token_candidates(inp, middle) + _substring_candidates(
                inp, middle
            ):
                candidates.append(Concat(prefix, inner, suffix))
    return candidates


def learn(examples: list[tuple[str, str]]) -> FlashFillProgram:
    """Learn a program consistent with every example.

    Candidates are proposed from the first example and verified against the
    rest, token extractions first (they generalize best, like Flash Fill's
    ranking preferring token-based programs).
    """
    if not examples:
        raise PbeError("at least one example is required")
    first_in, first_out = examples[0]
    proposals: list[Extraction] = []
    proposals += _token_candidates(first_in, first_out)
    proposals += _substring_candidates(first_in, first_out)
    proposals += _concat_candidates(first_in, first_out)
    for candidate in proposals:
        if all(candidate.apply(i) == o for i, o in examples):
            return FlashFillProgram(candidate)
    raise PbeError("no consistent transformation found")


def fill_column(
    table: Table,
    source_column: str,
    new_column: str,
    examples: list[tuple[str, str]],
) -> FlashFillProgram:
    """Learn from examples and append a derived text column to ``table`` —
    the Flash Fill gesture of giving one or two examples and letting the
    system complete the column."""
    program = learn(examples)
    source = table.column_values(source_column)
    values = [
        CellValue.text(program.apply(str(v.payload))) if not v.is_empty
        else CellValue.empty()
        for v in source
    ]
    _append_column(table, Column(new_column, ValueType.TEXT), values)
    return program


def _append_column(table: Table, column: Column, values) -> None:
    """Widen a table by one column (support code for PBE interop)."""
    if table.has_column(column.name):
        raise PbeError(f"column {column.name!r} already exists")
    if len(values) != table.n_rows:
        raise PbeError("value count must match the row count")
    table._columns.append(column)
    table._index[column.key] = len(table._columns) - 1
    from ..sheet.cell import Cell

    for row, value in zip(table._rows, values):
        row.append(Cell(value=value))
