"""NLyze reproduction: natural-language programming for spreadsheets.

Reimplementation of Gulwani & Marron, "NLyze: Interactive Programming by
Natural Language for SpreadSheet Data Analysis and Manipulation" (SIGMOD
2014).  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.

Quickstart::

    from repro import NLyzeSession
    from repro.dataset import build_sheet

    session = NLyzeSession(build_sheet("payroll"))
    step = session.ask("sum the totalpay for the capitol hill baristas")
    print(step.render())            # annotated candidates + Excel formulas
    result = session.accept(step)   # execute the top candidate
    print(result.display())
"""

from .cache import CacheStats, ResultCache
from .dsl import Evaluator, ExcelEmitter, TypeChecker, paraphrase
from .errors import ReproError
from .runtime import Budget
from .runtime.service import ServiceResult, TranslationService
from .session import NLyzeSession
from .sheet import CellValue, Table, ValueType, Workbook
from .translate import Candidate, Translator, TranslatorConfig

__version__ = "1.3.0"

__all__ = [
    "Budget",
    "CacheStats",
    "Candidate",
    "CellValue",
    "Evaluator",
    "ExcelEmitter",
    "GatewayResult",
    "NLyzeSession",
    "ReproError",
    "ResultCache",
    "ServiceResult",
    "Table",
    "TranslationGateway",
    "TranslationService",
    "Translator",
    "TranslatorConfig",
    "TypeChecker",
    "ValueType",
    "Workbook",
    "paraphrase",
    "__version__",
]

_SERVE_NAMES = {"TranslationGateway", "GatewayResult"}


def __getattr__(name: str):
    # The serving layer spawns processes and threads; load it only when
    # a caller actually reaches for it.
    if name in _SERVE_NAMES:
        from . import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
