"""The translation algorithm (paper §3): tokenizer, sheet context, pattern
rules, type-directed synthesis, ranking, and the main dynamic program."""

from .alignment import align, quick_reject
from .context import ColumnMatch, SheetContext, ValueMatch
from .derivation import Derivation
from .excel_input import formula_seeds, parse_range
from .explain import Explanation, explain
from .lexicon import SYNONYMS, SpellCorrector, damerau_levenshtein
from .patterns import (
    ColorPat,
    ColumnPat,
    LiteralPat,
    MustPat,
    OptPat,
    SpanPat,
    ValuePat,
    parse_template,
)
from .rule_translator import RuleTranslator
from .rules import Rule, RuleSet, make_rule
from .synthesis import and_merge, comb_all, synthesize
from .tokenizer import Token, tokenize
from .translator import Candidate, Translator, TranslatorConfig, ablation_config

__all__ = [
    "Candidate",
    "ColorPat",
    "ColumnMatch",
    "ColumnPat",
    "Derivation",
    "Explanation",
    "explain",
    "formula_seeds",
    "parse_range",
    "LiteralPat",
    "MustPat",
    "OptPat",
    "Rule",
    "RuleSet",
    "RuleTranslator",
    "SYNONYMS",
    "SheetContext",
    "SpanPat",
    "SpellCorrector",
    "Token",
    "Translator",
    "TranslatorConfig",
    "ValueMatch",
    "ValuePat",
    "ablation_config",
    "align",
    "and_merge",
    "comb_all",
    "damerau_levenshtein",
    "make_rule",
    "parse_template",
    "quick_reject",
    "synthesize",
    "tokenize",
]
