"""Pattern rules: ``Template -> partial expression`` with a score.

A rule aligns its template against an input fragment and instantiates its
partial expression by filling holes from the aligned pattern ranges (paper
§3.3).  Holes whose idents match no template pattern stay *unbound* — they
are later filled by the synthesis algorithm, which is exactly how the two
translators interleave.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import ast
from ..dsl.holes import holes_of
from ..errors import RuleParseError
from .patterns import Pattern, parse_template


@dataclass(frozen=True)
class Rule:
    """One translation rule."""

    name: str
    template: tuple[Pattern, ...]
    expr: ast.Expr
    score: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise RuleParseError(f"rule {self.name!r}: score out of [0, 1]")
        pattern_idents = {
            p.ident for p in self.template if p.ident is not None
        }
        hole_idents = {h.ident for h in holes_of(self.expr)}
        dangling = pattern_idents - hole_idents
        if dangling:
            raise RuleParseError(
                f"rule {self.name!r}: template idents {sorted(dangling)} "
                "have no matching hole in the expression"
            )

    @property
    def bound_idents(self) -> frozenset[int]:
        """Hole idents the template binds; the rest stay open for synthesis."""
        return frozenset(
            p.ident for p in self.template if p.ident is not None
        )

    def render(self) -> str:
        lhs = " ".join(p.render() for p in self.template)
        return f"{lhs} -> {self.expr}  [{self.score:.2f}]"


def make_rule(
    name: str, template_text: str, expr: ast.Expr, score: float = 0.7
) -> Rule:
    """Build a rule from concrete template syntax."""
    return Rule(name, parse_template(template_text), expr, score)


@dataclass
class RuleSet:
    """An ordered collection of rules with name lookup."""

    rules: list[Rule] = field(default_factory=list)

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def by_name(self, name: str) -> Rule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)
