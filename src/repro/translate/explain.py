"""Score explanations: why a candidate ranked where it did.

The §3.4 ranking multiplies three opaque factors; this module renders the
breakdown a developer (or a curious user) needs to audit a ranking — the
derivation tree with per-node production scores, the coverage accounting
(which words were ignored and what they cost), and the mix statistics.

``explain(candidate, translator)`` returns a :class:`Explanation`;
``Explanation.render()`` is the human-readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .derivation import Derivation
from .translator import Candidate, Translator


@dataclass
class CoverageLine:
    word: str
    position: int
    used: bool
    weight: float


@dataclass
class Explanation:
    """A full scoring breakdown for one candidate."""

    candidate: Candidate
    prod_score: float
    cover_score: float
    mix_score: float
    final_score: float
    coverage: list[CoverageLine] = field(default_factory=list)
    tree_lines: list[str] = field(default_factory=list)

    @property
    def ignored_weight(self) -> float:
        return sum(l.weight for l in self.coverage if not l.used)

    def render(self) -> str:
        out = [f"program: {self.candidate.program}"]
        out.append(
            f"score = ProdSc {self.prod_score:.3f}"
            f" x CoverSc {self.cover_score:.3f}"
            f" x MixSc {self.mix_score:.3f}"
            f" = {self.final_score:.4f}"
        )
        out.append("coverage:")
        for line in self.coverage:
            mark = " " if line.used else "~"
            out.append(
                f"  {mark} {line.word:<16} weight {line.weight:.1f}"
                f"{'' if line.used else '  (ignored)'}"
            )
        out.append(
            f"  ignored weight total: {self.ignored_weight:.1f}"
            f" -> CoverSc = 1/max(ignored^2, 1) = {self.cover_score:.3f}"
        )
        out.append("derivation:")
        out.extend(self.tree_lines)
        return "\n".join(out)


def _tree_lines(derivation: Derivation, indent: int = 2) -> list[str]:
    pad = " " * indent
    kind = derivation.kind
    line = (
        f"{pad}{kind:<5} {derivation.expr}  "
        f"[node {derivation.node_score:.3f}, rule {derivation.rule_score:.2f}"
        f", words {sorted(derivation.used)}]"
    )
    out = [line]
    for child in derivation.children:
        out.extend(_tree_lines(child, indent + 2))
    return out


def explain(candidate: Candidate, translator: Translator) -> Explanation:
    """Build the scoring breakdown for a candidate produced by
    ``translator`` (the same translator: the word weights come from its
    sheet context)."""
    derivation = candidate.derivation
    weights = [translator._word_weight(t) for t in candidate.tokens]
    coverage = [
        CoverageLine(
            word=token.text,
            position=token.index,
            used=token.index in derivation.used,
            weight=weights[token.index],
        )
        for token in candidate.tokens
    ]
    cover = derivation.cover_score(weights)
    return Explanation(
        candidate=candidate,
        prod_score=derivation.ranking_prod_score,
        cover_score=cover,
        mix_score=derivation.mix_score,
        final_score=derivation.ranking_prod_score * cover * derivation.mix_score,
        coverage=coverage,
        tree_lines=_tree_lines(derivation),
    )
