"""The operator lexicon and spell correction.

The paper derives synonym sets from WordNet ("Lt -> {less, smaller, under,
...}") for rule learning, and the UI red-underlines misspelled words, which
implies a spell corrector over the sheet + operator vocabulary.  Both live
here, offline:

* :data:`SYNONYMS` maps each DSL operator concept to the English words that
  evoke it (used by keyword seeding, rule learning, and paraphrase checks);
* :class:`SpellCorrector` corrects tokens against a vocabulary using
  Damerau-Levenshtein distance.
"""

from __future__ import annotations

from dataclasses import dataclass

# Operator concept -> surface words.  These are the curated stand-in for the
# paper's WordNet synsets; hard-mode generator vocabulary ("tally") is
# deliberately *absent* so the §5.2 study stresses out-of-vocabulary input.
SYNONYMS: dict[str, frozenset[str]] = {
    name: frozenset(words)
    for name, words in {
        "sum": {"sum", "total", "totals", "add", "adds", "sums"},
        "avg": {"average", "mean", "avg"},
        "min": {"minimum", "min", "smallest", "lowest", "least"},
        "max": {"maximum", "max", "largest", "highest", "biggest",
                "greatest", "top"},
        "count": {"count", "many", "number"},
        "lt": {"less", "under", "below", "smaller", "fewer", "<"},
        "gt": {"greater", "more", "over", "above", "bigger", "larger",
               "exceeds", ">"},
        "eq": {"equals", "equal", "is", "=", "matches"},
        "not": {"not", "isn't", "aren't", "don't", "excluding", "except",
                "without"},
        "and": {"and", "both", "but"},
        "or": {"or", "either"},
        "add": {"plus", "add", "added", "sum"},
        "sub": {"minus", "subtract", "less"},
        "mult": {"times", "multiply", "multiplied", "product", "*", "x"},
        "div": {"divide", "divided", "per", "/"},
        "lookup": {"lookup", "look", "find", "get", "fetch"},
        "select": {"select", "selected", "selection", "highlight",
                   "highlighted", "pick", "grab", "show", "get", "choose",
                   "active"},
        "format": {"color", "paint", "mark", "make", "turn", "format",
                   "bold", "underline", "italicize"},
        "rows": {"rows", "row", "records", "entries", "lines", "cells",
                 "values"},
        "average_ref": {"average", "mean"},
    }.items()
}


def concept_of(word: str) -> list[str]:
    """All operator concepts a word evokes (a word may evoke several:
    "less" is both Lt and Sub)."""
    return [name for name, words in SYNONYMS.items() if word in words]


def damerau_levenshtein(a: str, b: str, cap: int = 3) -> int:
    """Edit distance with transpositions, early-capped at ``cap``.

    The cap keeps the corrector fast: once a row's minimum exceeds the cap
    we can stop, since distances only grow.
    """
    if a == b:
        return 0
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous_previous: list[int] = []
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
            if (
                i > 1
                and j > 1
                and ca == b[j - 2]
                and a[i - 2] == cb
            ):
                current[j] = min(current[j], previous_previous[j - 2] + 1)
        if min(current) > cap:
            return cap + 1
        previous_previous, previous = previous, current
    # Clamp to cap+1 so results beyond the cap are consistent regardless of
    # whether the early exit fired (keeps the function symmetric).
    return min(previous[len(b)], cap + 1)


@dataclass(frozen=True)
class Correction:
    """A successful spell correction."""

    word: str
    distance: int


class SpellCorrector:
    """Corrects words against a fixed vocabulary.

    Tolerance scales with word length the way UI spell checkers do: short
    words allow distance 1, longer words distance 2.  Words of fewer than
    four characters are never corrected (too many false positives).
    """

    def __init__(self, vocabulary: set[str], preferred: set[str] | None = None) -> None:
        self._vocabulary = set(vocabulary)
        self._preferred = set(preferred or ()) & self._vocabulary
        self._by_length: dict[int, list[str]] = {}
        for word in sorted(self._vocabulary):
            self._by_length.setdefault(len(word), []).append(word)

    def __contains__(self, word: str) -> bool:
        return word in self._vocabulary

    def correct(self, word: str) -> Correction | None:
        """The closest vocabulary word within tolerance, or ``None``.

        Exact members return distance 0; unknown short words and words with
        no close match return ``None``.  Ties on distance resolve in favour
        of *preferred* words (sheet content beats function words: a typo of
        "units" must not become "its").
        """
        if word in self._vocabulary:
            return Correction(word, 0)
        if len(word) < 4 or not word.isalpha():
            return None
        tolerance = 1 if len(word) < 7 else 2
        best: Correction | None = None
        best_preferred = False
        for length in range(len(word) - tolerance, len(word) + tolerance + 1):
            for candidate in self._by_length.get(length, ()):
                d = damerau_levenshtein(word, candidate, cap=tolerance)
                if d > tolerance:
                    continue
                preferred = candidate in self._preferred
                better = (
                    best is None
                    or d < best.distance
                    or (d == best.distance and preferred and not best_preferred)
                )
                if better:
                    best = Correction(candidate, d)
                    best_preferred = preferred
                    if d == 1 and preferred:
                        return best
        return best


def keyword_vocabulary() -> set[str]:
    """Every operator surface word (the non-sheet part of the correction
    vocabulary)."""
    vocab: set[str] = set()
    for words in SYNONYMS.values():
        vocab.update(w for w in words if w.isalpha())
    return vocab
