"""Keyword-programming seeds.

Keyword programming "generate[s] all valid programs that can be obtained by
combinations of user provided tokens or their representative keywords".  The
combination engine is :mod:`repro.translate.synthesis`; this module produces
what it combines:

* **atom seeds** for token spans: literals (with both number and currency
  readings — the type checker picks, per the paper's §3.2 example), cell
  references, column references (including the "column H" letter form),
  sheet values, and table references;
* **implicit-filter seeds**: a bare value span like "capitol hill" also
  seeds ``Eq(location, capitol hill)`` for each column containing the value
  — the spreadsheet-context interpretation of implicit references;
* **operator seeds** for keywords: "sum" seeds the partial expression
  ``Sum(□C, GetTable(), □G)``, "less" seeds ``Lt(□C, □G)``, a color word
  seeds both a formatting program and a ``GetFormat`` row source, etc.
"""

from __future__ import annotations

from ..dsl import ast
from ..sheet import CellValue, FormatFn
from .context import SheetContext
from .derivation import ATOM, Derivation
from .tokenizer import Token

# Seeds are weaker evidence than matched pattern rules; these weights feed
# RScore for synthesized nodes.
OPERATOR_SEED_SCORE = 0.55
IMPLICIT_FILTER_SCORE = 0.85
IMPLICIT_LOOKUP_SCORE = 0.8
IMPLICIT_JOIN_SCORE = 0.78
CONTEXT_ATOM_SCORE = 0.9

_H = ast.Hole
_C = ast.HoleKind.COLUMN
_G = ast.HoleKind.GENERAL

_REDUCE_SEEDS = {
    "sum": ast.ReduceOp.SUM,
    "avg": ast.ReduceOp.AVG,
    "min": ast.ReduceOp.MIN,
    "max": ast.ReduceOp.MAX,
}
_COMPARE_SEEDS = {"lt": ast.RelOp.LT, "gt": ast.RelOp.GT, "eq": ast.RelOp.EQ}
_BINOP_SEEDS = {
    "add": ast.BinaryOp.ADD,
    "sub": ast.BinaryOp.SUB,
    "mult": ast.BinaryOp.MULT,
    "div": ast.BinaryOp.DIV,
}

# Words that evoke each seed family.  Deliberately narrower than the rule
# set's synonym coverage: seeds are the high-recall fallback, and flooding
# them on common words ("is") destroys precision.
_SEED_WORDS = {
    "sum": {"sum", "total", "totals", "add", "adds", "sums"},
    "avg": {"average", "mean", "avg"},
    "min": {"minimum", "min", "smallest", "lowest", "least"},
    "max": {"maximum", "max", "largest", "highest", "biggest", "greatest"},
    "count": {"count", "many", "number"},
    "lt": {"less", "under", "below", "smaller", "fewer", "<"},
    "gt": {"greater", "more", "over", "above", "bigger", "larger", ">"},
    "eq": {"equals", "="},
    "not": {"not", "excluding", "except", "isn't", "don't"},
    "or": {"or", "either"},
    "add": {"plus", "add", "added", "combined"},
    "sub": {"minus", "subtract"},
    "mult": {"times", "multiply", "multiplied", "*", "x"},
    "div": {"divided", "divide", "per", "/"},
    "lookup": {"lookup", "look"},
    "select": {"select", "highlight", "show", "pick", "grab", "which"},
    "selection": {"selected", "selection", "active"},
}


def operator_seeds(token: Token, position: int) -> list[Derivation]:
    """Partial-expression seeds evoked by one keyword token."""
    word = token.text
    used = frozenset([position])
    out: list[Derivation] = []

    def seed(expr: ast.Expr) -> None:
        out.append(
            Derivation(
                expr=expr, used=used, kind=ATOM, rule_score=OPERATOR_SEED_SCORE
            )
        )

    for family, op in _REDUCE_SEEDS.items():
        if word in _SEED_WORDS[family]:
            seed(ast.Reduce(op, _H(1, _C), ast.GetTable(), _H(2, _G)))
            # closed variant: an unconditional reduction is a complete
            # program once the column is known ("sum the hours").
            seed(ast.Reduce(op, _H(1, _C), ast.GetTable(), ast.TrueF()))
    if word in _SEED_WORDS["count"]:
        seed(ast.Count(ast.GetTable(), _H(1, _G)))
        seed(ast.Count(ast.GetTable(), ast.TrueF()))
    if word in _SEED_WORDS["max"]:
        # "the largest X" as a row selector: Eq(X, Max(X)) — keyword
        # programming's reading of superlatives.
        seed(
            ast.Compare(
                ast.RelOp.EQ,
                _H(1, _C),
                ast.Reduce(ast.ReduceOp.MAX, _H(1, _C), ast.GetTable(),
                           ast.TrueF()),
            )
        )
    if word in {"nonzero"}:
        from ..sheet.values import CellValue as _CV

        seed(
            ast.Compare(
                ast.RelOp.GT, _H(1, _C), ast.Lit(_CV.number(0))
            )
        )
    for family, op in _COMPARE_SEEDS.items():
        if word in _SEED_WORDS[family]:
            seed(ast.Compare(op, _H(1, _C), _H(2, _G)))
            seed(ast.Compare(op, _H(1, _C), _H(2, _C)))
    if word in _SEED_WORDS["not"]:
        seed(ast.Not(_H(1, _G)))
    if word in _SEED_WORDS["or"]:
        seed(ast.Or(_H(1, _G), _H(2, _G)))
    for family, op in _BINOP_SEEDS.items():
        if word in _SEED_WORDS[family]:
            seed(ast.BinOp(op, _H(1, _G), _H(2, _G)))
    if word in _SEED_WORDS["lookup"]:
        seed(ast.Lookup(_H(1, _G), _H(2, _G), _H(3, _C), _H(4, _C)))
    if word in _SEED_WORDS["select"]:
        seed(ast.MakeActive(ast.SelectRows(ast.GetTable(), _H(1, _G))))
    if word in _SEED_WORDS["selection"]:
        out.append(
            Derivation(
                expr=ast.GetActive(), used=used, kind=ATOM,
                rule_score=CONTEXT_ATOM_SCORE,
            )
        )
    color = SheetContext.match_color(word)
    if color is not None:
        spec = ast.FormatSpec((FormatFn.color(color),))
        seed(
            ast.FormatCells(spec, ast.SelectRows(ast.GetTable(), _H(1, _G)))
        )
        out.append(
            Derivation(
                expr=ast.GetFormat(spec), used=used, kind=ATOM,
                rule_score=CONTEXT_ATOM_SCORE,
            )
        )
    return out


def literal_seeds(token: Token, position: int) -> list[Derivation]:
    """Literal readings of one token (number and currency variants — the
    Valid check later selects whichever fits, per paper §3.2)."""
    used = frozenset([position])
    out: list[Derivation] = []
    if token.is_cellref:
        out.append(
            Derivation(expr=ast.CellRef(token.text.upper()), used=used)
        )
        return out
    lit = token.literal
    if lit is None:
        return out
    out.append(Derivation(expr=ast.Lit(lit), used=used))
    if lit.type.value == "number":
        out.append(
            Derivation(expr=ast.Lit(CellValue.currency(lit.payload)), used=used)
        )
    return out


def column_seeds(
    ctx: SheetContext, tokens: list[Token], start: int, end: int, offset: int
) -> list[Derivation]:
    """Column-reference readings of the span ``tokens[start:end]``.

    ``offset`` converts fragment positions to absolute sentence positions.
    Direct header matches only — the ResolveCol value fallback is reserved
    for rule C-holes, where the rule context disambiguates.
    """
    words = tuple(t.text for t in tokens[start:end])
    positions = frozenset(range(offset + start, offset + end))
    out: list[Derivation] = []
    if len(words) == 2 and words[0] == "column":
        match = ctx.column_by_letter(words[1])
        if match is not None:
            out.append(
                Derivation(
                    expr=_column_ref(ctx, match.table, match.column),
                    used=positions,
                    used_cols=positions,
                )
            )
            return out
    default = ctx.workbook.default_table
    for match in ctx.match_column(words):
        if match.via_value:
            continue
        out.append(
            Derivation(
                expr=_column_ref(ctx, match.table, match.column),
                used=positions,
                used_cols=positions,
            )
        )
        if match.table != default.name:
            out.extend(
                _join_seeds(ctx, match.table, match.column, positions)
            )
    return out


def _join_seeds(
    ctx: SheetContext, side_table: str, out_column: str, positions: frozenset[int]
) -> list[Derivation]:
    """Complete vector-join readings of a side-table column mention.

    "the payrate" (a PayRates column) seeds
    ``Lookup(title, GetTable(PayRates), title, payrate)`` for every key
    column shared (by name and type) between the default table and the side
    table — the implicit single-column join of "for each employee lookup
    the payrate".
    """
    default = ctx.workbook.default_table
    side = ctx.workbook.table(side_table)
    out: list[Derivation] = []
    for key in side.columns:
        if key.name == out_column:
            continue
        if not default.has_column(key.name):
            continue
        if default.column(key.name).dtype is not key.dtype:
            continue
        out.append(
            Derivation(
                expr=ast.Lookup(
                    ast.ColumnRef(default.column(key.name).name),
                    ast.GetTable(side.name),
                    ast.ColumnRef(key.name),
                    ast.ColumnRef(out_column),
                ),
                used=positions,
                used_cols=positions,
                kind=ATOM,
                rule_score=IMPLICIT_JOIN_SCORE,
            )
        )
    return out


def value_seeds(
    ctx: SheetContext, tokens: list[Token], start: int, end: int, offset: int
) -> list[Derivation]:
    """Value readings of a span.

    A value span seeds three interpretations, all context-driven:

    * the bare value literal,
    * the implicit filter ``Eq(column-containing-value, value)``,
    * when the value lives in a *side* table, a partial scalar lookup
      ``Lookup(value, GetTable(side), key-column, □C)`` — "the payrate for
      chef" finds chef in PayRates.title and leaves the output column open.
    """
    words = tuple(t.text for t in tokens[start:end])
    positions = frozenset(range(offset + start, offset + end))
    default = ctx.workbook.default_table.name
    out: list[Derivation] = []
    seen_values: set[str] = set()
    for match in ctx.match_value(words):
        lit = ast.Lit(CellValue.text(match.value))
        if match.value not in seen_values:
            seen_values.add(match.value)
            out.append(Derivation(expr=lit, used=positions))
        out.append(
            Derivation(
                expr=ast.Compare(
                    ast.RelOp.EQ,
                    _column_ref(ctx, match.table, match.column),
                    lit,
                ),
                used=positions,
                kind=ATOM,
                rule_score=IMPLICIT_FILTER_SCORE,
            )
        )
        if match.table != default:
            out.append(
                Derivation(
                    expr=ast.Lookup(
                        lit,
                        ast.GetTable(match.table),
                        ast.ColumnRef(match.column),
                        _H(1, _C),
                    ),
                    used=positions,
                    kind=ATOM,
                    rule_score=IMPLICIT_LOOKUP_SCORE,
                )
            )
    return out


def table_seeds(ctx: SheetContext, token: Token, position: int) -> list[Derivation]:
    """A token naming a workbook table seeds ``GetTable(name)``."""
    out: list[Derivation] = []
    for table in ctx.workbook.tables:
        if table.name.lower() == token.text:
            out.append(
                Derivation(
                    expr=ast.GetTable(table.name),
                    used=frozenset([position]),
                    kind=ATOM,
                    rule_score=CONTEXT_ATOM_SCORE,
                )
            )
    return out


def _column_ref(ctx: SheetContext, table: str, column: str) -> ast.ColumnRef:
    """A ColumnRef with the table qualifier only when it is not the default
    table (matching how gold programs are written)."""
    if table == ctx.workbook.default_table.name:
        return ast.ColumnRef(column)
    return ast.ColumnRef(column, table)
