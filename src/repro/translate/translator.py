"""The main translation algorithm (paper Algo 1).

Bottom-up dynamic programming over contiguous sentence fragments.  For every
span ``[i, j)`` (increasing width):

1. seed keyword-programming atoms and operator partial expressions,
2. apply the pattern rules (``Rule``, Algo 3),
3. union the two maximal sub-spans and close under type-directed
   combination (``Synth``, Algo 2),
4. prune to a beam.

The final span's derivations are filtered to complete well-typed programs
and ranked by ``ProdSc x CoverSc x MixSc`` (§3.4).

The ablation switches in :class:`TranslatorConfig` reproduce the paper's
Table 3 rows: rules-only, synthesis-only, and production-score-only ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import ast
from ..dsl.evaluator import Evaluator, ProgramResult
from ..dsl.excel import ExcelEmitter
from ..dsl.paraphrase import paraphrase
from ..dsl.types import TypeChecker
from ..errors import BudgetExceededError, TranslationError
from ..obs.trace import NULL_TRACER
from ..runtime.budget import Budget
from ..runtime.faults import fault_point
from ..sheet import Workbook
from .context import SheetContext
from .derivation import Derivation
from .rule_translator import RuleTranslator
from .rules import RuleSet
from .seeds import column_seeds, literal_seeds, operator_seeds, table_seeds, value_seeds
from .synthesis import synthesize
from .tokenizer import Token, tokenize


@dataclass(frozen=True)
class TranslatorConfig:
    """Knobs for the translation pipeline.

    ``use_rules`` / ``use_synthesis`` / ``full_ranking`` select the Table 3
    ablation rows; the remaining fields bound work per span (the paper's C#
    implementation brute-forces more; Python needs a beam, and the defaults
    are generous enough that results are stable — see the ablation bench).
    """

    use_rules: bool = True
    use_synthesis: bool = True
    full_ranking: bool = True
    use_cover_score: bool = True
    use_mix_score: bool = True
    # §7 future-work extension: similarity matching for column names
    # ("overtime hours" -> othours, "per capita gdp" -> gdppercapita).
    fuzzy_columns: bool = False
    beam_size: int = 110
    max_alignments: int = 16
    synth_max_new: int = 96
    max_results: int = 10


@dataclass
class Candidate:
    """One ranked translation result."""

    program: ast.Expr
    score: float
    derivation: Derivation
    tokens: list[Token] = field(repr=False, default_factory=list)

    def excel(self, workbook: Workbook) -> str:
        return ExcelEmitter(workbook).emit(self.program)

    def paraphrase(self) -> str:
        return paraphrase(self.program)

    def execute(self, workbook: Workbook, place: bool = True) -> ProgramResult:
        return Evaluator(workbook).run(self.program, place=place)


class Translator:
    """Translates natural-language descriptions against one workbook."""

    def __init__(
        self,
        workbook: Workbook,
        rules: RuleSet | None = None,
        config: TranslatorConfig | None = None,
    ) -> None:
        if rules is None:
            from ..rules import builtin_rules

            rules = builtin_rules()
        self.workbook = workbook
        self.config = config or TranslatorConfig()
        self.ctx = SheetContext(
            workbook,
            fuzzy_columns=self.config.fuzzy_columns,
            extra_vocabulary=_rule_vocabulary(rules),
        )
        self.checker = TypeChecker(workbook, content_check=True)
        from .lexicon import keyword_vocabulary

        self._keyword_vocab = keyword_vocabulary()
        self.rule_translator = RuleTranslator(
            rules, self.ctx, self.checker,
            max_alignments=self.config.max_alignments,
        )

    # -- public API --------------------------------------------------------------

    def translate(
        self,
        sentence: str,
        budget: Budget | None = None,
        tracer=None,
        progress=None,
    ) -> list[Candidate]:
        """A ranked list of candidate programs for ``sentence``.

        ``budget`` (optional) bounds the work: the DP polls it at span and
        stage checkpoints, and when it trips the translator switches to the
        *anytime* path — ranking every complete program derived so far
        (across all spans, including the partially processed one) instead
        of raising.  Callers detect the switch via ``budget.exhausted``.
        An unlimited budget is behaviour-identical to no budget.

        ``tracer`` (optional, :class:`repro.obs.Tracer`) records per-stage
        spans — tokenize, then seeds/rules/synthesis per sentence span,
        then ranking.  The default is the no-op tracer (docs/OBSERVABILITY.md).

        ``progress`` (optional, ``Callable[[list[Candidate]], None]``) is
        the *anytime-improvement hook*: after each completed DP width row
        it receives the current anytime ranking (the union of every
        complete program derived so far, ranked by the ordinary scorer).
        This is what streams the paper-§4 refining list over the wire
        (docs/HTTP.md) — the final returned ranking is unchanged, and with
        ``progress=None`` (the default) the path costs one ``is None``
        check per row.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span("translate") as root:
            with tracer.span("translate.tokenize"):
                tokens = self.prepare_tokens(sentence)
                self._validate_tokens(tokens)
                fault_point("tokenize")
            if budget is None:
                budget = Budget()
            n = len(tokens)
            root.set(tokens=n)
            tmap: dict[tuple[int, int], list[Derivation]] = {}
            # Rules that can match some fragment of this sentence — the
            # per-span quick-reject scan then only sees plausible rules.
            active_rules = None
            if self.config.use_rules and ast.hotpath_enabled():
                active_rules = self.rule_translator.sentence_rules(tokens)

            try:
                for width in range(1, n + 1):
                    for i in range(0, n - width + 1):
                        j = i + width
                        budget.checkpoint("span")
                        tmap[(i, j)] = self._translate_span(
                            tokens, i, j, tmap, budget, tracer,
                            active_rules,
                        )
                    if progress is not None and width < n:
                        # Anytime-improvement hook: the ranking over the
                        # partial table.  Skipped for the final row, whose
                        # ranking is the ordinary return value below.
                        progress(self._rank_anytime(tmap, tokens))
            except BudgetExceededError:
                root.set(anytime=True)
                with tracer.span("translate.rank", anytime=True) as rank:
                    candidates = self._rank_anytime(tmap, tokens)
                    rank.set(candidates=len(candidates))
                    return candidates

            fault_point("ranking")
            final = tmap[(0, n)]
            with tracer.span(
                "translate.rank", derivations=len(final)
            ) as rank:
                candidates = self._rank(final, tokens)
                rank.set(candidates=len(candidates))
                return candidates

    # Guard rails for degenerate input: the DP is O(n^3) in sentence length,
    # so a runaway description must be rejected up front, and a description
    # with no translatable words can never produce a program.
    MAX_TOKENS = 200

    def _validate_tokens(self, tokens: list[Token]) -> None:
        if not tokens:
            raise TranslationError(
                "empty description", code="empty_description"
            )
        if len(tokens) > self.MAX_TOKENS:
            raise TranslationError(
                f"description too long: {len(tokens)} tokens "
                f"(limit {self.MAX_TOKENS})",
                code="description_too_long",
            )
        if not any(ch.isalnum() for t in tokens for ch in t.text):
            raise TranslationError(
                "description contains only symbols", code="symbols_only"
            )

    def prepare_tokens(self, sentence: str) -> list[Token]:
        """Tokenize and spell-correct against the sheet + operator
        vocabulary (corrected tokens keep their original for the UI).

        A token is left alone when it joins with a neighbour into a column
        reference ("unit price" -> ``unitprice``) — correcting "unit" to the
        ``units`` column would destroy the joint match.
        """
        raw = tokenize(sentence)
        out: list[Token] = []
        for k, token in enumerate(raw):
            known = (
                token.text in self.ctx.corrector
                # inflections of known words are known, not typos:
                # "baristas", "selected", "multiplying"
                or (
                    token.text.endswith("s")
                    and token.text[:-1] in self.ctx.corrector
                )
                or (
                    token.text.endswith("ed")
                    and token.text[:-2] in self.ctx.corrector
                )
                or (
                    token.text.endswith("ing")
                    and token.text[:-3] in self.ctx.corrector
                )
            )
            if (
                token.literal is None
                and not token.is_cellref
                and not token.is_symbol
                and not known
                and not self._joins_with_neighbor(raw, k)
            ):
                correction = self.ctx.corrector.correct(token.text)
                if correction is not None and correction.distance > 0:
                    token = token.with_correction(correction.word)
            out.append(token)
        # Warm the per-sentence n-gram seed index: every span the DP will
        # probe for column/value matches becomes a dict hit (no-op when the
        # hot path is disabled).
        self.ctx.index_sentence(tuple(t.text for t in out))
        return out

    def _joins_with_neighbor(self, tokens: list[Token], k: int) -> bool:
        word = tokens[k].text
        neighbors = []
        if k > 0:
            neighbors.append((tokens[k - 1].text, word))
        if k + 1 < len(tokens):
            neighbors.append((word, tokens[k + 1].text))
        if k > 1:
            neighbors.append((tokens[k - 2].text, tokens[k - 1].text, word))
        if k + 2 < len(tokens):
            neighbors.append((word, tokens[k + 1].text, tokens[k + 2].text))
        return any(self.ctx.match_column(pair) for pair in neighbors)

    # -- per-span work --------------------------------------------------------------

    def _translate_span(
        self,
        tokens: list[Token],
        i: int,
        j: int,
        tmap: dict[tuple[int, int], list[Derivation]],
        budget: Budget | None = None,
        tracer=None,
        active_rules=None,
    ) -> list[Derivation]:
        if budget is None:
            budget = Budget()
        if tracer is None:
            tracer = NULL_TRACER
        derivations: list[Derivation] = []
        base: list[Derivation] = []
        new: list[Derivation] = []

        try:
            # 1. keyword-programming seeds
            with tracer.span("translate.seeds", i=i, j=j) as span:
                fault_point("seeds")
                if j - i == 1:
                    token = tokens[i]
                    derivations += literal_seeds(token, i)
                    derivations += table_seeds(self.ctx, token, i)
                    if self.config.use_synthesis:
                        derivations += operator_seeds(token, i)
                derivations += column_seeds(self.ctx, tokens, i, j, 0)
                derivations += value_seeds(self.ctx, tokens, i, j, 0)
                if j - i == 4:
                    from .excel_input import formula_seeds

                    derivations += formula_seeds(self.ctx, tokens, i, j)
                budget.charge(len(derivations))
                budget.checkpoint("seeds")
                span.set(derivations=len(derivations))

            # 2. pattern rules
            if self.config.use_rules:
                with tracer.span("translate.rules", i=i, j=j) as span:
                    produced = self.rule_translator.translate_span(
                        tokens, i, j, tmap, budget=budget,
                        rules=active_rules,
                    )
                    derivations += produced
                    budget.checkpoint("rules")
                    span.set(derivations=len(produced))

            # 3. union of sub-spans + synthesis closure
            if j - i >= 2:
                base = self._dedup(tmap[(i, j - 1)] + tmap[(i + 1, j)])
                if self.config.use_synthesis:
                    with tracer.span("translate.synthesis", i=i, j=j) as span:
                        left = [d for d in base if i in d.used]
                        right = [d for d in base if (j - 1) in d.used]
                        new = synthesize(
                            base, left, right, self.checker,
                            max_new=self.config.synth_max_new,
                            budget=budget,
                        )
                        budget.checkpoint("synthesis")
                        span.set(derivations=len(new))
        except BudgetExceededError:
            # Anytime salvage: whatever this span produced before the trip
            # is still a valid (if incomplete) span translation.  Store it
            # so the anytime ranking sees every program derived so far,
            # then let the DP loop unwind.
            tmap[(i, j)] = self._prune(
                self._dedup(base + new + derivations)
            )
            raise

        if j - i >= 2:
            derivations = base + new + derivations

        return self._prune(self._dedup(derivations))

    def _dedup(self, derivations: list[Derivation]) -> list[Derivation]:
        seen: dict[tuple, Derivation] = {}
        for d in derivations:
            key = d.key()
            kept = seen.get(key)
            if kept is None or d.prod_score > kept.prod_score:
                seen[key] = d
        return list(seen.values())

    def _prune(self, derivations: list[Derivation]) -> list[Derivation]:
        if len(derivations) <= self.config.beam_size:
            return derivations
        # Many derivations share an expression over different word subsets;
        # two variants (best-produced, widest) carry all the information the
        # ranker and the combiners need, and the freed beam slots keep rare
        # wide-coverage derivations alive on long sentences.
        by_expr: dict[ast.Expr, list[Derivation]] = {}
        for d in derivations:
            by_expr.setdefault(d.expr, []).append(d)
        trimmed: list[Derivation] = []
        for variants in by_expr.values():
            best = max(variants, key=lambda d: (d.prod_score, len(d.used)))
            widest = max(variants, key=lambda d: (len(d.used), d.prod_score))
            trimmed.append(best)
            if widest is not best:
                trimmed.append(widest)
        if len(trimmed) <= self.config.beam_size:
            return trimmed
        # Coverage-weighted quality: a full-coverage rule derivation must
        # outrank the sea of single-word atoms (prod 1.0) it competes with.
        trimmed.sort(
            key=lambda d: (
                -d.prod_score * (1 + len(d.used)),
                -len(d.used),
                str(d.expr),
            )
        )
        return trimmed[: self.config.beam_size]

    # -- ranking ------------------------------------------------------------------

    # Words whose absence from a derivation costs almost nothing (syntactic
    # glue), words that carry the user's intent (sheet content), and
    # operator keywords in between.
    _GLUE_WORDS = frozenset(
        "is are was were get take of have has the a an for all and to"
        " please computer me i want need you".split()
    )
    _CONTENT_WEIGHT = 2.0
    _KEYWORD_WEIGHT = 1.2
    _NOISE_WEIGHT = 0.4

    def _word_weight(self, token: Token) -> float:
        text = token.text
        if token.literal is not None or token.is_cellref:
            return self._CONTENT_WEIGHT
        if self.ctx.is_value_word(text) or self.ctx.is_column_word(text):
            return self._CONTENT_WEIGHT
        if SheetContext.match_color(text) is not None:
            return self._CONTENT_WEIGHT
        if text in self._GLUE_WORDS:
            return self._NOISE_WEIGHT
        if text in self._keyword_vocab:
            return self._KEYWORD_WEIGHT
        return self._NOISE_WEIGHT

    def _score(self, d: Derivation, weights: list[float]) -> float:
        cfg = self.config
        if not cfg.full_ranking:
            return d.ranking_prod_score
        score = d.ranking_prod_score
        if cfg.use_cover_score:
            score *= d.cover_score(weights)
        if cfg.use_mix_score:
            score *= d.mix_score
        return score

    def _rank(
        self, derivations: list[Derivation], tokens: list[Token]
    ) -> list[Candidate]:
        weights = [self._word_weight(t) for t in tokens]
        best: dict[ast.Expr, tuple[float, Derivation]] = {}
        for d in derivations:
            if not self.checker.valid_program(d.expr):
                continue
            score = self._score(d, weights)
            kept = best.get(d.expr)
            if (
                kept is None
                or score > kept[0]
                or (score == kept[0] and len(d.used) > len(kept[1].used))
            ):
                best[d.expr] = (score, d)
        ranked = sorted(
            best.items(),
            key=lambda kv: (-kv[1][0], -len(kv[1][1].used), str(kv[0])),
        )
        return [
            Candidate(program=expr, score=score, derivation=d, tokens=tokens)
            for expr, (score, d) in ranked[: self.config.max_results]
        ]

    def _rank_anytime(
        self,
        tmap: dict[tuple[int, int], list[Derivation]],
        tokens: list[Token],
    ) -> list[Candidate]:
        """Rank every complete program derived before the budget tripped.

        The union over all spans (not just the final one, which may not
        exist yet) is ranked with the ordinary scorer: complete wide
        derivations dominate through CoverSc, so if the DP got far enough
        to build the right program anywhere, it surfaces at the top.
        """
        pool: list[Derivation] = []
        for derivations in tmap.values():
            pool.extend(derivations)
        return self._rank(pool, tokens)


def _rule_vocabulary(rules: RuleSet) -> set[str]:
    """Every word the rule templates can match, so the spell corrector
    treats rule vocabulary (builtin or custom) as known."""
    from .patterns import MustPat, OptPat

    vocabulary: set[str] = set()
    for rule in rules:
        for pattern in rule.template:
            if isinstance(pattern, MustPat):
                for option in pattern.options:
                    vocabulary.update(option)
            elif isinstance(pattern, OptPat):
                vocabulary.update(pattern.words)
    return {w for w in vocabulary if w.isalpha()}


def ablation_config(mode: str) -> TranslatorConfig:
    """The Table 3 configurations by name."""
    if mode == "rules_only":
        return TranslatorConfig(
            use_rules=True, use_synthesis=False, full_ranking=False
        )
    if mode == "synthesis_only":
        return TranslatorConfig(
            use_rules=False, use_synthesis=True, full_ranking=False
        )
    if mode == "combined_prod_only":
        return TranslatorConfig(
            use_rules=True, use_synthesis=True, full_ranking=False
        )
    if mode == "complete":
        return TranslatorConfig()
    if mode == "no_cover":
        return TranslatorConfig(use_cover_score=False)
    if mode == "no_mix":
        return TranslatorConfig(use_mix_score=False)
    raise TranslationError(f"unknown ablation mode {mode!r}")
