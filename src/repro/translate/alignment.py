"""Template alignment (paper §3.3.1).

An alignment maps each pattern of a template to a contiguous token range
such that the ranges tile the whole fragment: the first pattern starts at
the fragment start, consecutive ranges abut, and the last pattern ends at
the fragment end.  Optional patterns may map to empty ranges.

Ranges are half-open ``(l, u)`` over fragment-relative positions.
"""

from __future__ import annotations

from ..dsl.ast import hotpath_enabled
from .context import SheetContext
from .patterns import MustPat, OptPat, Pattern
from .tokenizer import Token

Alignment = tuple  # tuple[tuple[int, int], ...] — one (l, u) per pattern


def _min_width(pattern: Pattern) -> int:
    if isinstance(pattern, OptPat):
        return 0
    if isinstance(pattern, MustPat):
        return min(len(option) for option in pattern.options)
    return 1


def align(
    template: tuple[Pattern, ...],
    tokens: list[Token],
    ctx: SheetContext,
    cap: int = 16,
) -> list[Alignment]:
    """All (up to ``cap``) alignments of ``template`` over ``tokens``."""
    n = len(tokens)
    min_suffix = [0] * (len(template) + 1)
    for i in range(len(template) - 1, -1, -1):
        min_suffix[i] = min_suffix[i + 1] + _min_width(template[i])
    if min_suffix[0] > n:
        return []

    results: list[Alignment] = []
    ranges: list[tuple[int, int]] = []

    def recurse(pattern_index: int, pos: int) -> None:
        if len(results) >= cap:
            return
        if pattern_index == len(template):
            if pos == n:
                results.append(tuple(ranges))
            return
        # Remaining patterns must still be able to tile the rest.
        if pos + min_suffix[pattern_index] > n:
            return
        pattern = template[pattern_index]
        for end in pattern.ends(tokens, pos, n, ctx):
            if end + min_suffix[pattern_index + 1] > n:
                continue
            ranges.append((pos, end))
            recurse(pattern_index + 1, end)
            ranges.pop()
            if len(results) >= cap:
                return

    recurse(0, 0)
    return results


def quick_reject(
    template: tuple[Pattern, ...], fragment_words: frozenset[str]
) -> bool:
    """Cheap pre-check: a MustPat whose options all need words absent from
    the fragment can never align (saves the backtracking search).

    The hot path tests each option's precomputed word set against the
    fragment with one C-level subset check; the legacy path (kept for the
    ``REPRO_NO_INTERN`` baseline) walks the words through generators.
    """
    if hotpath_enabled():
        for pattern in template:
            if isinstance(pattern, MustPat):
                for option_set in pattern.option_sets:
                    if option_set <= fragment_words:
                        break
                else:
                    return True
        return False
    for pattern in template:
        if isinstance(pattern, MustPat):
            if not any(
                all(word in fragment_words for word in option)
                for option in pattern.options
            ):
                return True
    return False
