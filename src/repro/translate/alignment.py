"""Template alignment (paper §3.3.1).

An alignment maps each pattern of a template to a contiguous token range
such that the ranges tile the whole fragment: the first pattern starts at
the fragment start, consecutive ranges abut, and the last pattern ends at
the fragment end.  Optional patterns may map to empty ranges.

Ranges are half-open ``(l, u)`` over fragment-relative positions.

Compiled templates
------------------

``align`` runs per (rule, span) in the DP inner loop — the suffix-width
table it needs is a pure function of the template, yet the original code
rebuilt it on every call.  :func:`compile_template` builds that automaton
once per *structural* template and interns it in a cross-request table
(keyed like ``repro.dsl.ast.intern``): because ``parse_template`` interns
template tuples too, every translator, forked gateway worker (via fork
copy-on-write), and learned rule pack sharing a template shares one
compiled form.  ``REPRO_NO_COLUMNAR=1`` disables the compiled path and
restores the rebuild-per-call baseline unchanged.
"""

from __future__ import annotations

from ..dsl.ast import hotpath_enabled
from ..sheet.columnar import columnar_enabled
from .context import SheetContext
from .patterns import MustPat, OptPat, Pattern
from .tokenizer import Token

Alignment = tuple  # tuple[tuple[int, int], ...] — one (l, u) per pattern


def _min_width(pattern: Pattern) -> int:
    if isinstance(pattern, OptPat):
        return 0
    if isinstance(pattern, MustPat):
        return min(len(option) for option in pattern.options)
    return 1


class CompiledTemplate:
    """A template plus everything alignment derives from it.

    * ``min_suffix[i]`` — the minimum token width patterns ``i..`` must
      still tile (prunes the backtracking search); computed once here
      instead of per ``align`` call;
    * ``must_option_sets`` — the MustPats' per-option word frozensets, laid
      out flat so ``quick_reject`` is a loop over precollected sets with no
      per-call isinstance scan.
    """

    __slots__ = ("template", "size", "min_suffix", "must_option_sets")

    def __init__(self, template: tuple[Pattern, ...]) -> None:
        self.template = template
        self.size = len(template)
        min_suffix = [0] * (len(template) + 1)
        for i in range(len(template) - 1, -1, -1):
            min_suffix[i] = min_suffix[i + 1] + _min_width(template[i])
        self.min_suffix = tuple(min_suffix)
        self.must_option_sets = tuple(
            p.option_sets for p in template if isinstance(p, MustPat)
        )

    def align(
        self, tokens: list[Token], ctx: SheetContext, cap: int = 16
    ) -> list[Alignment]:
        """Identical search (and result order) to the baseline ``align``,
        minus the per-call suffix-table rebuild."""
        n = len(tokens)
        template = self.template
        size = self.size
        min_suffix = self.min_suffix
        if min_suffix[0] > n:
            return []

        results: list[Alignment] = []
        ranges: list[tuple[int, int]] = []

        def recurse(pattern_index: int, pos: int) -> None:
            if len(results) >= cap:
                return
            if pattern_index == size:
                if pos == n:
                    results.append(tuple(ranges))
                return
            if pos + min_suffix[pattern_index] > n:
                return
            pattern = template[pattern_index]
            next_suffix = min_suffix[pattern_index + 1]
            for end in pattern.ends(tokens, pos, n, ctx):
                if end + next_suffix > n:
                    continue
                ranges.append((pos, end))
                recurse(pattern_index + 1, end)
                ranges.pop()
                if len(results) >= cap:
                    return

        recurse(0, 0)
        return results

    def quick_reject(self, fragment_words: frozenset[str]) -> bool:
        """Compiled form of :func:`quick_reject` over the flat option-set
        layout; same answer by construction."""
        for option_sets in self.must_option_sets:
            for option_set in option_sets:
                if option_set <= fragment_words:
                    break
            else:
                return True
        return False


# Cross-request compiled-template intern table.  Keyed structurally (the
# template tuple), so even templates parsed before the text-level intern
# table warmed up land on the same compiled object.  Capped + cleared
# wholesale like the AST intern table; a cleared entry only costs a
# recompile.
_COMPILED_TABLE: dict[tuple, CompiledTemplate] = {}
_COMPILED_CAP = 4096


def compiled_table_size() -> int:
    return len(_COMPILED_TABLE)


def compile_template(template: tuple[Pattern, ...]) -> CompiledTemplate:
    """The interned compiled form of ``template``."""
    compiled = _COMPILED_TABLE.get(template)
    if compiled is None:
        if len(_COMPILED_TABLE) >= _COMPILED_CAP:
            _COMPILED_TABLE.clear()
        compiled = CompiledTemplate(template)
        _COMPILED_TABLE[template] = compiled
    return compiled


def align(
    template: tuple[Pattern, ...],
    tokens: list[Token],
    ctx: SheetContext,
    cap: int = 16,
) -> list[Alignment]:
    """All (up to ``cap``) alignments of ``template`` over ``tokens``."""
    if columnar_enabled():
        return compile_template(template).align(tokens, ctx, cap)
    n = len(tokens)
    min_suffix = [0] * (len(template) + 1)
    for i in range(len(template) - 1, -1, -1):
        min_suffix[i] = min_suffix[i + 1] + _min_width(template[i])
    if min_suffix[0] > n:
        return []

    results: list[Alignment] = []
    ranges: list[tuple[int, int]] = []

    def recurse(pattern_index: int, pos: int) -> None:
        if len(results) >= cap:
            return
        if pattern_index == len(template):
            if pos == n:
                results.append(tuple(ranges))
            return
        # Remaining patterns must still be able to tile the rest.
        if pos + min_suffix[pattern_index] > n:
            return
        pattern = template[pattern_index]
        for end in pattern.ends(tokens, pos, n, ctx):
            if end + min_suffix[pattern_index + 1] > n:
                continue
            ranges.append((pos, end))
            recurse(pattern_index + 1, end)
            ranges.pop()
            if len(results) >= cap:
                return

    recurse(0, 0)
    return results


def quick_reject(
    template: tuple[Pattern, ...], fragment_words: frozenset[str]
) -> bool:
    """Cheap pre-check: a MustPat whose options all need words absent from
    the fragment can never align (saves the backtracking search).

    The compiled path (columnar layer enabled) loops over the template's
    precollected option sets; the hot path tests each option's precomputed
    word set against the fragment with one C-level subset check; the legacy
    path (kept for the ``REPRO_NO_INTERN`` baseline) walks the words
    through generators.
    """
    if columnar_enabled():
        return compile_template(template).quick_reject(fragment_words)
    if hotpath_enabled():
        for pattern in template:
            if isinstance(pattern, MustPat):
                for option_set in pattern.option_sets:
                    if option_set <= fragment_words:
                        break
                else:
                    return True
        return False
    for pattern in template:
        if isinstance(pattern, MustPat):
            if not any(
                all(word in fragment_words for word in option)
                for option in pattern.options
            ):
                return True
    return False
