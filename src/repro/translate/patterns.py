"""The rule pattern language (paper §3.3.1, Fig. 3).

A rule template is a sequence of patterns::

    Template   := Pattern1 ... Patternj
    MustPat    := (w11 ... w1k | ... | wi1 ... wij)    exactly one option
    OptPat     := (wm | ... | wn)*                     zero or more, optional
                  (wm | ... | wn)*!                    ... plus one slack word
    LiteralPat := %Li                                  number/currency/cellref
    ValuePat   := %Vi                                  sheet value
    ColumnPat  := %Ci                                  column header
    ColorPat   := %Ki                                  color word (our extension
                                                       for formatting rules)
    SpanPat    := %i                                   any non-empty word span

Concrete syntax examples::

    parse_template("sum (all|the)* %C1 %2")
    parse_template("(how many|count) (the)*! %1")

Each pattern knows which token spans it can match at a given position; the
alignment algorithm composes these into full-fragment alignments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Protocol

from ..errors import RuleParseError
from ..sheet.columnar import columnar_enabled
from .context import MAX_SPAN_WORDS, SheetContext
from .tokenizer import Token


class Pattern(Protocol):
    """A template element; ``ends`` yields the exclusive end positions of
    token spans starting at ``start`` that this pattern can match."""

    ident: int | None

    def ends(
        self, tokens: list[Token], start: int, limit: int, ctx: SheetContext
    ) -> Iterator[int]: ...

    def render(self) -> str: ...


@dataclass(frozen=True)
class MustPat:
    """Exactly one of the multi-word options must appear."""

    options: tuple[tuple[str, ...], ...]
    ident: int | None = None
    # Each option's words as a frozenset, precomputed once at rule-parse
    # time: ``quick_reject`` runs per (rule, span) in the DP inner loop and
    # a C-level subset test beats a python generator over the words.
    option_sets: tuple[frozenset[str], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "option_sets",
            tuple(frozenset(option) for option in self.options),
        )

    def ends(self, tokens, start, limit, ctx):
        seen = set()
        for option in self.options:
            end = start + len(option)
            if end > limit or end in seen:
                continue
            if all(
                tokens[start + k].text == option[k] for k in range(len(option))
            ):
                seen.add(end)
                yield end

    def render(self) -> str:
        return "(" + "|".join(" ".join(o) for o in self.options) + ")"


@dataclass(frozen=True)
class OptPat:
    """Zero or more words from the option set; the slack variant tolerates
    one arbitrary extra word (sheet-specific words the rule set should not
    hard-code)."""

    words: frozenset[str]
    slack: bool = False
    ident: int | None = None

    _MAX = MAX_SPAN_WORDS + 1

    def ends(self, tokens, start, limit, ctx):
        yield start  # empty match
        slack_left = 1 if self.slack else 0
        end = start
        while end < min(limit, start + self._MAX):
            if tokens[end].text in self.words:
                end += 1
            elif slack_left:
                slack_left -= 1
                end += 1
            else:
                break
            yield end

    def render(self) -> str:
        inner = "|".join(sorted(self.words))
        return f"({inner})*" + ("!" if self.slack else "")


@dataclass(frozen=True)
class LiteralPat:
    """A single numeric/currency literal or cell reference."""

    ident: int

    def ends(self, tokens, start, limit, ctx):
        if start < limit and (
            tokens[start].literal is not None or tokens[start].is_cellref
        ):
            yield start + 1

    def render(self) -> str:
        return f"%L{self.ident}"


@dataclass(frozen=True)
class ValuePat:
    """A span naming a sheet value ("chef", "capitol hill")."""

    ident: int

    def ends(self, tokens, start, limit, ctx):
        for end in range(start + 1, min(limit, start + MAX_SPAN_WORDS) + 1):
            words = tuple(t.text for t in tokens[start:end])
            if ctx.match_value(words):
                yield end

    def render(self) -> str:
        return f"%V{self.ident}"


@dataclass(frozen=True)
class ColumnPat:
    """A span naming a column header, a value (ResolveCol fallback), or the
    two-word letter form "column H"."""

    ident: int

    def ends(self, tokens, start, limit, ctx):
        for end in range(start + 1, min(limit, start + MAX_SPAN_WORDS) + 1):
            words = tuple(t.text for t in tokens[start:end])
            if len(words) == 2 and words[0] == "column":
                if ctx.column_by_letter(words[1]) is not None:
                    yield end
                    continue
            if ctx.match_column(words):
                yield end

    def render(self) -> str:
        return f"%C{self.ident}"


@dataclass(frozen=True)
class ColorPat:
    """A single color word ("red")."""

    ident: int

    def ends(self, tokens, start, limit, ctx):
        if start < limit and ctx.match_color(tokens[start].text) is not None:
            yield start + 1

    def render(self) -> str:
        return f"%K{self.ident}"


@dataclass(frozen=True)
class SpanPat:
    """A non-deterministic span of one or more words; its semantics come
    from the translations of the sub-fragment (TMap), which is what lets the
    rule and synthesis algorithms interleave."""

    ident: int

    def ends(self, tokens, start, limit, ctx):
        for end in range(start + 1, limit + 1):
            yield end

    def render(self) -> str:
        return f"%{self.ident}"


Template = tuple  # tuple[Pattern, ...]; kept as a plain tuple for hashability


_HOLE_RE = re.compile(r"^%([LVCK]?)(\d+)$")
_GROUP_RE = re.compile(r"^\(([^()]*)\)(\*!?)?$")

# Cross-request template intern table (keyed like ``repro.dsl.ast.intern``):
# the same concrete template text always yields the *same* tuple object, so
# every rule set built from it — per-translator, per-worker, learned packs
# re-using builtin templates — shares patterns and hits the compiled-
# alignment table (:mod:`repro.translate.alignment`) by structure.  Capped
# and cleared wholesale so adversarial rule churn cannot leak; clearing only
# costs future sharing, never correctness.
_TEMPLATE_TABLE: dict[str, tuple["Pattern", ...]] = {}
_TEMPLATE_CAP = 4096


def template_table_size() -> int:
    return len(_TEMPLATE_TABLE)


def parse_template(text: str) -> tuple[Pattern, ...]:
    """Parse the concrete template syntax shown in the module docstring.

    Interned per template text (see ``_TEMPLATE_TABLE``) unless the
    columnar/template optimisation layer is disabled via
    ``REPRO_NO_COLUMNAR=1``, in which case every call re-parses — the
    pre-optimisation behaviour.
    """
    if columnar_enabled():
        cached = _TEMPLATE_TABLE.get(text)
        if cached is None:
            if len(_TEMPLATE_TABLE) >= _TEMPLATE_CAP:
                _TEMPLATE_TABLE.clear()
            cached = _parse_template(text)
            _TEMPLATE_TABLE[text] = cached
        return cached
    return _parse_template(text)


def _parse_template(text: str) -> tuple[Pattern, ...]:
    patterns: list[Pattern] = []
    for piece in _split_template(text):
        hole = _HOLE_RE.match(piece)
        if hole:
            kind, ident = hole.group(1), int(hole.group(2))
            cls = {
                "L": LiteralPat,
                "V": ValuePat,
                "C": ColumnPat,
                "K": ColorPat,
                "": SpanPat,
            }[kind]
            patterns.append(cls(ident))
            continue
        group = _GROUP_RE.match(piece)
        if group:
            options = tuple(
                tuple(option.split())
                for option in group.group(1).split("|")
                if option.strip()
            )
            if not options:
                raise RuleParseError(f"empty group in template: {text!r}")
            if group.group(2):
                words = frozenset(w for option in options for w in option)
                patterns.append(
                    OptPat(words, slack=group.group(2) == "*!")
                )
            else:
                patterns.append(MustPat(options))
            continue
        if piece.startswith("(") or piece.startswith("%"):
            raise RuleParseError(f"bad template piece {piece!r} in {text!r}")
        patterns.append(MustPat(((piece,),)))
    if not patterns:
        raise RuleParseError(f"empty template: {text!r}")
    return tuple(patterns)


def _split_template(text: str) -> list[str]:
    """Split template text on spaces, keeping parenthesised groups whole."""
    pieces: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text.strip():
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise RuleParseError(f"unbalanced parens in {text!r}")
        if ch == " " and depth == 0:
            if current:
                pieces.append("".join(current))
                current = []
        else:
            current.append(ch)
    if depth != 0:
        raise RuleParseError(f"unbalanced parens in {text!r}")
    if current:
        pieces.append("".join(current))
    return pieces
