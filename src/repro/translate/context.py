"""The spreadsheet context used during translation.

"User descriptions ... are executed in the context of a spreadsheet, which
provides meaning to column name references, like hours, and to special value
names, like baristas, as well as to other tables and the columns defined in
them" (paper §3.3.1).

:class:`SheetContext` indexes a workbook for the translator:

* resolving word spans to column references (including squashed headers —
  "total pay" resolves to the ``totalpay`` column — and the paper's
  ResolveCol fallback where a *value* span resolves to the columns
  containing that value),
* resolving word spans to sheet values ("capitol hill", plural "baristas"),
* resolving color words and column letters,
* the combined vocabulary the spell corrector runs against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl.ast import hotpath_enabled
from ..sheet import Color, Workbook
from ..sheet.address import column_letter_to_index
from ..sheet.columnar import ColumnarIndex, columnar_enabled
from .lexicon import SpellCorrector, keyword_vocabulary

# Words that must never be "corrected" into sheet vocabulary.
FUNCTION_WORDS = frozenset(
    """where with whose which what that this have has does from table tables
    column columns each every their them they there then than please computer
    want need give show take compute calculate find rows row cells cell the
    for all any are was were been being how who whom why when if else but and
    or not value values level ahead lets whats it its in at of by to a an is
    on up out me my we us i you your only just also very really some most
    employees employee workers worker people person items item products
    product countries country invoices invoice orders order records record
    entries entry lines line"""
    .split()
)

MAX_SPAN_WORDS = 4


@dataclass(frozen=True)
class ColumnMatch:
    """A span resolved to a column; ``via_value`` marks the ResolveCol
    fallback (the span named a value and we matched its column)."""

    table: str
    column: str
    via_value: bool = False


@dataclass(frozen=True)
class ValueMatch:
    """A span resolved to a sheet value occurring in (table, column)."""

    value: str
    table: str
    column: str


class SheetContext:
    """Workbook index shared by all translations against one sheet state.

    ``fuzzy_columns`` enables the paper's §7 future-work extension —
    similarity matching for column names: squashed headers also match
    word-order permutations ("per capita gdp" -> ``gdppercapita``, with
    connective words dropped) and abbreviation prefixes ("overtime hours"
    -> ``othours`` because "ot" prefixes "overtime").
    """

    def __init__(
        self,
        workbook: Workbook,
        fuzzy_columns: bool = False,
        extra_vocabulary: set[str] | None = None,
    ) -> None:
        """``extra_vocabulary`` adds words the spell corrector must treat as
        known — the translator passes every word its rule templates match,
        so custom rule jargon is never "corrected" away."""
        self.fuzzy_columns = fuzzy_columns
        self._extra_vocabulary = set(extra_vocabulary or ())
        self.workbook = workbook
        self._columns: dict[str, list[tuple[str, str]]] = {}
        default = workbook.default_table.name
        ordered = [workbook.default_table] + [
            t for t in workbook.tables if t.name != default
        ]
        for table in ordered:
            for column in table.column_names:
                key = column.strip().lower().replace(" ", "")
                self._columns.setdefault(key, []).append((table.name, column))
        # Value lookups run against the interned columnar index when the
        # backend is enabled — pool-id probes instead of a merged dict the
        # context would otherwise rebuild per construction.  The row-backed
        # build below is the REPRO_NO_COLUMNAR baseline, kept intact.
        self._index: ColumnarIndex | None = None
        self._values: dict[str, list[tuple[str, str]]] = {}
        if columnar_enabled():
            index = workbook.columnar_index()
            self._index = index
            self._max_value_words = index.max_value_words
            self._value_words = index.value_words
        else:
            for value, slots in workbook.all_text_values().items():
                self._values[value] = list(slots)
            self._max_value_words = max(
                (len(v.split()) for v in self._values), default=1
            )
            self._value_words = set()
            for value in self._values:
                self._value_words.update(value.split())
        self.corrector = self._make_corrector()
        # n-gram → match memos (the per-sentence seed index).  A word span
        # always resolves the same way against one sheet state, so the
        # translator warms these at ``prepare_tokens`` time and every
        # subsequent probe — seeds, rule alignment, neighbour joins — is a
        # dict hit instead of a vocabulary scan.  Results are cached lists;
        # callers must not mutate them.
        self._column_match_cache: dict[tuple[str, ...], list[ColumnMatch]] = {}
        self._value_match_cache: dict[tuple[str, ...], list[ValueMatch]] = {}

    # -- vocabulary -----------------------------------------------------------

    def _make_corrector(self) -> SpellCorrector:
        """The spell corrector for this sheet state.

        Construction sorts the whole vocabulary, which is material on large
        sheets — so with the columnar backend the corrector is memoised on
        the index (one per sheet revision and extra-vocabulary set, shared
        by every context over the same state).  Behaviour is identical: the
        corrector is stateless after construction and fully determined by
        its vocabulary sets.
        """
        if self._index is None:
            return SpellCorrector(
                self._vocabulary(), preferred=self._content_vocabulary()
            )
        key = ("corrector", frozenset(self._extra_vocabulary))
        corrector = self._index.derived.get(key)
        if corrector is None:
            corrector = SpellCorrector(
                self._vocabulary(), preferred=self._content_vocabulary()
            )
            self._index.derived[key] = corrector
        return corrector

    def _vocabulary(self) -> set[str]:
        return (
            set(keyword_vocabulary())
            | set(FUNCTION_WORDS)
            | self._content_vocabulary()
            | self._extra_vocabulary
        )

    def _content_vocabulary(self) -> set[str]:
        """Sheet-content words: column names, value words, colors.  These
        win spell-correction ties against function/operator words."""
        vocab: set[str] = set()
        for key, slots in self._columns.items():
            vocab.add(key)
            for _, column in slots:
                vocab.update(column.lower().split())
        vocab.update(self._value_words)
        vocab.update(c.value for c in Color if c is not Color.NONE)
        return vocab

    # -- columns -------------------------------------------------------------

    # Soft cap on memoised spans; cleared wholesale when exceeded so a
    # long-lived context over adversarial traffic cannot grow unboundedly.
    _MATCH_CACHE_CAP = 65536

    def match_column(self, words: tuple[str, ...]) -> list[ColumnMatch]:
        """Columns a span of words may refer to.

        Direct matches (by squashed name) come first; if the span instead
        names a sheet *value*, the columns containing that value are
        returned with ``via_value=True`` (paper Algo 3, case C).
        Memoised per span (see ``index_sentence``); callers must treat the
        returned list as read-only.
        """
        if not hotpath_enabled():
            return self._match_column_uncached(words)
        cached = self._column_match_cache.get(words)
        if cached is None:
            if len(self._column_match_cache) >= self._MATCH_CACHE_CAP:
                self._column_match_cache.clear()
            cached = self._match_column_uncached(words)
            self._column_match_cache[words] = cached
        return cached

    def _match_column_uncached(
        self, words: tuple[str, ...]
    ) -> list[ColumnMatch]:
        if not words or len(words) > MAX_SPAN_WORDS:
            return []
        direct = self._direct_column(words)
        if direct:
            return direct
        return [
            ColumnMatch(m.table, m.column, via_value=True)
            for m in self.match_value(words)
        ]

    def _direct_column(self, words: tuple[str, ...]) -> list[ColumnMatch]:
        joined = "".join(words)
        slots = self._columns.get(joined)
        if slots is None and joined.endswith("s"):
            slots = self._columns.get(joined[:-1])
        if slots is None and len(words) >= 2 and len(joined) >= 6:
            # A typo inside one piece of a squashed header ("unit pprice")
            # defeats both the per-word spell corrector (the piece is not a
            # vocabulary word) and the exact join — so the join itself gets
            # one edit of tolerance, unique match required.
            slots = self._edit1_column_slots(joined)
        if slots is None and self.fuzzy_columns:
            slots = self._fuzzy_column_slots(words)
        if slots is None:
            return []
        return [ColumnMatch(table, column) for table, column in slots]

    def _edit1_column_slots(
        self, joined: str
    ) -> list[tuple[str, str]] | None:
        from .lexicon import damerau_levenshtein

        hits = [
            slots
            for key, slots in self._columns.items()
            if len(key) >= 6
            and abs(len(key) - len(joined)) <= 1
            and damerau_levenshtein(joined, key, cap=1) <= 1
        ]
        return hits[0] if len(hits) == 1 else None

    def _fuzzy_column_slots(
        self, words: tuple[str, ...]
    ) -> list[tuple[str, str]] | None:
        """§7 similarity matching: permuted subsets and prefix abbreviations.

        * permuted subsets cover reordered headers with connective words:
          "price per unit" contains the subset (unit, price) whose squash is
          the ``unitprice`` key;
        * prefix concatenation covers abbreviated headers: ``othours``
          splits into "ot" + "hours" where each piece prefixes the
          corresponding description word "overtime hours".
        """
        import itertools

        if len(words) > 3:
            return None
        # 1. permutations of the whole span ("per capita gdp")
        for perm in itertools.permutations(words):
            slots = self._columns.get("".join(perm))
            if slots:
                return slots
        # 2. abbreviation split over the whole span ("overtime hours")
        for key, slots in self._columns.items():
            if _prefix_concat_match(key, words):
                return slots
        # 3. permuted proper subsets of >= 2 words ("price per unit")
        for size in range(len(words) - 1, 1, -1):
            for subset in itertools.combinations(words, size):
                for perm in itertools.permutations(subset):
                    slots = self._columns.get("".join(perm))
                    if slots:
                        return slots
        return None

    def column_by_letter(self, letter: str) -> ColumnMatch | None:
        """The default-table column at sheet column ``letter`` ("column H")."""
        try:
            index = column_letter_to_index(letter)
        except Exception:
            return None
        table = self.workbook.default_table
        column = table.column_at_letter_index(index)
        if column is None:
            return None
        return ColumnMatch(table.name, column.name)

    def is_column_word(self, word: str) -> bool:
        """True when the single word matches (part of) some column name."""
        return bool(self._direct_column((word,)))

    # -- values -----------------------------------------------------------------

    def match_value(self, words: tuple[str, ...]) -> list[ValueMatch]:
        """Sheet values a span may refer to (plural forms included).
        Memoised like :meth:`match_column`."""
        if not hotpath_enabled():
            return self._match_value_uncached(words)
        cached = self._value_match_cache.get(words)
        if cached is None:
            if len(self._value_match_cache) >= self._MATCH_CACHE_CAP:
                self._value_match_cache.clear()
            cached = self._match_value_uncached(words)
            self._value_match_cache[words] = cached
        return cached

    def _match_value_uncached(self, words: tuple[str, ...]) -> list[ValueMatch]:
        if not words or len(words) > self._max_value_words + 1:
            return []
        joined = " ".join(words)
        index = self._index
        for candidate in (joined, joined[:-1] if joined.endswith("s") else None):
            if candidate is None:
                continue
            # Columnar: one string-pool probe plus the per-id slot memo;
            # row-backed baseline: the merged-dict lookup.  Slot order is
            # identical (tables in insertion order, columns in header
            # order), so downstream seeds and rankings cannot diverge.
            slots = (
                index.slots(candidate)
                if index is not None
                else self._values.get(candidate)
            )
            if slots:
                return [
                    ValueMatch(candidate, table, column)
                    for table, column in slots
                ]
        return []

    # -- per-sentence seed index -------------------------------------------------

    def index_sentence(self, words: tuple[str, ...]) -> None:
        """Precompute the column/value matches of every n-gram of the
        sentence (widths up to the longest matchable span).

        Called once from ``Translator.prepare_tokens``; afterwards the
        O(n²) DP's seed, alignment-pattern, and neighbour-join probes for
        any span of this sentence are single dict lookups.  A no-op when
        the hot path is disabled.
        """
        if not hotpath_enabled():
            return
        n = len(words)
        widest = max(MAX_SPAN_WORDS, self._max_value_words + 1)
        for i in range(n):
            for j in range(i + 1, min(n, i + widest) + 1):
                span = words[i:j]
                self.match_column(span)
                self.match_value(span)

    def is_value_word(self, word: str) -> bool:
        """True when the word occurs inside some sheet value."""
        if word in self._value_words:
            return True
        return word.endswith("s") and word[:-1] in self._value_words

    # -- colors ------------------------------------------------------------------

    @staticmethod
    def match_color(word: str) -> Color | None:
        try:
            color = Color(word)
        except ValueError:
            return None
        return None if color is Color.NONE else color


def _abbreviates(piece: str, word: str) -> bool:
    """``piece`` abbreviates ``word`` when it is a subsequence of the word
    anchored at its first letter ("ot" abbreviates "overtime", "qty"
    abbreviates "quantity"); full words and prefixes are special cases."""
    if not piece or piece[0] != word[0]:
        return False
    it = iter(word)
    return all(ch in it for ch in piece)


def _prefix_concat_match(key: str, words: tuple[str, ...]) -> bool:
    """True when ``key`` splits into pieces (>= 2 chars each) that
    abbreviate the description words in order, using every word —
    "othours" = "ot" (overtime) + "hours" (hours)."""
    if len(words) < 2:
        return False

    def recurse(remaining: str, index: int) -> bool:
        if index == len(words):
            return not remaining
        word = words[index]
        for take in range(2, min(len(remaining), len(word)) + 1):
            piece = remaining[:take]
            if _abbreviates(piece, word) and recurse(
                remaining[take:], index + 1
            ):
                return True
        return False

    return recurse(key, 0)
