"""Excel formula fragments inside natural-language input (paper §3.3.1).

"For example we could easily extend the Algo 1 to include a parser for
Excel formula to allow for a mixture of NL and Excel formula in the input,
e.g. 'highlight rows with totalpay > MEDIAN(H2:H14)'.  Further, due to the
uninterpreted nature of the holes, we do not need to modify (or re-train)
the existing Rule or Synth algorithms when adding the Excel parsing
algorithm!"

This module is that parser: a span shaped like ``FUNC ( range )`` seeds the
corresponding DSL reduction, which then flows through synthesis and rule
G-holes exactly like any other sub-expression.  Supported functions map to
the DSL's reduce algebra (SUM, AVERAGE/AVG, MIN, MAX, COUNT/COUNTA); ranges
resolve against the table a column range overlaps.
"""

from __future__ import annotations

import re

from ..dsl import ast
from ..sheet.address import CellAddress
from .context import SheetContext
from .derivation import ATOM, Derivation
from .tokenizer import Token

# Formula seeds are explicit syntax: near-certain evidence.
FORMULA_SEED_SCORE = 0.95

_FUNCTIONS = {
    "sum": ast.ReduceOp.SUM,
    "average": ast.ReduceOp.AVG,
    "avg": ast.ReduceOp.AVG,
    "min": ast.ReduceOp.MIN,
    "max": ast.ReduceOp.MAX,
}
_COUNT_FUNCTIONS = {"count", "counta"}

_RANGE_RE = re.compile(r"^([a-z]{1,3}[1-9]\d*):([a-z]{1,3}[1-9]\d*)$")


def parse_range(text: str) -> tuple[CellAddress, CellAddress] | None:
    """Parse an ``H2:H14``-style range into its corner addresses."""
    match = _RANGE_RE.match(text.strip().lower())
    if match is None:
        return None
    try:
        start = CellAddress.parse(match.group(1))
        end = CellAddress.parse(match.group(2))
    except Exception:
        return None
    return (start, end)


def resolve_range_column(
    ctx: SheetContext, start: CellAddress, end: CellAddress
) -> ast.ColumnRef | None:
    """The column a single-column range refers to.

    The DSL reduces over whole columns, so any single-column range inside a
    table's data area resolves to that column (users write ``H2:H14``
    meaning "the totalpay column").
    """
    if start.col != end.col:
        return None
    for table in ctx.workbook.tables:
        column = table.column_at_letter_index(start.col)
        if column is None:
            continue
        top = table.origin.row + 1
        bottom = table.origin.row + table.n_rows
        if start.row >= top and end.row <= bottom:
            default = ctx.workbook.default_table.name
            qualifier = None if table.name == default else table.name
            return ast.ColumnRef(column.name, qualifier)
    return None


def formula_seeds(
    ctx: SheetContext, tokens: list[Token], start: int, end: int
) -> list[Derivation]:
    """Seeds for a span shaped like ``FUNC ( range )`` (4 tokens)."""
    if end - start != 4:
        return []
    name, lparen, range_token, rparen = tokens[start:end]
    if lparen.text != "(" or rparen.text != ")":
        return []
    func = name.text
    if func not in _FUNCTIONS and func not in _COUNT_FUNCTIONS:
        return []
    corners = parse_range(range_token.text)
    if corners is None:
        return []
    column = resolve_range_column(ctx, *corners)
    if column is None:
        return []
    positions = frozenset(range(start, end))
    source = ast.GetTable(column.table) if column.table else ast.GetTable()
    bare_column = ast.ColumnRef(column.name, column.table)
    if func in _COUNT_FUNCTIONS:
        expr: ast.Expr = ast.Count(source, ast.TrueF())
    else:
        expr = ast.Reduce(
            _FUNCTIONS[func], bare_column, source, ast.TrueF()
        )
    return [
        Derivation(
            expr=expr,
            used=positions,
            kind=ATOM,
            rule_score=FORMULA_SEED_SCORE,
        )
    ]
