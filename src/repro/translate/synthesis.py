"""Type-directed synthesis (paper Algo 2).

``Synth`` computes the closure of the expressions translated for a span's
two maximal sub-spans under all well-typed combinations:

* ``CombAll(e, e')`` substitutes ``e'`` into each hole of ``e`` (at any
  depth) whose restriction it satisfies, provided the two derivations use
  disjoint non-column word sets and the result passes ``Valid``;
* complete filter pairs additionally merge under ``And`` — the implicit
  conjunction of "capitol hill baristas"-style descriptions (keyword
  programming for a DSL whose filters compose conjunctively).

The closure is semi-naive: a pair is only recombined at a span if at least
one member is new at that span (pairs wholly inside a sub-span were already
combined there and arrive via the union), which keeps the quadratic pair
work proportional to genuinely new combinations.
"""

from __future__ import annotations

from ..dsl import ast
from ..dsl.holes import consistent, holes_of, substitute_unchecked
from ..dsl.types import Kind, TypeChecker
from ..errors import DslTypeError
from ..runtime.budget import Budget
from ..runtime.faults import fault_point
from .derivation import RULE, SYNTH, Derivation

# Rule-equivalent weight of an implicit And between adjacent filters.
IMPLICIT_AND_SCORE = 0.75


def comb_all(
    receiver: Derivation, filler: Derivation, checker: TypeChecker
) -> list[Derivation]:
    """All single-hole substitutions of ``filler`` into ``receiver``.

    Mirrors the paper's ``CombAll``: the word-disjointness side condition
    (ignoring column words) bounds the closure, and every substitution is
    validated with ``Valid``.
    """
    if receiver.used_non_column & filler.used_non_column:
        return []
    out: list[Derivation] = []
    filler_holes = holes_of(filler.expr)
    if filler_holes:
        # Substituting an open expression into another open expression
        # explodes the closure for no recall benefit; the paper's examples
        # only ever substitute closed sub-expressions.  Skip.
        return out
    for hole in holes_of(receiver.expr):
        if not consistent(filler.expr, hole.kind):
            continue
        candidate = ast.intern(
            substitute_unchecked(receiver.expr, {hole.ident: filler.expr})
        )
        if not checker.valid(candidate):
            continue
        out.append(
            Derivation(
                expr=candidate,
                used=receiver.used | filler.used,
                used_cols=receiver.used_cols | filler.used_cols,
                kind=SYNTH,
                rule_score=receiver.rule_score,
                rule_children=receiver.rule_children,
                synth_children=receiver.synth_children + (filler,),
            )
        )
    return out


def and_merge(
    a: Derivation, b: Derivation, checker: TypeChecker
) -> Derivation | None:
    """Merge two complete filters with an implicit ``And``.

    Only produced in one canonical operand order so the closure does not
    generate both ``And(f, g)`` and ``And(g, f)``.
    """
    if a.used_non_column & b.used_non_column:
        return None
    if holes_of(a.expr) or holes_of(b.expr):
        return None
    if str(a.expr) > str(b.expr):
        return None
    for d in (a, b):
        try:
            if checker.type_of(d.expr).kind is not Kind.FILTER:
                return None
        except DslTypeError:
            return None
    expr = ast.intern(ast.And(a.expr, b.expr))
    if not checker.valid(expr):
        return None
    # Implicit conjunction is closer to a (weak) rule application than to a
    # hole substitution: "capitol hill baristas" conjoins two predicates the
    # way the learned adjacency rules of the paper do, so it is scored as a
    # rule with both filters bound rather than as decaying synthesis.
    return Derivation(
        expr=expr,
        used=a.used | b.used,
        used_cols=a.used_cols | b.used_cols,
        kind=RULE,
        rule_score=IMPLICIT_AND_SCORE,
        rule_children=(a, b),
    )


def _combine_pair(
    a: Derivation, b: Derivation, checker: TypeChecker
) -> list[Derivation]:
    """All combinations of one pair, with the per-pair invariants hoisted.

    Every constituent (``comb_all`` both ways, ``and_merge``) requires
    word-disjointness, so one overlap test retires the pair; ``comb_all``
    only produces when the receiver is open and the filler closed, and
    ``and_merge`` only when both are closed, so the openness of each side
    (cached on the node) selects exactly the calls that can produce.
    Output and ordering are identical to the unconditional cascade.
    """
    if a.used_non_column & b.used_non_column:
        return []
    a_open = bool(holes_of(a.expr))
    b_open = bool(holes_of(b.expr))
    produced: list[Derivation] = []
    if a_open and not b_open:
        produced += comb_all(a, b, checker)
    elif b_open and not a_open:
        produced += comb_all(b, a, checker)
    elif not a_open:  # both closed
        merged = and_merge(a, b, checker) or and_merge(b, a, checker)
        if merged is not None:
            produced.append(merged)
    return produced


def synthesize(
    pool: list[Derivation],
    left: list[Derivation],
    right: list[Derivation],
    checker: TypeChecker,
    max_new: int = 96,
    max_rounds: int = 4,
    budget: Budget | None = None,
) -> list[Derivation]:
    """Close the span's derivations under combination.

    ``pool`` holds every derivation available at this span (the union of
    the two maximal sub-spans); ``left``/``right`` hold the derivations that
    use the span's first / last word.  Round one combines only left x right
    pairs — every other pair lies inside a sub-span and was combined there
    already (semi-naive closure).  Later rounds combine each newly created
    derivation against everything.  Returns the new derivations only.

    When ``budget`` trips mid-closure the loops break and the derivations
    created so far are returned (never lost); the caller's checkpoint then
    raises and triggers the anytime path.
    """
    fault_point("synthesis")
    known: set[tuple] = {d.key() for d in pool}
    everything: list[Derivation] = list(pool)
    created: list[Derivation] = []

    def absorb(items: list[Derivation], sink: list[Derivation]) -> None:
        for item in items:
            if len(created) + len(sink) >= max_new:
                return
            key = item.key()
            if key not in known:
                known.add(key)
                sink.append(item)
                if budget is not None:
                    budget.charge()

    frontier: list[Derivation] = []
    for a in left:
        if len(created) + len(frontier) >= max_new:
            break
        if budget is not None and budget.exceeded("synthesis"):
            break
        for b in right:
            if a.key() == b.key():
                continue
            absorb(_combine_pair(a, b, checker), frontier)
            if len(created) + len(frontier) >= max_new:
                break
    created.extend(frontier)
    everything.extend(frontier)

    for _ in range(max_rounds - 1):
        if not frontier or len(created) >= max_new:
            break
        if budget is not None and budget.exceeded("synthesis"):
            break
        new_round: list[Derivation] = []
        for d in frontier:
            if budget is not None and budget.exceeded("synthesis"):
                break
            for other in everything:
                absorb(_combine_pair(d, other, checker), new_round)
                if len(created) + len(new_round) >= max_new:
                    break
            if len(created) + len(new_round) >= max_new:
                break
        created.extend(new_round)
        everything.extend(new_round)
        frontier = new_round
    return created
