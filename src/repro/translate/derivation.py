"""Derivation histories (paper §3.1).

Every candidate expression the translator produces is wrapped in a
:class:`Derivation` recording *how* it was produced:

* ``used`` / ``used_cols`` — the paper's ``UsedW(e)`` / ``UsedCW(e)``: the
  input word positions consumed, and the subset that was consumed to produce
  column references (excluded from the synthesis disjointness check);
* ``rule_children`` / ``synth_children`` — the paper's
  ``History(e) = (rule, [er...], [es...])``: sub-derivations bound during a
  pattern-rule instantiation vs. substituted during synthesis;
* ``rule_score`` — the score of the rule (or seed) that created the node.

Score components used by the §3.4 ranking are computed eagerly bottom-up, so
each derivation carries its production score and mix statistics at O(1) cost
to the ranker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import ast

ATOM = "atom"
RULE = "rule"
SYNTH = "synth"


@dataclass(frozen=True, eq=False)
class Derivation:
    """One candidate (partial) expression plus its production history.

    Identity-based equality: the translator dedups explicitly on
    :meth:`key`, and score caches live in computed fields.
    """

    expr: ast.Expr
    used: frozenset[int]
    used_cols: frozenset[int] = frozenset()
    kind: str = ATOM
    rule_score: float = 1.0
    rule_children: tuple["Derivation", ...] = ()
    synth_children: tuple["Derivation", ...] = ()
    # computed in __post_init__
    node_score: float = field(init=False, default=1.0)
    prod_score: float = field(init=False, default=1.0)
    swizzled: int = field(init=False, default=0)
    all_pairs: int = field(init=False, default=0)
    # ``UsedW - UsedCW``: the words the synthesis disjointness condition
    # compares (paper §3.2).  Precomputed — ``synthesize`` reads it per pair
    # in the quadratic frontier scan.
    used_non_column: frozenset[int] = field(
        init=False, repr=False, compare=False, default=frozenset()
    )

    def __post_init__(self) -> None:
        # Hash-cons the expression (no-op under REPRO_NO_INTERN): every
        # derivation created anywhere in the pipeline carries a canonical
        # node, so downstream dedup/type-checker probes are identity-backed.
        object.__setattr__(self, "expr", ast.intern(self.expr))
        object.__setattr__(self, "used_non_column", self.used - self.used_cols)
        object.__setattr__(self, "_key", (self.expr, self.used))
        object.__setattr__(self, "node_score", self._node_score())
        total, count = self._prod_parts()
        object.__setattr__(
            self, "prod_score", total / count if count else self.rule_score
        )
        swizzled, pairs = self._mix_parts()
        object.__setattr__(self, "swizzled", swizzled)
        object.__setattr__(self, "all_pairs", pairs)

    # -- identity -------------------------------------------------------------

    def key(self) -> tuple:
        """Dedup key: structurally equal expressions over the same words are
        interchangeable candidates.  Computed eagerly in ``__post_init__`` —
        the closure loops compare keys per pair."""
        return self._key

    @property
    def children(self) -> tuple["Derivation", ...]:
        return self.rule_children + self.synth_children

    # -- §3.4 production score ---------------------------------------------------

    def _node_score(self) -> float:
        """RScore x SScore of this node.

        RScore averages the pairwise mean of this node's rule score with each
        rule-bound child's rule score (pattern applications combine gently);
        SScore multiplies in the production quality of synthesis-substituted
        children (repeated synthesis decays the score toward 0).
        """
        if self.kind == ATOM:
            return self.rule_score
        if self.rule_children:
            r = sum(
                (self.rule_score + c.rule_score) / 2 for c in self.rule_children
            ) / len(self.rule_children)
        else:
            r = self.rule_score
        s = 1.0
        for c in self.synth_children:
            s *= c.prod_score
        return r * s

    def _prod_parts(self) -> tuple[float, int]:
        """(sum of node scores, count) over all non-atom sub-derivations —
        ProdSc is their mean."""
        if self.kind == ATOM:
            return (0.0, 0)
        total, count = self.node_score, 1
        for c in self.children:
            t, n = c._prod_parts()
            total += t
            count += n
        return (total, count)

    # -- §3.4 mix score ------------------------------------------------------------

    def _span(self) -> tuple[int, int] | None:
        if not self.used:
            return None
        return (min(self.used), max(self.used))

    def _mix_parts(self) -> tuple[int, int]:
        """(Swizzled, AllPairs) of this node: child-pair span overlaps plus
        the children's own counts."""
        children = self.children
        if not children:
            return (0, 0)
        swizzled = 0
        pairs = len(children) * (len(children) - 1)
        spans = [c._span() for c in children]
        for i, child in enumerate(children):
            swizzled += child.swizzled
            pairs += child.all_pairs
            a = spans[i]
            if a is None:
                continue
            overlaps = sum(
                1
                for j, b in enumerate(spans)
                if j != i and b is not None and a[0] <= b[1] and b[0] <= a[1]
            )
            swizzled += overlaps
        return (swizzled, pairs)

    @property
    def mix_score(self) -> float:
        if self.all_pairs == 0:
            return 1.0
        return 1.0 - self.swizzled / self.all_pairs

    def cover_score(self, word_weights) -> float:
        """CoverSc(e) = 1 / max(ignored^2, 1).

        ``word_weights`` is either the sentence length (every word weighs 1,
        the paper's literal formula) or a per-position weight sequence.  The
        weighted variant implements the paper's stated intuition — "not
        unduly penalizing expressions that ignore a few possibly redundant
        words" — by making ignored *content* words (values, columns,
        literals) cost much more than ignored filler ("please", "the").
        """
        if isinstance(word_weights, int):
            ignored = float(word_weights - len(self.used))
        else:
            ignored = sum(
                w for k, w in enumerate(word_weights) if k not in self.used
            )
        return 1.0 / max(ignored * ignored, 1.0)

    @property
    def ranking_prod_score(self) -> float:
        """ProdSc as used for *ranking*: the paper sums over non-terminal
        sub-expressions, so a bare atom carries no production evidence and
        scores 0 (it ranks below any actual parse)."""
        if self.kind == ATOM:
            return 0.0
        return self.prod_score

    def score(self, word_weights, full_ranking: bool = True) -> float:
        """The final §3.4 ranking score."""
        if not full_ranking:
            return self.ranking_prod_score
        return (
            self.ranking_prod_score
            * self.cover_score(word_weights)
            * self.mix_score
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Derivation({self.expr}, used={sorted(self.used)}, "
            f"kind={self.kind}, prod={self.prod_score:.3f})"
        )
