"""Tokenization of user descriptions.

Turns a colloquial English description into a sequence of :class:`Token`
objects.  Tokens carry everything later stages need:

* the normalized word (lowercase, punctuation stripped),
* a parsed literal value when the token is a number / currency / percent /
  spelled-out number ("twenty"),
* whether the token is an A1-style cell reference (``I2``),
* spell-correction state (filled in by the translator once it has a sheet
  context to correct against; the UI underlines corrected words in red).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from ..sheet.address import is_cell_reference
from ..sheet.values import CellValue, parse_literal, parse_word_number

# Comparison / arithmetic symbols become their own tokens ("totalpay > 500").
_SYMBOLS = "<>=+*/()"
_SYMBOL_RE = re.compile(r"([<>=+*/()])")
_STRIP_CHARS = ".,!?;:'\"`"


@dataclass(frozen=True)
class Token:
    """One input token."""

    text: str
    raw: str
    index: int
    literal: CellValue | None = None
    is_cellref: bool = False
    corrected_from: str | None = None

    @property
    def is_symbol(self) -> bool:
        return len(self.text) == 1 and self.text in _SYMBOLS

    @property
    def misspelled(self) -> bool:
        return self.corrected_from is not None

    def with_correction(self, corrected: str) -> "Token":
        """The token with its text replaced by a spell correction."""
        return replace(
            self, text=corrected, corrected_from=self.text, literal=None
        )


def _split_raw(sentence: str) -> list[str]:
    pieces: list[str] = []
    for chunk in sentence.split():
        # Don't split "$1,000.50", "3.5", "15%"; do split "(basepay" and ">500".
        if parse_literal(chunk.strip(_STRIP_CHARS)) is not None:
            pieces.append(chunk.strip(_STRIP_CHARS))
            continue
        for part in _SYMBOL_RE.split(chunk):
            part = part.strip()
            if part:
                pieces.append(part)
    return pieces


def _normalize(word: str) -> str:
    word = word.strip(_STRIP_CHARS).lower()
    # possessives: "employee's" -> "employee"
    if word.endswith("'s"):
        word = word[:-2]
    return word


def tokenize(sentence: str) -> list[Token]:
    """Tokenize a description.

    Literal-looking tokens get their parsed :class:`CellValue`; cell
    references are flagged; everything else is a plain lowercase word.
    Empty results of normalization (bare punctuation) are dropped.
    """
    tokens: list[Token] = []
    for raw in _split_raw(sentence):
        text = _normalize(raw)
        if not text:
            continue
        if len(text) == 1 and text in _SYMBOLS:
            tokens.append(Token(text=text, raw=raw, index=len(tokens)))
            continue
        literal = parse_literal(text)
        if literal is None:
            literal = parse_word_number(text)
        cellref = literal is None and is_cell_reference(text)
        tokens.append(
            Token(
                text=text,
                raw=raw,
                index=len(tokens),
                literal=literal,
                is_cellref=cellref,
            )
        )
    return tokens


def words_of(tokens: list[Token]) -> list[str]:
    return [t.text for t in tokens]
