"""Rule-based translation of one fragment (paper Algo 3).

For every rule whose template aligns with the fragment, fill the bound
holes of the rule's partial expression:

* ``L`` holes from the literal token in the aligned range (``MakeLiteral``),
* ``V`` holes from sheet values matching the range (``MakeValue``),
* ``C`` holes via ``ResolveCol`` — a direct column-header match, the
  "column H" letter form, or the columns *containing* a matched value,
* ``G`` holes from the TMap translations of the aligned sub-span,

then substitute (with the ``Valid`` check) to produce derivations.  Holes
not bound by any template pattern stay open for the synthesis algorithm.
"""

from __future__ import annotations

import itertools

from ..dsl import ast
from ..dsl.holes import holes_of, substitute
from ..dsl.types import TypeChecker
from ..runtime.budget import Budget
from ..runtime.faults import fault_point
from ..sheet import CellValue
from ..sheet.columnar import columnar_enabled
from .alignment import CompiledTemplate, align, compile_template, quick_reject
from .context import SheetContext
from .derivation import RULE, Derivation
from .patterns import MustPat, OptPat
from .rules import Rule, RuleSet
from .seeds import _column_ref, literal_seeds
from .tokenizer import Token

_MAX_OPTIONS_PER_HOLE = 16
_MAX_COMBINATIONS = 24
_MAX_ATTEMPTS = 512

SpanMap = dict  # dict[tuple[int, int], list[Derivation]] with absolute spans


class RuleTranslator:
    """Applies a rule set to sentence fragments."""

    def __init__(
        self,
        rules: RuleSet,
        ctx: SheetContext,
        checker: TypeChecker,
        max_alignments: int = 16,
    ) -> None:
        self.rules = rules
        self.ctx = ctx
        self.checker = checker
        self.max_alignments = max_alignments
        # Compiled alignment automata, one per rule, fetched from the
        # cross-request intern table (:func:`compile_template`) so repeated
        # translator constructions — and forked workers — share them.
        # Keyed by rule identity (``self.rules`` keeps them alive); probes
        # in the DP inner loop are int-keyed dict hits, not tuple hashes.
        self._compiled: dict[int, CompiledTemplate] = {}
        if columnar_enabled():
            for rule in rules:
                self._compiled[id(rule)] = compile_template(rule.template)

    # -- entry point ----------------------------------------------------------

    def sentence_rules(self, tokens: list[Token]) -> list[Rule]:
        """The rules that can possibly align with *some* fragment of the
        sentence.

        Every fragment's word set is a subset of the sentence's, so a rule
        ``quick_reject``-ed against the whole sentence is rejected at every
        span — computing the live set once per sentence removes the
        per-(rule, span) template scans from the O(n²) DP inner loop.
        """
        words = frozenset(t.text for t in tokens)
        return [
            r for r in self.rules if not self._quick_reject(r, words)
        ]

    def _quick_reject(self, rule: Rule, words: frozenset[str]) -> bool:
        compiled = (
            self._compiled.get(id(rule)) if columnar_enabled() else None
        )
        if compiled is not None:
            return compiled.quick_reject(words)
        return quick_reject(rule.template, words)

    def translate_span(
        self,
        tokens: list[Token],
        start: int,
        end: int,
        tmap: SpanMap,
        budget: Budget | None = None,
        rules: list[Rule] | None = None,
    ) -> list[Derivation]:
        """All rule-derived derivations for ``tokens[start:end]``.

        ``rules`` (optional) restricts the scan to a precomputed live set
        (see :meth:`sentence_rules`); the default scans the full rule set.
        A tripped ``budget`` stops the rule loop between rules; the
        derivations produced so far are returned so the anytime path can
        still rank them.
        """
        fault_point("rules")
        fragment = tokens[start:end]
        fragment_words = frozenset(t.text for t in fragment)
        out: list[Derivation] = []
        compiled_for = self._compiled if columnar_enabled() else None
        for rule in self.rules if rules is None else rules:
            if budget is not None and budget.exceeded("rules"):
                break
            compiled = (
                compiled_for.get(id(rule)) if compiled_for is not None
                else None
            )
            if compiled is not None:
                if compiled.quick_reject(fragment_words):
                    continue
                alignments = compiled.align(
                    fragment, self.ctx, cap=self.max_alignments
                )
            else:
                if quick_reject(rule.template, fragment_words):
                    continue
                alignments = align(
                    rule.template, fragment, self.ctx,
                    cap=self.max_alignments,
                )
            for alignment in alignments:
                produced = self._apply(rule, alignment, fragment, start, tmap)
                if budget is not None:
                    budget.charge(len(produced))
                out.extend(produced)
        return out

    # -- rule application ---------------------------------------------------------

    def _apply(
        self,
        rule: Rule,
        alignment: tuple,
        fragment: list[Token],
        offset: int,
        tmap: SpanMap,
    ) -> list[Derivation]:
        range_by_ident = {
            pattern.ident: alignment[k]
            for k, pattern in enumerate(rule.template)
            if pattern.ident is not None
        }
        pattern_used = self._pattern_used(rule, alignment, fragment, offset)

        options: list[tuple[int, list[Derivation]]] = []
        seen_idents: set[int] = set()
        for hole in holes_of(rule.expr):
            if hole.ident in seen_idents:
                continue  # shared ident: one binding fills every copy
            seen_idents.add(hole.ident)
            rng = range_by_ident.get(hole.ident)
            if rng is None:
                continue  # unbound: synthesis fills it later
            choices = self._bindings(hole, rng, fragment, offset, tmap)
            if not choices:
                return []
            # One option per distinct expression (TMap holds several
            # derivations of the same expression over different word sets);
            # keep the best-produced, widest-coverage one.
            by_expr: dict[ast.Expr, Derivation] = {}
            for d in choices:
                kept = by_expr.get(d.expr)
                if kept is None or d.prod_score * (1 + len(d.used)) > (
                    kept.prod_score * (1 + len(kept.used))
                ):
                    by_expr[d.expr] = d
            # Coverage-weighted order: a wide-coverage sub-derivation is a
            # far better binding candidate than a high-prod single atom.
            deduped = sorted(
                by_expr.values(),
                key=lambda d: -(d.prod_score * (1 + len(d.used))),
            )
            options.append((hole.ident, deduped[:_MAX_OPTIONS_PER_HOLE]))

        out: list[Derivation] = []
        idents = [ident for ident, _ in options]
        pools = [choices for _, choices in options]
        attempts = 0
        for combo in itertools.product(*pools):
            attempts += 1
            if attempts > _MAX_ATTEMPTS or len(out) >= _MAX_COMBINATIONS:
                break
            bindings = dict(zip(idents, (d.expr for d in combo)))
            expr = substitute(rule.expr, bindings, self.checker)
            if expr is None:
                continue
            used = frozenset(pattern_used)
            used_cols = frozenset()
            for child in combo:
                used |= child.used
                used_cols |= child.used_cols
            out.append(
                Derivation(
                    expr=expr,
                    used=used,
                    used_cols=used_cols,
                    kind=RULE,
                    rule_score=rule.score,
                    rule_children=tuple(combo),
                )
            )
        return out

    def _pattern_used(
        self, rule: Rule, alignment: tuple, fragment: list[Token], offset: int
    ) -> set[int]:
        """Absolute positions consumed by Must/Opt patterns (slack words in
        an OptPat range are *not* used — they are the ignorable words)."""
        used: set[int] = set()
        for pattern, (l, u) in zip(rule.template, alignment):
            if isinstance(pattern, MustPat):
                used.update(range(offset + l, offset + u))
            elif isinstance(pattern, OptPat):
                for k in range(l, u):
                    if fragment[k].text in pattern.words:
                        used.add(offset + k)
        return used

    # -- hole resolution --------------------------------------------------------

    def _bindings(
        self,
        hole: ast.Hole,
        rng: tuple[int, int],
        fragment: list[Token],
        offset: int,
        tmap: SpanMap,
    ) -> list[Derivation]:
        l, u = rng
        if hole.kind is ast.HoleKind.LITERAL:
            return literal_seeds(fragment[l], offset + l)
        if hole.kind is ast.HoleKind.VALUE:
            return self._make_values(fragment, l, u, offset)
        if hole.kind is ast.HoleKind.COLUMN:
            return self._resolve_col(fragment, l, u, offset)
        # GENERAL: previously computed translations of the sub-span.
        return list(tmap.get((offset + l, offset + u), ()))

    def _make_values(
        self, fragment: list[Token], l: int, u: int, offset: int
    ) -> list[Derivation]:
        words = tuple(t.text for t in fragment[l:u])
        positions = frozenset(range(offset + l, offset + u))
        out: list[Derivation] = []
        seen: set[str] = set()
        for match in self.ctx.match_value(words):
            if match.value in seen:
                continue
            seen.add(match.value)
            out.append(
                Derivation(
                    expr=ast.Lit(CellValue.text(match.value)), used=positions
                )
            )
        return out

    def _resolve_col(
        self, fragment: list[Token], l: int, u: int, offset: int
    ) -> list[Derivation]:
        words = tuple(t.text for t in fragment[l:u])
        positions = frozenset(range(offset + l, offset + u))
        out: list[Derivation] = []
        if len(words) == 2 and words[0] == "column":
            match = self.ctx.column_by_letter(words[1])
            if match is not None:
                return [
                    Derivation(
                        expr=_column_ref(self.ctx, match.table, match.column),
                        used=positions,
                        used_cols=positions,
                    )
                ]
        seen: set[tuple[str, str]] = set()
        for match in self.ctx.match_column(words):
            slot = (match.table, match.column)
            if slot in seen:
                continue
            seen.add(slot)
            out.append(
                Derivation(
                    expr=_column_ref(self.ctx, match.table, match.column),
                    used=positions,
                    used_cols=positions,
                    rule_score=0.95 if match.via_value else 1.0,
                )
            )
        return out
