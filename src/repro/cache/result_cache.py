"""A bounded, thread-safe LRU+TTL cache for translation results.

:class:`ResultCache` stores ranked-candidate payloads under a
:class:`~repro.cache.keys.CacheKey`.  It is deliberately generic about the
payload — the in-process service layer stores candidate tuples, the
gateway stores the flat serialised reply that crossed the worker pipe —
and strict about everything else:

* **bounded** — at most ``capacity`` entries; inserting past the bound
  evicts the least-recently-used entry (a ``get`` refreshes recency);
* **TTL** — entries older than ``ttl`` seconds are dropped on access
  (``stale_drops``) instead of being served;
* **invalidation** — :meth:`invalidate` removes every entry for one
  workbook fingerprint in O(entries for that fingerprint), via a
  secondary fingerprint index.  This is the hook serving layers pull when
  a workbook mutates (its fingerprint changes) or its circuit breaker
  trips;
* **thread-safe** — one lock around all map state; callers on any number
  of threads never observe a partially-committed entry;
* **observable** — every event feeds a
  :class:`~repro.obs.metrics.MetricsRegistry` (``cache_*`` metrics, each
  mutation under the metric's own lock — no unlocked read-modify-write
  anywhere).  :meth:`stats` returns the typed :class:`CacheStats` view
  over the registry, and both the cache and the snapshot speak the
  ``snapshot()`` protocol of :mod:`repro.obs.metrics`.

Payloads must be treated as immutable by callers: the cache hands back
the stored object itself, so integration layers store tuples / frozen
payloads and copy on the way out where mutation is possible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Any

from ..obs.clock import Clock, monotonic
from ..obs.metrics import MetricsRegistry
from .keys import CacheKey

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """An immutable diagnostics snapshot of one :class:`ResultCache`."""

    hits: int
    misses: int
    puts: int
    evictions: int
    stale_drops: int
    invalidated: int
    size: int
    capacity: int
    hit_seconds_total: float
    miss_seconds_total: float

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def avg_hit_seconds(self) -> float:
        return self.hit_seconds_total / self.hits if self.hits else 0.0

    @property
    def avg_miss_seconds(self) -> float:
        return self.miss_seconds_total / self.misses if self.misses else 0.0

    @property
    def speedup(self) -> float:
        """Observed miss latency over hit latency (0 until both observed)."""
        if not self.hits or not self.misses or self.hit_seconds_total == 0.0:
            return 0.0
        return self.avg_miss_seconds / self.avg_hit_seconds

    def snapshot(self) -> dict[str, Any]:
        """The ``snapshot()`` protocol: fields plus derived rates."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out.update(
            lookups=self.lookups,
            hit_rate=self.hit_rate,
            avg_hit_seconds=self.avg_hit_seconds,
            avg_miss_seconds=self.avg_miss_seconds,
            speedup=self.speedup,
        )
        return out


class ResultCache:
    """Bounded thread-safe LRU+TTL map from :class:`CacheKey` to payload.

    ``metrics`` attaches the cache to a shared
    :class:`~repro.obs.metrics.MetricsRegistry` (the gateway passes its
    own, so one scrape covers admission, pool, and cache); by default the
    cache owns a private registry.  All ``cache_*`` metric names are
    documented in docs/OBSERVABILITY.md.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float | None = None,
        clock: Clock = monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None for no expiry)")
        self.capacity = capacity
        self.ttl = ttl
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry(clock)
        self._lock = threading.Lock()
        # Insertion order doubles as recency order (moved-to-end on get).
        self._entries: dict[CacheKey, tuple[Any, float | None]] = {}
        self._by_fingerprint: dict[str, set[CacheKey]] = {}
        m = self.metrics
        self._hits = m.counter("cache_hits_total", "lookups served from cache")
        self._misses = m.counter("cache_misses_total", "lookups not in cache")
        self._puts = m.counter("cache_puts_total", "entries committed")
        self._evictions = m.counter("cache_evictions_total", "LRU evictions")
        self._stale = m.counter("cache_stale_drops_total", "TTL expiries")
        self._invalidated = m.counter(
            "cache_invalidated_total", "entries dropped by invalidation"
        )
        self._size = m.gauge("cache_size", "entries resident")
        self._hit_seconds = m.histogram(
            "cache_hit_seconds", "caller-reported latency of cache hits"
        )
        self._miss_seconds = m.histogram(
            "cache_miss_seconds", "caller-reported latency of cache misses"
        )

    # -- the data path -----------------------------------------------------------

    def get(self, key: CacheKey) -> Any | None:
        """The payload for ``key``, or ``None`` (miss / expired)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            value, expires_at = entry
            if expires_at is not None and self.clock() >= expires_at:
                self._remove(key)
                self._stale.inc()
                self._misses.inc()
                self._size.set(len(self._entries))
                return None
            # LRU touch: re-insert at the most-recent end.
            del self._entries[key]
            self._entries[key] = entry
            self._hits.inc()
            return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Commit ``value`` under ``key`` (refreshes TTL and recency)."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            expires_at = (
                self.clock() + self.ttl if self.ttl is not None else None
            )
            self._entries[key] = (value, expires_at)
            self._by_fingerprint.setdefault(key.fingerprint, set()).add(key)
            self._puts.inc()
            while len(self._entries) > self.capacity:
                oldest = next(iter(self._entries))
                self._remove(oldest)
                self._evictions.inc()
            self._size.set(len(self._entries))

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry for one workbook fingerprint; returns count."""
        with self._lock:
            keys = self._by_fingerprint.get(fingerprint)
            if not keys:
                return 0
            dropped = 0
            for key in list(keys):
                self._remove(key)
                dropped += 1
            self._invalidated.inc(dropped)
            self._size.set(len(self._entries))
            return dropped

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._by_fingerprint.clear()
            self._invalidated.inc(dropped)
            self._size.set(0)
            return dropped

    def _remove(self, key: CacheKey) -> None:
        self._entries.pop(key, None)
        keys = self._by_fingerprint.get(key.fingerprint)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_fingerprint[key.fingerprint]

    # -- latency accounting (reported by the layer that owns the timer) ----------

    def observe_hit(self, seconds: float) -> None:
        self._hit_seconds.observe(seconds)

    def observe_miss(self, seconds: float) -> None:
        self._miss_seconds.observe(seconds)

    # -- diagnostics -------------------------------------------------------------

    def stats(self) -> CacheStats:
        """The typed snapshot, assembled from the metrics registry."""
        with self._lock:
            size = len(self._entries)
        return CacheStats(
            hits=int(self._hits.total()),
            misses=int(self._misses.total()),
            puts=int(self._puts.total()),
            evictions=int(self._evictions.total()),
            stale_drops=int(self._stale.total()),
            invalidated=int(self._invalidated.total()),
            size=size,
            capacity=self.capacity,
            hit_seconds_total=self._hit_seconds.sum(),
            miss_seconds_total=self._miss_seconds.sum(),
        )

    def snapshot(self) -> dict[str, Any]:
        """The ``snapshot()`` protocol (same shape as ``stats().snapshot()``)."""
        return self.stats().snapshot()

    def entries(self) -> list[tuple[CacheKey, Any]]:
        """A point-in-time snapshot (recency order, oldest first)."""
        with self._lock:
            return [(k, v) for k, (v, _) in self._entries.items()]

    def keys(self) -> list[CacheKey]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        """Membership without touching recency, TTL, or hit counters."""
        with self._lock:
            return key in self._entries
