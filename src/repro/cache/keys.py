"""Cache keys: what makes two translation requests "the same request".

NLyze's translation pipeline (paper Algos 1-3) is a deterministic dynamic
program: for a fixed sentence, a fixed spreadsheet state, and a fixed
configuration, the ranked candidate list is a pure function of its inputs.
That makes the memoisation key three-dimensional:

* **sentence** — normalised with exactly the transformations the tokenizer
  already applies to every word (lowercasing, whitespace collapse), so two
  phrasings that tokenize identically share one entry;
* **fingerprint** — ``Workbook.fingerprint()``, the stable content hash of
  the whole interactive state.  Any visible mutation (cell edit, cursor
  move, selection change, format change) changes the fingerprint, which is
  what makes stale entries unreachable;
* **options** — a signature of every knob that can change the output: the
  translator configuration, the rule set, and serving-level options such
  as ``top_k``.

Nothing time-dependent belongs in the key: results are only ever cached
from *clean, fully-searched* runs (see :mod:`repro.cache.result_cache`),
whose output is provably independent of the deadline that happened to be
in force.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

__all__ = ["CacheKey", "normalise_sentence", "options_signature"]


@dataclass(frozen=True)
class CacheKey:
    """One memoisation slot: (normalised sentence, fingerprint, options)."""

    sentence: str
    fingerprint: str
    options: str


def normalise_sentence(sentence: str) -> str:
    """Collapse a description to its cache-equivalence representative.

    Lowercases and collapses runs of whitespace — both are transformations
    the tokenizer applies per word anyway (``_normalize`` lowercases,
    ``str.split`` ignores whitespace runs), so normalised-equal sentences
    produce token streams with identical ``text``/``literal`` content and
    therefore identical ranked programs.  Only ``Token.raw`` (a
    display-only field) can differ between two phrasings sharing an entry.
    """
    return " ".join(sentence.split()).lower()


def options_signature(*parts: object) -> str:
    """A stable signature over configuration objects and primitives.

    Dataclasses are rendered field-by-field in declaration order (so two
    equal configs always sign identically); everything else falls back to
    ``repr``.  The result is digested so keys stay small regardless of how
    many knobs a layer folds in.
    """
    rendered: list[str] = []
    for part in parts:
        if dataclasses.is_dataclass(part) and not isinstance(part, type):
            fields = ",".join(
                f"{f.name}={getattr(part, f.name)!r}"
                for f in dataclasses.fields(part)
            )
            rendered.append(f"{type(part).__name__}({fields})")
        else:
            rendered.append(repr(part))
    digest = hashlib.sha256("|".join(rendered).encode("utf-8", "replace"))
    return digest.hexdigest()[:16]
