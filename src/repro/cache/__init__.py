"""Memoised translation results: cache keys and the bounded result cache.

The translation pipeline is deterministic for a fixed ``(sentence,
workbook fingerprint, options)`` triple, so identical requests must rank
identically — the memoisation opportunity this package exploits.  It is
integrated at two layers (see ``docs/CACHING.md``):

* :class:`repro.runtime.TranslationService` memoises per degradation-
  ladder rung in process;
* :class:`repro.serve.TranslationGateway` answers repeat requests in the
  front end, before admission control, without touching the worker pool.

This package has no dependencies on the translation stack: keys are
strings, payloads are opaque, and both layers bring their own
serialisation.
"""

from .codec import CODEC_VERSION, decode_entry, encode_entry, store_key
from .keys import CacheKey, normalise_sentence, options_signature
from .result_cache import CacheStats, ResultCache

__all__ = [
    "CODEC_VERSION",
    "CacheKey",
    "CacheStats",
    "ResultCache",
    "decode_entry",
    "encode_entry",
    "normalise_sentence",
    "options_signature",
    "store_key",
]
