"""Serialisable cache entries: the wire format of the shared cache tier.

The in-process :class:`~repro.cache.result_cache.ResultCache` stores live
Python objects, which is fine while every reader shares the process that
wrote them.  A *shared* cache tier (``repro.cluster``) needs the opposite:
an entry written by one gateway shard must be readable by any other shard
— or by a future external store such as Redis — so the entry has to cross
a byte boundary.  This module is that boundary.

Design constraints, in order:

* **self-describing and versioned** — every blob starts with a version
  field; a reader that sees an unknown version treats the entry as a miss
  instead of guessing;
* **no pickle** — a shared tier is a trust boundary; entries are plain
  JSON (UTF-8) so a poisoned store can corrupt *answers*, never execute
  code;
* **byte-exact round trips** — scores are floats and the differential
  harness compares rankings byte-for-byte, so the codec must not perturb
  them.  ``json`` serialises floats via ``repr`` (shortest round-trip
  form), which Python guarantees to parse back to the identical double;
* **strict on decode** — a blob that does not validate raises
  :class:`~repro.errors.CacheCodecError` (``cache_codec_error``); the
  shared tier converts that into a miss and drops the entry, so one
  corrupt blob can never wedge serving.

The payload schema is exactly the flat reply the gateway already commits
to its front-end cache (``tier``, ``programs``, ``n_candidates``,
``top_formula``, ``elapsed``, ``budget_spent``) — no DSL objects, no
workbooks, nothing process-local.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..errors import CacheCodecError
from .keys import CacheKey

__all__ = [
    "CODEC_VERSION",
    "PAYLOAD_FIELDS",
    "decode_entry",
    "encode_entry",
    "store_key",
]

CODEC_VERSION = 1

# Field name -> accepted types, the full gateway reply payload schema.
PAYLOAD_FIELDS: dict[str, tuple] = {
    "tier": (str,),
    "programs": (list, tuple),
    "n_candidates": (int,),
    "top_formula": (str, type(None)),
    "elapsed": (int, float),
    "budget_spent": (int,),
}


def store_key(key: CacheKey, namespace: str = "repro") -> str:
    """Render a :class:`CacheKey` as a flat store key string.

    The fingerprint comes first so a backing store can invalidate a whole
    workbook with one prefix scan (``{namespace}:{fingerprint}:*``); the
    sentence is digested so arbitrary user text never appears in a key.
    """
    sentence_digest = hashlib.sha256(key.sentence.encode("utf-8")).hexdigest()
    return f"{namespace}:{key.fingerprint}:{sentence_digest[:24]}:{key.options}"


def _check_payload(payload: Any) -> dict:
    if not isinstance(payload, dict):
        raise CacheCodecError(
            f"payload must be a mapping, got {type(payload).__name__}"
        )
    if set(payload) != set(PAYLOAD_FIELDS):
        missing = set(PAYLOAD_FIELDS) - set(payload)
        extra = set(payload) - set(PAYLOAD_FIELDS)
        raise CacheCodecError(
            f"payload fields mismatch (missing={sorted(missing)}, "
            f"unexpected={sorted(extra)})"
        )
    for name, types in PAYLOAD_FIELDS.items():
        value = payload[name]
        if not isinstance(value, types) or isinstance(value, bool):
            raise CacheCodecError(
                f"payload field {name!r} has type {type(value).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
    for i, pair in enumerate(payload["programs"]):
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not isinstance(pair[0], str)
            or not isinstance(pair[1], (int, float))
            or isinstance(pair[1], bool)
        ):
            raise CacheCodecError(
                f"programs[{i}] must be a (program, score) pair, got {pair!r}"
            )
    return payload


def encode_entry(key: CacheKey, payload: dict) -> bytes:
    """Serialise one cache entry (key + reply payload) to bytes.

    Raises :class:`~repro.errors.CacheCodecError` if the payload does not
    match the reply schema — a malformed entry must fail at *commit* time
    on the shard that produced it, never at read time on an innocent one.
    """
    _check_payload(payload)
    record = {
        "v": CODEC_VERSION,
        "key": {
            "sentence": key.sentence,
            "fingerprint": key.fingerprint,
            "options": key.options,
        },
        "payload": {
            "tier": payload["tier"],
            "programs": [[p, s] for p, s in payload["programs"]],
            "n_candidates": payload["n_candidates"],
            "top_formula": payload["top_formula"],
            "elapsed": payload["elapsed"],
            "budget_spent": payload["budget_spent"],
        },
    }
    return json.dumps(
        record, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")


def decode_entry(data: bytes) -> tuple[CacheKey, dict]:
    """Parse a blob back into ``(CacheKey, payload)``.

    The returned payload has the exact in-process shape the gateway cache
    stores: ``programs`` is a tuple of ``(program, score)`` tuples.  Any
    structural problem raises :class:`~repro.errors.CacheCodecError`.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise CacheCodecError(
            f"expected bytes, got {type(data).__name__}"
        )
    try:
        record = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CacheCodecError(f"undecodable cache entry: {exc}")
    if not isinstance(record, dict):
        raise CacheCodecError("cache entry is not a JSON object")
    version = record.get("v")
    if version != CODEC_VERSION:
        raise CacheCodecError(f"unsupported codec version: {version!r}")
    raw_key = record.get("key")
    if (
        not isinstance(raw_key, dict)
        or not all(
            isinstance(raw_key.get(f), str)
            for f in ("sentence", "fingerprint", "options")
        )
    ):
        raise CacheCodecError("malformed cache key in entry")
    payload = _check_payload(record.get("payload"))
    key = CacheKey(
        sentence=raw_key["sentence"],
        fingerprint=raw_key["fingerprint"],
        options=raw_key["options"],
    )
    return key, {
        "tier": payload["tier"],
        "programs": tuple((p, s) for p, s in payload["programs"]),
        "n_candidates": payload["n_candidates"],
        "top_formula": payload["top_formula"],
        "elapsed": payload["elapsed"],
        "budget_spent": payload["budget_spent"],
    }
