"""Beam-size ablation (a reproduction-specific design choice).

The paper's C# implementation closes each span exhaustively; the Python
reproduction bounds per-span derivation sets with a beam (see DESIGN.md).
This bench substantiates the claim that results are stable under the beam:
top-1 outcomes on a description sample must agree between the default beam
and a double-size beam, and the beam must buy real latency.
"""

from __future__ import annotations

import time

import pytest

from repro.evalkit import TaskOracle, evaluate_batch
from repro.translate import Translator, TranslatorConfig

_BEAMS = (60, 110, 220)


def _boards(corpus, oracle, beam, n=60):
    config = TranslatorConfig(beam_size=beam)
    sample = corpus.test[:n]
    translators = {
        s: Translator(oracle.workbook(s), config=config)
        for s in oracle.workbooks
    }
    return evaluate_batch(sample, oracle=oracle, translators=translators)


@pytest.fixture(scope="module")
def by_beam(corpus, oracle):
    return {beam: _boards(corpus, oracle, beam) for beam in _BEAMS}


def test_print_beam_ablation(benchmark, by_beam):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for beam, board in by_beam.items():
        print(
            f"  beam={beam:<4} top1={board.top1_rate:.1%} "
            f"all={board.recall:.1%} avg={board.avg_seconds*1000:.0f}ms"
        )


def test_default_beam_matches_double_beam(benchmark, by_beam):
    """Doubling the beam must not change top-1 results (the default beam is
    not the accuracy bottleneck)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    default = by_beam[110]
    double = by_beam[220]
    assert abs(default.top1_rate - double.top1_rate) <= 0.02
    assert abs(default.recall - double.recall) <= 0.02


def test_small_beam_is_faster(benchmark, by_beam):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert by_beam[60].avg_seconds <= by_beam[220].avg_seconds


@pytest.mark.parametrize("beam", _BEAMS)
def test_beam_latency(benchmark, oracle, beam):
    translator = Translator(
        oracle.workbook("payroll"), config=TranslatorConfig(beam_size=beam)
    )
    benchmark(
        translator.translate,
        "computer please sum the hours for the capitol hill location baristas",
    )
