"""Rule-set size scaling (design-choice ablation).

The paper attributes precision to the pattern rules and recall to
synthesis.  A direct corollary worth measuring: top-1 accuracy should grow
monotonically-ish with the fraction of the rule set available, while recall
stays high even with few rules (synthesis compensates).  This bench slices
the base rule set and measures both.
"""

from __future__ import annotations

import pytest

from repro.evalkit import evaluate_batch
from repro.rules import builtin_rules
from repro.translate import RuleSet, Translator

_FRACTIONS = (0.25, 0.5, 1.0)


def _sliced_rules(fraction: float) -> RuleSet:
    rules = list(builtin_rules())
    keep = max(1, int(len(rules) * fraction))
    # deterministic spread across rule families rather than a prefix
    step = len(rules) / keep
    return RuleSet([rules[int(k * step)] for k in range(keep)])


@pytest.fixture(scope="module")
def by_fraction(corpus, oracle):
    sample = corpus.test[:60]
    out = {}
    for fraction in _FRACTIONS:
        rules = _sliced_rules(fraction)
        translators = {
            s: Translator(oracle.workbook(s), rules=rules)
            for s in oracle.workbooks
        }
        out[fraction] = evaluate_batch(
            sample, oracle=oracle, translators=translators
        )
    return out


def test_print_rule_scaling(benchmark, by_fraction):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for fraction, board in by_fraction.items():
        print(
            f"  {fraction:>4.0%} of rules: top1={board.top1_rate:.1%} "
            f"all={board.recall:.1%}"
        )


def test_precision_grows_with_rules(benchmark, by_fraction):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert by_fraction[1.0].top1_rate >= by_fraction[0.25].top1_rate


def test_synthesis_keeps_recall_with_few_rules(benchmark, by_fraction):
    """Even at a quarter of the rule set, synthesis + seeds must keep
    recall within striking distance of the full system."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert by_fraction[0.25].recall >= by_fraction[1.0].recall - 0.25


def test_quarter_ruleset_latency(benchmark, oracle):
    translator = Translator(
        oracle.workbook("payroll"), rules=_sliced_rules(0.25)
    )
    benchmark(
        translator.translate, "sum the totalpay for the capitol hill baristas"
    )
