"""Hot-path speedup bar — interning + memoisation must buy >= 2x.

The DP optimisations (hash-consed ASTs, memoised type checking, derivation
fast paths, the per-sentence seed index — docs/PERFORMANCE.md) are all
gated on one switch, disabled by ``REPRO_NO_INTERN=1``.  This bench runs
the same cold workload (an even subsample of the Table 2 test split, no
result cache) in two fresh subprocesses — one per mode — and enforces:

* **speedup**: optimised wall time must be >= 2x faster than the
  de-optimised baseline (the pre-optimisation code paths, kept intact);
* **identity**: both modes must serialise byte-identical rankings
  (programs, scores, Excel emission) — the bench doubles as a smoke-level
  differential; the full-split harness is ``tests/test_differential_intern``.

Each run appends a row to ``BENCH_hotpath.json`` (override the location
with ``REPRO_BENCH_OUT``), the benchmark trajectory CI uploads as an
artifact.

A second bar covers the columnar sheet backend (``repro.sheet.columnar``,
disabled by ``REPRO_NO_COLUMNAR=1``): the same subprocess A/B over a
generated large-sheet workload (``repro.dataset.stress``), cold in the
strict sense — a fresh ``Translator`` per request, so sheet indexing is
inside the timed region.  Size and sample are tunable via
``REPRO_LARGESHEET_ROWS`` / ``REPRO_LARGESHEET_SAMPLE``.

Run the measured child directly for one mode::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --child 48
    REPRO_NO_INTERN=1 PYTHONPATH=src python benchmarks/bench_hotpath.py --child 48
    PYTHONPATH=src python benchmarks/bench_hotpath.py --child-large 12
    REPRO_NO_COLUMNAR=1 PYTHONPATH=src python benchmarks/bench_hotpath.py --child-large 12
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

SPEEDUP_BAR = 2.0
LARGESHEET_SPEEDUP_BAR = 2.0
_SAMPLE = int(os.environ.get("REPRO_HOTPATH_SAMPLE", "48"))
_LARGE_ROWS = int(os.environ.get("REPRO_LARGESHEET_ROWS", "10000"))
_LARGE_SAMPLE = int(os.environ.get("REPRO_LARGESHEET_SAMPLE", "12"))
_ROUNDS = 2  # take the fastest round per mode (absorbs machine noise)


def _child(n: int) -> dict:
    """Translate an even n-sample of the test split; report time + digest."""
    from repro.dataset import SHEET_ORDER, Corpus, build_sheet
    from repro.dsl import ast
    from repro.dsl.excel import ExcelEmitter
    from repro.translate import Translator

    test = Corpus.default().test
    step = len(test) / n
    sample = [test[int(k * step)] for k in range(n)]
    workbooks = {s: build_sheet(s) for s in SHEET_ORDER}
    translators = {s: Translator(workbooks[s]) for s in SHEET_ORDER}
    # One warm-up translation per sheet: imports, rule parsing, and sheet
    # indexing are one-time costs, not the per-request hot path.
    for sheet_id, translator in translators.items():
        translator.translate("sum " + workbooks[sheet_id].default_table.name)

    digest = hashlib.sha256()
    start = time.perf_counter()
    for d in sample:
        candidates = translators[d.sheet_id].translate(d.text)
        for c in candidates:
            emitted = ExcelEmitter(workbooks[d.sheet_id]).emit(c.program)
            digest.update(
                f"{d.sheet_id}\t{d.text}\t{c.program}\t{c.score!r}\t"
                f"{emitted}\n".encode()
            )
    seconds = time.perf_counter() - start
    return {
        "n": n,
        "seconds": seconds,
        "per_translation_ms": seconds / n * 1000.0,
        "sha256": digest.hexdigest(),
        "hotpath": ast.hotpath_enabled(),
    }


def _child_large(n: int) -> dict:
    """Cold-translate n stress sentences against a large generated sheet.

    Cold here means a fresh ``Translator`` per request: with the columnar
    backend on, the first request pays the (revision-memoised) index
    build and later ones probe it; with ``REPRO_NO_COLUMNAR=1`` every
    request re-walks all rows — both are the real per-mode behaviours.
    """
    from repro.dataset import SHEET_ORDER, build_sheet, stress_sentences, \
        stress_workbook
    from repro.dsl.excel import ExcelEmitter
    from repro.sheet import columnar_enabled
    from repro.translate import Translator

    workbook = stress_workbook(_LARGE_ROWS)
    sentences = stress_sentences(workbook, count=n)
    # Warm process one-time costs (imports, rule parsing) on a tiny sheet
    # so the timed region measures the large-sheet path, not start-up.
    Translator(build_sheet(SHEET_ORDER[0])).translate("sum the hours")

    emitter = ExcelEmitter(workbook)
    digest = hashlib.sha256()
    start = time.perf_counter()
    for text in sentences:
        candidates = Translator(workbook).translate(text)
        for c in candidates:
            digest.update(
                f"stress{_LARGE_ROWS}\t{text}\t{c.program}\t{c.score!r}\t"
                f"{emitter.emit(c.program)}\n".encode()
            )
    seconds = time.perf_counter() - start
    return {
        "n": n,
        "rows": _LARGE_ROWS,
        "seconds": seconds,
        "per_translation_ms": seconds / n * 1000.0,
        "sha256": digest.hexdigest(),
        "columnar": columnar_enabled(),
    }


def _run_mode(disabled: bool, n: int) -> dict:
    env = dict(os.environ)
    env["REPRO_NO_INTERN"] = "1" if disabled else ""
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    best: dict | None = None
    for _ in range(_ROUNDS):
        out = subprocess.run(
            [sys.executable, __file__, "--child", str(n)],
            env=env, capture_output=True, text=True, check=True,
        )
        result = json.loads(out.stdout)
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    assert best is not None
    assert best["hotpath"] is not disabled, "child did not honour the switch"
    return best


def _run_large_mode(disabled: bool, n: int) -> dict:
    env = dict(os.environ)
    env["REPRO_NO_COLUMNAR"] = "1" if disabled else ""
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    best: dict | None = None
    for _ in range(_ROUNDS):
        out = subprocess.run(
            [sys.executable, __file__, "--child-large", str(n)],
            env=env, capture_output=True, text=True, check=True,
        )
        result = json.loads(out.stdout)
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    assert best is not None
    assert best["columnar"] is not disabled, "child did not honour the switch"
    return best


def _append_trajectory(row: dict) -> Path:
    path = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_hotpath.json"))
    trajectory: list[dict] = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except (OSError, ValueError):
            trajectory = []
    trajectory.append(row)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return path


def test_hotpath_speedup_bar():
    """Cold translation >= 2x faster with the hot path on, output identical."""
    baseline = _run_mode(disabled=True, n=_SAMPLE)
    optimised = _run_mode(disabled=False, n=_SAMPLE)
    speedup = baseline["seconds"] / optimised["seconds"]
    identical = baseline["sha256"] == optimised["sha256"]
    row = {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "n": _SAMPLE,
        "baseline_s": round(baseline["seconds"], 4),
        "optimised_s": round(optimised["seconds"], 4),
        "baseline_ms_per_translation": round(
            baseline["per_translation_ms"], 3
        ),
        "optimised_ms_per_translation": round(
            optimised["per_translation_ms"], 3
        ),
        "speedup": round(speedup, 3),
        "identical_output": identical,
        "python": sys.version.split()[0],
    }
    path = _append_trajectory(row)
    print(
        f"\nhotpath: baseline {baseline['per_translation_ms']:.1f} ms -> "
        f"optimised {optimised['per_translation_ms']:.1f} ms per translation "
        f"({speedup:.2f}x, trajectory: {path})"
    )
    assert identical, (
        "optimised and REPRO_NO_INTERN=1 rankings diverged "
        f"({baseline['sha256'][:12]} vs {optimised['sha256'][:12]})"
    )
    assert speedup >= SPEEDUP_BAR, (
        f"hot path is only {speedup:.2f}x faster than the de-optimised "
        f"baseline (bar: {SPEEDUP_BAR}x)"
    )


def test_columnar_largesheet_bar():
    """Cold large-sheet translation >= 2x faster with the columnar
    backend on, output byte-identical to the row-backed paths."""
    baseline = _run_large_mode(disabled=True, n=_LARGE_SAMPLE)
    optimised = _run_large_mode(disabled=False, n=_LARGE_SAMPLE)
    speedup = baseline["seconds"] / optimised["seconds"]
    identical = baseline["sha256"] == optimised["sha256"]
    row = {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "bench": "columnar_largesheet",
        "rows": _LARGE_ROWS,
        "n": _LARGE_SAMPLE,
        "baseline_s": round(baseline["seconds"], 4),
        "optimised_s": round(optimised["seconds"], 4),
        "baseline_ms_per_translation": round(
            baseline["per_translation_ms"], 3
        ),
        "optimised_ms_per_translation": round(
            optimised["per_translation_ms"], 3
        ),
        "speedup": round(speedup, 3),
        "identical_output": identical,
        "python": sys.version.split()[0],
    }
    path = _append_trajectory(row)
    print(
        f"\ncolumnar ({_LARGE_ROWS} rows): baseline "
        f"{baseline['per_translation_ms']:.1f} ms -> optimised "
        f"{optimised['per_translation_ms']:.1f} ms per translation "
        f"({speedup:.2f}x, trajectory: {path})"
    )
    assert identical, (
        "columnar and REPRO_NO_COLUMNAR=1 rankings diverged "
        f"({baseline['sha256'][:12]} vs {optimised['sha256'][:12]})"
    )
    assert speedup >= LARGESHEET_SPEEDUP_BAR, (
        f"columnar backend is only {speedup:.2f}x faster on the "
        f"{_LARGE_ROWS}-row sheet (bar: {LARGESHEET_SPEEDUP_BAR}x)"
    )


if __name__ == "__main__":
    if "--child" in sys.argv:
        n = int(sys.argv[sys.argv.index("--child") + 1])
        print(json.dumps(_child(n)))
    elif "--child-large" in sys.argv:
        n = int(sys.argv[sys.argv.index("--child-large") + 1])
        print(json.dumps(_child_large(n)))
    else:
        test_hotpath_speedup_bar()
        test_columnar_largesheet_bar()
