"""Observability overhead — tracing must be (nearly) free when off.

The instrumented DP loop calls ``tracer.span(...)`` hundreds of times per
translation (one per sentence-span stage).  With the default
:data:`~repro.obs.NULL_TRACER` each call returns one shared no-op span:
no allocation, no clock read, no lock.  These benches enforce the bar
stated in docs/OBSERVABILITY.md:

* **disabled**: < 5 % median-latency overhead versus a conceptual
  uninstrumented translator — bounded here by measuring the per-call
  cost of the null span directly and scaling it by the span count of a
  real translation (the instrumented-vs-instrumented diff of a single
  build cannot measure "before", so the bound is computed, not eyeballed);
* **enabled**: overhead stays bounded (a live tracer costs real clock
  reads and record appends; the budget is generous but finite).
"""

from __future__ import annotations

import pytest

from repro.dataset import build_sheet
from repro.obs import NULL_TRACER, Tracer
from repro.translate import Translator

_SENTENCE = "sum the totalpay where the location is capitol hill"


@pytest.fixture(scope="module")
def translator():
    return Translator(build_sheet("payroll"))


@pytest.fixture(scope="module")
def spans_per_translation(translator):
    """How many spans one traced translation of the bench sentence emits."""
    tracer = Tracer()
    translator.translate(_SENTENCE, tracer=tracer)
    count = len(tracer.finished())
    assert count > 10  # the DP loop really is instrumented
    return count


def test_null_span_cost(benchmark):
    """Median cost of one disabled ``span()`` call (enter+exit included)."""

    def hot():
        with NULL_TRACER.span("stage", i=0, j=1):
            pass

    benchmark(hot)


def test_translate_untraced(benchmark, translator):
    result = benchmark(translator.translate, _SENTENCE)
    assert result


def test_translate_traced(benchmark, translator):
    def traced():
        tracer = Tracer()
        return translator.translate(_SENTENCE, tracer=tracer)

    result = benchmark(traced)
    assert result


def test_disabled_overhead_under_five_percent(
    benchmark, translator, spans_per_translation
):
    """The <5 % bar: (null-span cost x span count) / median latency.

    This is the *whole* cost tracing-off adds to a translation — every
    other instruction in the instrumented paths ran before this PR too.
    """
    import time

    # Median null-span cost over a tight loop (amortises the timer).
    n = 200_000
    start = time.perf_counter()
    span = NULL_TRACER.span
    for _ in range(n):
        with span("stage", i=0, j=1):
            pass
    per_call = (time.perf_counter() - start) / n

    # Median translation latency, measured by pytest-benchmark.
    benchmark(translator.translate, _SENTENCE)
    median = benchmark.stats.stats.median

    overhead = per_call * spans_per_translation
    assert overhead / median < 0.05, (
        f"disabled tracing adds {overhead * 1e6:.0f}us over a "
        f"{median * 1e3:.1f}ms translation "
        f"({overhead / median:.2%}, bar is 5%)"
    )


def test_enabled_overhead_bounded(translator):
    """A live tracer may cost real work, but must stay within 2x."""
    import statistics
    import time

    def median_of(fn, rounds=7):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    translator.translate(_SENTENCE)  # warm every cache first
    off = median_of(lambda: translator.translate(_SENTENCE))
    tracer = Tracer()
    on = median_of(lambda: translator.translate(_SENTENCE, tracer=tracer))
    assert on / off < 2.0, f"tracing on costs {on / off:.2f}x (bar is 2x)"


# -- the telemetry plane: always on, so its bar is unconditional -----------------
#
# One served request pays the plane exactly three times: the worker records
# its own view and encodes a delta blob (``_WorkerTelemetry.record``), the
# gateway folds that blob (``TelemetryHub.fold``), and the gateway observes
# the finished result (``TelemetryHub.observe`` -> windowed series + SLO
# engine + tail sampler).  Summing the three measured per-call costs bounds
# the whole per-request overhead, which docs/OBSERVABILITY.md caps at 5% of
# a median translation.


class _OkResult:
    ok = True
    error_code = None
    tier = "full"
    total_seconds = 0.02
    degraded = anytime = cached = False
    elapsed = 0.02
    queue_seconds = 0.001
    worker_id = 1
    fingerprint = "f" * 12


def _per_call_seconds(fn, n: int = 20_000) -> float:
    import statistics
    import time

    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for i in range(n):
            fn(i)
        samples.append((time.perf_counter() - start) / n)
    return statistics.median(samples)


@pytest.fixture(scope="module")
def telemetry_costs():
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import DeltaTracker, TelemetryHub, encode_state

    hub = TelemetryHub(metrics=MetricsRegistry(), scope="gateway")
    result = _OkResult()
    observe = _per_call_seconds(
        lambda i: hub.observe(result, trace_id=f"t-{i}")
    )

    # The worker side: record one reply and ship the delta since the last.
    worker = MetricsRegistry()
    tracker = DeltaTracker(worker)
    requests = worker.counter("worker_requests_total")
    seconds = worker.histogram("worker_translate_seconds")

    blobs: list[bytes] = []

    def record(i):
        requests.inc(worker="0", code="ok")
        seconds.observe(0.02, worker="0", tier="full")
        blobs.append(encode_state(tracker.delta()))

    delta = _per_call_seconds(record, n=5_000)
    blob = blobs[-1]
    fold = _per_call_seconds(lambda i: hub.fold(blob), n=5_000)
    return {"observe": observe, "delta": delta, "fold": fold}


def test_hub_observe_cost(benchmark):
    """Median cost of one ``TelemetryHub.observe`` (the gateway's share)."""
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import TelemetryHub

    hub = TelemetryHub(metrics=MetricsRegistry(), scope="gateway")
    result = _OkResult()
    counter = iter(range(10**9))

    benchmark(lambda: hub.observe(result, trace_id=f"t-{next(counter)}"))


def test_telemetry_overhead_under_five_percent(
    benchmark, translator, telemetry_costs
):
    """The always-on bar: worker record+encode, gateway fold, gateway
    observe — the plane's whole per-request cost — under 5% of a median
    translation.  Appends the measured numbers to the ``BENCH_obs.json``
    trajectory CI uploads."""
    import json
    import os
    import sys
    import time
    from pathlib import Path

    benchmark(translator.translate, _SENTENCE)
    median = benchmark.stats.stats.median

    per_request = sum(telemetry_costs.values())
    overhead = per_request / median

    row = {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "observe_us": round(telemetry_costs["observe"] * 1e6, 2),
        "worker_delta_us": round(telemetry_costs["delta"] * 1e6, 2),
        "fold_us": round(telemetry_costs["fold"] * 1e6, 2),
        "translate_ms": round(median * 1e3, 3),
        "overhead_pct": round(overhead * 100, 3),
        "python": sys.version.split()[0],
    }
    path = Path(os.environ.get("REPRO_BENCH_OBS_OUT", "BENCH_obs.json"))
    trajectory: list[dict] = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except (OSError, ValueError):
            trajectory = []
    trajectory.append(row)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"\ntelemetry plane: {row}")

    assert overhead < 0.05, (
        f"telemetry adds {per_request * 1e6:.0f}us per request over a "
        f"{median * 1e3:.1f}ms translation ({overhead:.2%}, bar is 5%)"
    )
