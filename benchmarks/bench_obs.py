"""Observability overhead — tracing must be (nearly) free when off.

The instrumented DP loop calls ``tracer.span(...)`` hundreds of times per
translation (one per sentence-span stage).  With the default
:data:`~repro.obs.NULL_TRACER` each call returns one shared no-op span:
no allocation, no clock read, no lock.  These benches enforce the bar
stated in docs/OBSERVABILITY.md:

* **disabled**: < 5 % median-latency overhead versus a conceptual
  uninstrumented translator — bounded here by measuring the per-call
  cost of the null span directly and scaling it by the span count of a
  real translation (the instrumented-vs-instrumented diff of a single
  build cannot measure "before", so the bound is computed, not eyeballed);
* **enabled**: overhead stays bounded (a live tracer costs real clock
  reads and record appends; the budget is generous but finite).
"""

from __future__ import annotations

import pytest

from repro.dataset import build_sheet
from repro.obs import NULL_TRACER, Tracer
from repro.translate import Translator

_SENTENCE = "sum the totalpay where the location is capitol hill"


@pytest.fixture(scope="module")
def translator():
    return Translator(build_sheet("payroll"))


@pytest.fixture(scope="module")
def spans_per_translation(translator):
    """How many spans one traced translation of the bench sentence emits."""
    tracer = Tracer()
    translator.translate(_SENTENCE, tracer=tracer)
    count = len(tracer.finished())
    assert count > 10  # the DP loop really is instrumented
    return count


def test_null_span_cost(benchmark):
    """Median cost of one disabled ``span()`` call (enter+exit included)."""

    def hot():
        with NULL_TRACER.span("stage", i=0, j=1):
            pass

    benchmark(hot)


def test_translate_untraced(benchmark, translator):
    result = benchmark(translator.translate, _SENTENCE)
    assert result


def test_translate_traced(benchmark, translator):
    def traced():
        tracer = Tracer()
        return translator.translate(_SENTENCE, tracer=tracer)

    result = benchmark(traced)
    assert result


def test_disabled_overhead_under_five_percent(
    benchmark, translator, spans_per_translation
):
    """The <5 % bar: (null-span cost x span count) / median latency.

    This is the *whole* cost tracing-off adds to a translation — every
    other instruction in the instrumented paths ran before this PR too.
    """
    import time

    # Median null-span cost over a tight loop (amortises the timer).
    n = 200_000
    start = time.perf_counter()
    span = NULL_TRACER.span
    for _ in range(n):
        with span("stage", i=0, j=1):
            pass
    per_call = (time.perf_counter() - start) / n

    # Median translation latency, measured by pytest-benchmark.
    benchmark(translator.translate, _SENTENCE)
    median = benchmark.stats.stats.median

    overhead = per_call * spans_per_translation
    assert overhead / median < 0.05, (
        f"disabled tracing adds {overhead * 1e6:.0f}us over a "
        f"{median * 1e3:.1f}ms translation "
        f"({overhead / median:.2%}, bar is 5%)"
    )


def test_enabled_overhead_bounded(translator):
    """A live tracer may cost real work, but must stay within 2x."""
    import statistics
    import time

    def median_of(fn, rounds=7):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    translator.translate(_SENTENCE)  # warm every cache first
    off = median_of(lambda: translator.translate(_SENTENCE))
    tracer = Tracer()
    on = median_of(lambda: translator.translate(_SENTENCE, tracer=tracer))
    assert on / off < 2.0, f"tracing on costs {on / off:.2f}x (bar is 2x)"
