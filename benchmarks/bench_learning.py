"""§3.3.1 — rule learning evaluation.

The paper built its 105-rule set from the 70% training split.  This bench
runs the reproduction's learning pipeline on training pairs and checks the
learned rules are (a) non-trivial, (b) scored into the same regime as the
curated set, and (c) useful: a translator equipped with learned rules plus
synthesis beats synthesis alone on held-out descriptions.
"""

from __future__ import annotations

import pytest

from repro.dataset import all_tasks, build_sheet
from repro.evalkit import evaluate_batch
from repro.learning import TrainingExample, learn_rules
from repro.translate import Translator, ablation_config


@pytest.fixture(scope="module")
def training_examples(corpus):
    tasks = {t.task_id: t for t in all_tasks()}
    workbooks = {}
    examples = []
    for d in corpus.train[:500]:
        wb = workbooks.setdefault(d.sheet_id, build_sheet(d.sheet_id))
        examples.append(
            TrainingExample(
                text=d.text, program=tasks[d.task_id].gold(wb), workbook=wb
            )
        )
    return examples


@pytest.fixture(scope="module")
def learned(training_examples):
    return learn_rules(training_examples, score_sample=80)


def test_print_learned_rules(benchmark, learned):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(f"learned {len(learned)} rules:")
    for rule in learned:
        print(f"  [{rule.score:.2f}] {rule.render()[:110]}")


def test_learned_set_nonempty_and_scored(benchmark, learned):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(learned) >= 3
    for rule in learned:
        assert 0.3 <= rule.score <= 0.95


def test_learned_rules_beat_synthesis_alone(benchmark, corpus, oracle, learned):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sample = [d for d in corpus.test if d.task_id.startswith(("payroll",
                                                              "countries"))][:40]
    with_learned = evaluate_batch(
        sample,
        oracle=oracle,
        translators={
            s: Translator(oracle.workbook(s), rules=learned)
            for s in ("payroll", "countries")
        },
    )
    synth_only = evaluate_batch(
        sample,
        oracle=oracle,
        translators={
            s: Translator(
                oracle.workbook(s), config=ablation_config("synthesis_only")
            )
            for s in ("payroll", "countries")
        },
    )
    assert with_learned.top1_rate >= synth_only.top1_rate


def test_learning_latency(benchmark, training_examples):
    benchmark(learn_rules, training_examples[:120], score_sample=30)
