"""SLO lane — Poisson load against a telemetry-on server, then ``/slo``.

The telemetry plane is always on, so this lane drives the open-loop
Poisson generator from :mod:`bench_http` against a stock (telemetry-on)
server, layers a fault-injected error storm on top under known trace
ids, and then reads the plane back out over HTTP:

* ``GET /slo`` must parse, carry every configured objective with its
  window/burn/alert ladder, and reflect the storm in the availability
  error counts;
* ``GET /traces?sampled=1`` must retain **100% of the error traces**
  (by their caller-chosen ``X-Repro-Trace-Id``) while the sampler's
  byte accounting stays under its hard cap.

Artifacts: the run writes ``slo_report.json`` and
``sampled_traces.jsonl`` (override the directory with
``REPRO_BENCH_SLO_DIR``) — CI uploads both — and appends a row to the
``BENCH_obs.json`` trajectory (``REPRO_BENCH_OBS_OUT``).

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_slo.py -q
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import time
from pathlib import Path

import pytest

from bench_http import _SAMPLE, SENTENCES, _BenchServer, _one_request, run_load

RATE = float(os.environ.get("REPRO_SLO_BENCH_RPS", "40.0"))
ERRORS = int(os.environ.get("REPRO_SLO_BENCH_ERRORS", "25"))
_FAULTS = "tokenize:raise:runtime"


def _get(port: int, path: str, headers: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def _faulted_request(port: int, trace_id: str) -> tuple[int, str | None]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST", "/translate",
            body=json.dumps({"sentence": SENTENCES[0], "faults": _FAULTS}),
            headers={
                "Content-Type": "application/json",
                "X-Repro-Trace-Id": trace_id,
            },
        )
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        code = (payload.get("result") or payload).get("error_code")
        return response.status, code
    finally:
        conn.close()


@pytest.fixture(scope="module")
def slo_run():
    """One served storm: Poisson good load + a deliberate error burst."""
    error_ids = [f"slo-bench-err-{i}" for i in range(ERRORS)]
    with _BenchServer() as bench:
        for _ in range(2):  # warm the pool
            _one_request(bench.port, SENTENCES[0])
        load = run_load(bench.port, RATE, _SAMPLE)
        for trace_id in error_ids:
            status, code = _faulted_request(bench.port, trace_id)
            assert status == 500 and code == "internal_error", (status, code)
        slo_status, slo_body = _get(bench.port, "/slo")
        traces_status, traces_body = _get(bench.port, "/traces?sampled=1")
    return {
        "error_ids": error_ids,
        "load": load,
        "slo": (slo_status, slo_body),
        "traces": (traces_status, traces_body),
    }


@pytest.fixture(scope="module")
def artifacts_dir():
    path = Path(os.environ.get("REPRO_BENCH_SLO_DIR", "slo-artifacts"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def test_slo_report_reflects_the_storm(benchmark, slo_run, artifacts_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    status, body = slo_run["slo"]
    assert status == 200
    report = json.loads(body)
    (artifacts_dir / "slo_report.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    assert report["scope"] == "gateway"
    by_name = {s["name"]: s for s in report["slos"]}
    assert "availability" in by_name
    availability = by_name["availability"]
    for window in ("5m", "1h", "6h"):
        assert window in availability["windows"]
    assert {a["rule"] for a in availability["alerts"]} == {"fast", "slow"}
    # The deliberate burst landed as availability-bad events.
    assert availability["windows"]["6h"]["bad"] >= len(slo_run["error_ids"])
    # The Poisson load landed as good events (cache misses and repeats).
    assert availability["windows"]["6h"]["good"] >= slo_run["load"]["served"]
    assert report["sampler"]["bytes"] <= report["sampler"]["max_bytes"]


def test_sampled_traces_retain_the_error_storm(
    benchmark, slo_run, artifacts_dir
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    status, body = slo_run["traces"]
    assert status == 200
    (artifacts_dir / "sampled_traces.jsonl").write_text(body)
    records = [json.loads(line) for line in body.splitlines() if line]
    kept = {record["trace_id"] for record in records}
    missing = set(slo_run["error_ids"]) - kept
    assert not missing, f"{len(missing)} error traces lost: {sorted(missing)[:5]}"
    for record in records:
        if record["trace_id"] in set(slo_run["error_ids"]):
            assert record["verdict"] == "error"
            assert record["error_code"] == "internal_error"


def test_slo_trajectory_row(benchmark, slo_run):
    """Append the lane's headline numbers to the obs trajectory."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = json.loads(slo_run["slo"][1])
    availability = next(
        s for s in report["slos"] if s["name"] == "availability"
    )
    row = {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "lane": "slo",
        "offered_rps": RATE,
        "served": slo_run["load"]["served"],
        "shed": slo_run["load"]["shed"],
        "errors_injected": len(slo_run["error_ids"]),
        "availability_6h_bad": availability["windows"]["6h"]["bad"],
        "budget_consumed": round(availability["budget_consumed"], 4),
        "sampler_bytes": report["sampler"]["bytes"],
        "python": sys.version.split()[0],
    }
    path = Path(os.environ.get("REPRO_BENCH_OBS_OUT", "BENCH_obs.json"))
    trajectory: list[dict] = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except (OSError, ValueError):
            trajectory = []
    trajectory.append(row)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"\nslo lane: {row}")
