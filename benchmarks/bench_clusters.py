"""§5 clustering statistic — corpus variety validation.

The paper clustered the descriptions of each intent "based on the orders of
the column names/values and word similarity" and found 37.7 distinct
clusters per intent on average.  This bench regenerates the statistic over
the synthetic corpus — it is the direct validation that the corpus
substitution preserves the variety axis the translation algorithm is
evaluated against.
"""

from __future__ import annotations

import pytest

from repro.dataset import build_sheet, generate_descriptions, all_tasks
from repro.evalkit import PAPER_CLUSTERS_PER_INTENT, run_clusters
from repro.evalkit.clusters import cluster_descriptions
from repro.translate.context import SheetContext


@pytest.fixture(scope="module")
def report(corpus):
    return run_clusters(corpus)


def test_print_clusters(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        f"clusters per intent: {report.average:.1f} measured "
        f"vs {PAPER_CLUSTERS_PER_INTENT} paper"
    )


def test_average_near_paper(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert abs(report.average - PAPER_CLUSTERS_PER_INTENT) <= 8.0


def test_every_intent_has_variety(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert min(report.per_task.values()) >= 10


def test_clustering_latency(benchmark):
    task = all_tasks()[0]
    descriptions = generate_descriptions(task, 89)
    ctx = SheetContext(build_sheet(task.sheet_id))
    benchmark(cluster_descriptions, descriptions, ctx)
