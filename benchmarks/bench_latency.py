"""§5 latency claim — translation speed across description shapes.

The paper reports 0.007–0.019 s per translation in C# ("fast enough to
support a real-time search style UI").  The pure-Python reproduction pays a
constant interpreter factor (~10x); these benches document per-shape
latency so the relative shape (short keyword queries fastest, long
compositional ones slowest) can be compared against the paper's per-sheet
spread.
"""

from __future__ import annotations

import pytest

from repro.dataset import build_sheet
from repro.translate import Translator

_CASES = {
    "keyword_short": ("payroll", "sum hours capitol hill baristas"),
    "explicit_medium": (
        "payroll", "sum the totalpay where the location is capitol hill"
    ),
    "verbose_long": (
        "payroll",
        "computer please compute the total sum of the hours for the people "
        "who are baristas and work at the capitol hill location",
    ),
    "nested_reduce": (
        "countries",
        "which countries have a gdp per capita larger than the average",
    ),
    "join_map": (
        "payroll",
        "for each employee lookup the payrate and multiply by hours",
    ),
    "formatting": (
        "payroll", "get the rows with othours bigger than 0 and color them red"
    ),
}


@pytest.fixture(scope="module")
def translators():
    sheets = {sheet for sheet, _ in _CASES.values()}
    return {s: Translator(build_sheet(s)) for s in sheets}


@pytest.mark.parametrize("case", sorted(_CASES))
def test_latency(benchmark, translators, case):
    sheet, text = _CASES[case]
    translator = translators[sheet]
    result = benchmark(translator.translate, text)
    assert result  # every shape must produce candidates


INTERACTIVE_BUDGET_S = 1.0


def test_all_shapes_under_interactive_budget(benchmark, translators):
    """Soft real-time bound: every shape stays within one second (the
    documented interactive budget; the hot-path optimisations bring the
    worst shape to tens of milliseconds, so the bound has an order of
    magnitude of headroom for shared-machine noise)."""
    import time

    def run_all_shapes() -> dict[str, float]:
        durations: dict[str, float] = {}
        for case, (sheet, text) in _CASES.items():
            start = time.perf_counter()
            result = translators[sheet].translate(text)
            durations[case] = time.perf_counter() - start
            assert result, text  # a fast empty ranking would be cheating
        return durations

    durations = benchmark.pedantic(run_all_shapes, rounds=3, iterations=1)
    for case, elapsed in durations.items():
        assert elapsed < INTERACTIVE_BUDGET_S, (
            f"{case!r} took {elapsed:.3f}s, over the "
            f"{INTERACTIVE_BUDGET_S:.0f}s interactive budget"
        )
