"""§5.2 — the end-user study analog.

62 hard-mode descriptions: out-of-vocabulary verbs ("tally", "tot up"),
unseen column phrasings ("overtime hours"), and heavier composition.  The
paper reports 90.3% top-1 / 93.5% top-3 / 95.1% anywhere — lower than the
crowd corpus because the vocabulary sits outside the rule set, but still
high because type-directed synthesis picks up the slack.
"""

from __future__ import annotations

import pytest

from repro.dataset import user_study_descriptions
from repro.evalkit import PAPER_USER_STUDY, evaluate_batch, format_user_study
from repro.translate import Translator


@pytest.fixture(scope="module")
def study_board(oracle):
    return evaluate_batch(user_study_descriptions(), oracle=oracle)


@pytest.fixture(scope="module")
def easy_board(corpus, oracle):
    return evaluate_batch(corpus.test[:62], oracle=oracle)


def test_print_user_study(benchmark, study_board):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(format_user_study(study_board))


def test_rates_in_paper_band(benchmark, study_board):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    paper_top1, _, paper_all = PAPER_USER_STUDY
    assert study_board.top1_rate >= paper_top1 - 0.12
    assert study_board.recall >= paper_all - 0.12
    assert study_board.top1_rate <= study_board.top3_rate <= study_board.recall


def test_hard_mode_is_harder_than_corpus(benchmark, study_board, easy_board):
    """The defining §5.2 property: OOV input costs accuracy."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert study_board.top1_rate <= easy_board.top1_rate


@pytest.fixture(scope="module")
def fuzzy_board(oracle):
    from repro.translate import TranslatorConfig

    config = TranslatorConfig(fuzzy_columns=True)
    return evaluate_batch(
        user_study_descriptions(),
        oracle=oracle,
        translators={
            s: Translator(oracle.workbook(s), config=config)
            for s in oracle.workbooks
        },
    )


def test_fuzzy_columns_extension_lifts_recall(benchmark, study_board,
                                              fuzzy_board):
    """The paper's §7 future work — similarity matching for column names —
    implemented as an opt-in extension: it must recover descriptions whose
    column phrasing is outside the header vocabulary ("overtime hours",
    "per capita gdp")."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        f"  baseline: all={study_board.recall:.1%}  "
        f"with fuzzy columns: all={fuzzy_board.recall:.1%}"
    )
    assert fuzzy_board.recall > study_board.recall


def test_hard_description_latency(benchmark, oracle):
    translator = Translator(oracle.workbook("payroll"))
    description = user_study_descriptions()[0]
    benchmark(translator.translate, description.text)
