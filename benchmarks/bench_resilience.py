"""Resilience — TranslationService latency and degradation under deadlines.

Runs the test-split sample through the deadline-aware service twice: once
under a tight 50 ms deadline (real-time UI budget; degradation expected,
crashes forbidden) and once under a generous 5 s deadline (no degradation
expected, rankings must match the unbounded translator).  Reports p50/p95
latency, degradation rate, and error rate per deadline.
"""

from __future__ import annotations

import pytest

from repro.evalkit import evaluate_batch, format_resilience
from repro.evalkit.harness import ResilienceResult
from repro.runtime import TranslationService

TIGHT = 0.05  # 50 ms: the paper's real-time claim, with no slack
GENEROUS = 5.0  # effectively unbounded for these sheets


@pytest.fixture(scope="module")
def split(corpus, sample_size):
    descriptions = corpus.test
    if sample_size is not None and sample_size < len(descriptions):
        step = len(descriptions) / sample_size
        descriptions = [
            descriptions[int(k * step)] for k in range(sample_size)
        ]
    return descriptions


@pytest.fixture(scope="module")
def sweep(split, oracle):
    result = ResilienceResult()
    for deadline in (TIGHT, GENEROUS):
        result.per_deadline[deadline] = evaluate_batch(
            split, oracle=oracle, deadline=deadline
        )
    return result


def test_print_resilience(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Resilience (measured, test-split sample)")
    print(format_resilience(sweep))


def test_zero_uncaught_exceptions(benchmark, sweep, split):
    """The never-crash contract: every outcome at every deadline is either
    ranked candidates or a structured error — evaluate_batch would have
    propagated anything else."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for board in sweep.per_deadline.values():
        assert board.n == len(split)
        for outcome in board.outcomes:
            assert outcome.error_code in (None, "deadline_exhausted")


def test_tight_deadline_bounds_tail_latency(benchmark, sweep):
    """Under the 50 ms deadline the p95 must stay within a small multiple
    of the deadline (ladder overhead + the last cooperative checkpoint),
    far below the unbounded worst case (~1 s verbose compositions)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tight = sweep.per_deadline[TIGHT]
    assert tight.percentile_seconds(0.95) <= 8 * TIGHT


def test_generous_deadline_is_not_degraded(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    generous = sweep.per_deadline[GENEROUS]
    assert generous.error_rate == 0.0
    assert generous.degraded_rate <= 0.02
    board_tight = sweep.per_deadline[TIGHT]
    # the tight deadline trades accuracy for latency, never correctness
    assert generous.top1_rate >= board_tight.top1_rate


def test_service_latency_running_example(benchmark, oracle):
    service = TranslationService(oracle.workbook("payroll"), deadline=TIGHT)
    result = benchmark(
        service.translate, "sum the totalpay for the capitol hill baristas"
    )
    assert result.ok
