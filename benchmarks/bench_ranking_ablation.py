"""Ranking-factor ablation (beyond the paper's Table 3).

Table 3 ablates the whole ranking; DESIGN.md additionally calls out the two
multiplicative factors — CoverSc and MixSc — as separate design choices.
This bench disables each factor individually and verifies both contribute
top-1 precision (CoverSc is the dominant one, which is exactly why the
paper's formulation weights ignored words quadratically).
"""

from __future__ import annotations

import pytest

from repro.evalkit.harness import run_table3


@pytest.fixture(scope="module")
def factor_ablation(corpus, sample_size):
    sample = None if sample_size is None else max(sample_size // 2, 60)
    return run_table3(
        corpus, sample=sample, modes=("complete", "no_cover", "no_mix")
    )


def test_print_factor_ablation(benchmark, factor_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for mode, board in factor_ablation.per_mode.items():
        print(
            f"  {mode:<10} top1={board.top1_rate:.1%} "
            f"top3={board.top3_rate:.1%} all={board.recall:.1%}"
        )


def test_cover_score_is_the_big_lever(benchmark, factor_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    complete = factor_ablation.per_mode["complete"]
    no_cover = factor_ablation.per_mode["no_cover"]
    assert complete.top1_rate >= no_cover.top1_rate + 0.1


def test_mix_score_never_hurts(benchmark, factor_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    complete = factor_ablation.per_mode["complete"]
    no_mix = factor_ablation.per_mode["no_mix"]
    assert complete.top1_rate >= no_mix.top1_rate - 0.02


def test_recall_untouched_by_ranking(benchmark, factor_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    boards = list(factor_ablation.per_mode.values())
    recalls = [b.recall for b in boards]
    assert max(recalls) - min(recalls) <= 0.02
