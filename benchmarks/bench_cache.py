"""Cache — cold vs memoised throughput through the gateway.

Runs the same test-split sample twice through a cache-enabled
:class:`repro.serve.TranslationGateway`: the cold pass computes every
answer in the worker pool and populates the cache, the warm pass should
resolve entirely in the gateway front end.  The acceptance bar from the
caching issue: the warm pass is at least 5x faster *and* ranks
byte-identical programs — a cache that changes answers is a bug, however
fast it is.
"""

from __future__ import annotations

import pytest

from repro.evalkit import format_cache, run_cache

WORKERS = 2
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def report(corpus, sample_size):
    sample = 32 if sample_size is not None else None
    return run_cache(corpus, sample=sample, workers=WORKERS)


def test_print_cache(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Cache (measured, test-split sample twice)")
    print(format_cache(report))


def test_warm_pass_is_memoised(benchmark, report):
    """After a cold pass, every repeat request hits the front-end cache."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert report.hit_rate == 1.0
    assert report.stats.cache is not None
    assert report.stats.cache.hits >= report.n


def test_warm_speedup(benchmark, report):
    """The memoised pass beats the cold pass by at least MIN_SPEEDUP."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert report.speedup >= MIN_SPEEDUP, (
        f"warm pass only {report.speedup:.1f}x faster "
        f"(cold {report.cold_seconds:.3f}s, warm {report.warm_seconds:.3f}s)"
    )


def test_cached_rankings_are_identical(benchmark, report):
    """The differential claim: memoisation never changes an answer."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert report.identical
