"""Shared benchmark fixtures.

The benchmarks double as the experiment regeneration harness: each bench
computes one paper table/figure on a corpus sample (sized to keep the suite
in minutes; the CLI ``python -m repro.evalkit <exp>`` runs the full split)
and prints the measured rows next to the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.dataset import Corpus
from repro.evalkit import TaskOracle


def pytest_addoption(parser):
    parser.addoption(
        "--full-eval", action="store_true", default=False,
        help="run benchmark accuracy tables on the full test split",
    )


@pytest.fixture(scope="session")
def corpus():
    return Corpus.default()


@pytest.fixture(scope="session")
def oracle():
    return TaskOracle()


@pytest.fixture(scope="session")
def sample_size(request):
    return None if request.config.getoption("--full-eval") else 160
