"""Table 3 — algorithm component ablation.

Regenerates the paper's Table 3: pattern rules only, synthesis only, the
combination with production-score-only ranking, and the complete algorithm
with the full §3.4 ranking.  The paper's qualitative claims must hold:

* rules-only has the lower recall (it misses phrasings outside the rule
  set, e.g. implicit conjunctions);
* synthesis-only recovers recall but ranks poorly;
* combining pushes recall to the ceiling;
* the full ranking dramatically lifts top-1 without touching recall.

Paper rows: 74.0/83.6/89.8, 67.4/85.6/98.2, 75.1/89.4/98.2, 94.1/97.1/98.2.
"""

from __future__ import annotations

import pytest

from repro.evalkit import PAPER_TABLE3, format_table3
from repro.evalkit.harness import TABLE3_MODES, run_table3
from repro.translate import Translator, ablation_config


@pytest.fixture(scope="module")
def table3(corpus, sample_size):
    sample = None if sample_size is None else max(sample_size // 2, 60)
    return run_table3(corpus, sample=sample)


def test_print_table3(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Table 3 (measured, test-split sample)")
    print(format_table3(table3))
    print()
    print("Table 3 (paper)")
    for mode, (a, b, c) in PAPER_TABLE3.items():
        print(f"  {mode:<26} {a:>8.1%} {b:>6.1%} {c:>6.1%}")


def test_component_shape_holds(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rules = table3.per_mode["rules_only"]
    synth = table3.per_mode["synthesis_only"]
    combined = table3.per_mode["combined_prod_only"]
    complete = table3.per_mode["complete"]

    # synthesis adds recall over rules alone; combining reaches the ceiling
    assert synth.recall >= rules.recall - 0.02
    assert combined.recall >= rules.recall + 0.05
    assert complete.recall == pytest.approx(combined.recall, abs=0.02)

    # the full ranking is what buys top-1 precision
    assert complete.top1_rate >= combined.top1_rate + 0.2
    assert complete.top1_rate >= 0.85

    # prod-only ranking is respectable but unsatisfactory (paper's wording)
    assert 0.3 <= combined.top1_rate <= 0.85


@pytest.mark.parametrize("mode", TABLE3_MODES)
def test_ablation_latency(benchmark, oracle, corpus, mode):
    """Per-configuration translation latency on the running example."""
    translator = Translator(
        oracle.workbook("payroll"), config=ablation_config(mode)
    )
    benchmark(
        translator.translate, "sum the totalpay for the capitol hill baristas"
    )
