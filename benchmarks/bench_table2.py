"""Table 2 — overall performance: per-sheet accuracy and latency.

Regenerates the paper's Table 2 rows (Avg. Time / Top Rank / Top 3 / All
per sheet and cumulatively) on a sample of the test split, and benchmarks
the translation latency that feeds the Avg. Time column.

Paper:  all sheets — 0.011 s, 94.1% top-1, 97.1% top-3, 98.2% all.
"""

from __future__ import annotations

import pytest

from repro.dataset import SHEET_ORDER
from repro.evalkit import PAPER_TABLE2, evaluate_batch, format_table2
from repro.evalkit.harness import Table2Result
from repro.translate import Translator

_SHAPE_TOLERANCE = 0.08  # measured rates may beat the paper, not trail far


@pytest.fixture(scope="module")
def table2(corpus, oracle, sample_size):
    per_sheet_limit = None if sample_size is None else sample_size // 4
    result = Table2Result()
    translators = {}
    for sheet_id in SHEET_ORDER:
        descriptions = corpus.by_sheet(sheet_id, subset="test")
        if per_sheet_limit is not None:
            descriptions = descriptions[:per_sheet_limit]
        board = evaluate_batch(
            descriptions, oracle=oracle, translators=translators
        )
        result.per_sheet[sheet_id] = board
        result.overall.outcomes.extend(board.outcomes)
    return result


def test_print_table2(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Table 2 (measured, test-split sample)")
    print(format_table2(table2))
    print()
    print("Table 2 (paper)")
    for sheet, (t, a, b, c) in PAPER_TABLE2.items():
        print(f"  {sheet:<12} {t:>9.3f}s {a:>8.1%} {b:>6.1%} {c:>6.1%}")


def test_overall_rates_match_paper_shape(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    overall = table2.overall
    paper_time, paper_top1, paper_top3, paper_all = PAPER_TABLE2["all"]
    assert overall.top1_rate >= paper_top1 - _SHAPE_TOLERANCE
    assert overall.top3_rate >= paper_top3 - _SHAPE_TOLERANCE
    assert overall.recall >= paper_all - _SHAPE_TOLERANCE
    assert overall.top1_rate <= overall.top3_rate <= overall.recall


def test_every_sheet_above_ninety_top3(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sheet_id, board in table2.per_sheet.items():
        assert board.top3_rate >= 0.9, sheet_id


@pytest.mark.parametrize("sheet_id", SHEET_ORDER)
def test_translation_latency(benchmark, corpus, oracle, sheet_id):
    """The Avg. Time column: one representative description per sheet."""
    description = corpus.by_sheet(sheet_id, subset="test")[0]
    translator = Translator(oracle.workbook(sheet_id))
    benchmark(translator.translate, description.text)
