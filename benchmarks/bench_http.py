"""HTTP front end — open-loop Poisson load versus the backpressure ladder.

The question: when offered load exceeds capacity, does the HTTP tier
*shed* (fast ``503 Retry-After``) rather than *stall* (slow timeouts)?
An open-loop generator fires requests at exponentially-distributed
inter-arrival times regardless of completions — the honest way to
measure a bounded queue, since closed-loop clients self-throttle and
hide saturation.

Three offered loads against a deliberately small deployment (2 workers,
``queue_limit=16``, cache off, 1.5 s request deadline):

* **light** — well under capacity: sheds ≈ 0, p95 near service time;
* **heavy** — around capacity: queueing shows up in the tail;
* **saturated** — far over capacity: a meaningful shed rate, and the
  latency of *served* requests stays bounded because the queue cannot
  grow.  No request may end in a timeout (504) or an unparseable
  response.

Each full run appends a row to ``BENCH_http.json`` (override with
``REPRO_BENCH_HTTP_OUT``), the trajectory CI uploads as an artifact.
``REPRO_HTTP_BENCH_SAMPLE`` sizes each storm (default 80 requests per
load).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_http.py
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import random
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.http import HttpServer
from repro.serve import TranslationGateway

_SAMPLE = int(os.environ.get("REPRO_HTTP_BENCH_SAMPLE", "80"))
WORKERS = 2
QUEUE_LIMIT = 16
DEADLINE_MS = 1500.0
# Offered loads in requests/second.  Capacity with 2 workers and ~20-40 ms
# per translation is on the order of 50-100 rps: 12 is comfortably under,
# 60 is around it, 400 is far past it.
OFFERED_RPS = (12.0, 60.0, 400.0)
SENTENCES = [
    "sum the hours",
    "count the employees",
    "average the rate",
    "sum the totalpay for the capitol hill baristas",
]


class _BenchServer:
    """A gateway + HTTP server pair on a daemon asyncio thread."""

    def __init__(self) -> None:
        self.gateway = TranslationGateway(
            _payroll(),
            workers=WORKERS,
            queue_limit=QUEUE_LIMIT,
            restart_backoff=0.01,
            restart_backoff_cap=0.1,
        )
        self.server = HttpServer(self.gateway, max_connections=4096)
        self.port: int | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="bench-http-server", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self.port = self.server.port
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    def __enter__(self) -> "_BenchServer":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("bench HTTP server never came up")
        return self

    def __exit__(self, *exc_info) -> None:
        self.server.request_stop()
        self._thread.join(timeout=10)
        self.gateway.close(drain=False)


def _payroll():
    from repro.dataset import build_sheet

    return build_sheet("payroll")


def _one_request(port: int, sentence: str) -> tuple[int, str | None]:
    """Returns (status, error_code) for one unary translate call."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST", "/translate",
            body=json.dumps(
                {"sentence": sentence, "deadline_ms": DEADLINE_MS}
            ),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        code = (payload.get("result") or payload).get("error_code")
        return response.status, code
    finally:
        conn.close()


def run_load(port: int, rate: float, n: int, seed: int = 0x9015) -> dict:
    """Open-loop storm: ``n`` arrivals at Poisson rate ``rate``/s."""
    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    for _ in range(n):
        t += rng.expovariate(rate)
        arrivals.append(t)
    results: list[tuple[int, str | None, float] | Exception] = [None] * n
    threads = []

    def fire(i: int, sentence: str) -> None:
        started = time.perf_counter()
        try:
            status, code = _one_request(port, sentence)
            results[i] = (status, code, time.perf_counter() - started)
        except Exception as exc:  # noqa: BLE001 - recorded, then asserted
            results[i] = exc

    origin = time.perf_counter()
    for i, at in enumerate(arrivals):
        delay = origin + at - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(
            target=fire, args=(i, SENTENCES[i % len(SENTENCES)]), daemon=True
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=120)

    failures = [r for r in results if isinstance(r, Exception) or r is None]
    outcomes = [r for r in results if isinstance(r, tuple)]
    served = [r for r in outcomes if r[0] in (200, 206)]
    shed = [r for r in outcomes if r[0] == 503]
    timeouts = [r for r in outcomes if r[0] == 504]
    latencies = sorted(latency for _, _, latency in served) or [0.0]

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "offered_rps": rate,
        "n": n,
        "failures": len(failures),
        "served": len(served),
        "shed": len(shed),
        "timeouts": len(timeouts),
        "shed_rate": len(shed) / n,
        "p50_ms": round(pct(0.50) * 1000, 2),
        "p95_ms": round(pct(0.95) * 1000, 2),
        "p99_ms": round(pct(0.99) * 1000, 2),
        "statuses": sorted({status for status, _, _ in outcomes}),
    }


def _run_all() -> list[dict]:
    loads = []
    for rate in OFFERED_RPS:
        with _BenchServer() as bench:
            # Warm the worker pool so the first storm doesn't pay
            # translator construction costs.
            for _ in range(2):
                _one_request(bench.port, SENTENCES[0])
            loads.append(run_load(bench.port, rate, _SAMPLE))
    return loads


def _append_trajectory(row: dict) -> Path:
    path = Path(os.environ.get("REPRO_BENCH_HTTP_OUT", "BENCH_http.json"))
    trajectory: list[dict] = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except (OSError, ValueError):
            trajectory = []
    trajectory.append(row)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return path


def _trajectory_row(loads: list[dict]) -> dict:
    return {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "n_per_load": _SAMPLE,
        "workers": WORKERS,
        "queue_limit": QUEUE_LIMIT,
        "deadline_ms": DEADLINE_MS,
        "loads": loads,
        "python": sys.version.split()[0],
    }


def _print_loads(loads: list[dict]) -> None:
    header = (
        f"{'offered rps':>12} {'served':>7} {'shed':>5} {'shed%':>7} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}"
    )
    print(header)
    for row in loads:
        print(
            f"{row['offered_rps']:>12.0f} {row['served']:>7} "
            f"{row['shed']:>5} {row['shed_rate']:>7.1%} "
            f"{row['p50_ms']:>8.1f} {row['p95_ms']:>8.1f} "
            f"{row['p99_ms']:>8.1f}"
        )


@pytest.fixture(scope="module")
def loads():
    return _run_all()


def test_print_http_loads(benchmark, loads):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("HTTP front end — open-loop Poisson storms")
    _print_loads(loads)
    path = _append_trajectory(_trajectory_row(loads))
    print(f"(trajectory: {path})")


def test_every_request_gets_a_wellformed_response(benchmark, loads):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in loads:
        assert row["failures"] == 0, row
        assert row["served"] + row["shed"] + row["timeouts"] <= row["n"]


def test_saturation_sheds_rather_than_times_out(benchmark, loads):
    """The backpressure contract at the socket: past capacity the bounded
    queue converts overload into fast 503s, never into timeouts."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    saturated = loads[-1]
    assert saturated["shed"] > 0, saturated
    for row in loads:
        assert row["timeouts"] == 0, row


def test_light_load_mostly_served(benchmark, loads):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    light = loads[0]
    assert light["shed_rate"] <= 0.10, light
    assert light["served"] >= light["n"] * 0.9


if __name__ == "__main__":
    all_loads = _run_all()
    print("HTTP front end — open-loop Poisson storms")
    _print_loads(all_loads)
    out = _append_trajectory(_trajectory_row(all_loads))
    print(f"(trajectory: {out})")
