"""Cluster — shard-scaling throughput and mid-storm kill failover.

Two questions, measured on a test-split sample (all four sheets, so
rendezvous routing spreads fingerprints):

* **scaling** — the same storm through 1, 2, and 3 shards: throughput
  per shard count, p50/p95 latency (more shards = more worker pools, so
  cold throughput should not *fall* as shards are added);
* **failover** — a 3-shard run where the busiest shard is SIGKILLed
  mid-storm: the zero-loss bar from the chaos suite, plus the latency
  price the survivors pay for absorbing the victim's share.

Each full run appends a row to ``BENCH_cluster.json`` (override with
``REPRO_BENCH_CLUSTER_OUT``), the trajectory CI uploads as an artifact.
``REPRO_CLUSTER_SAMPLE`` sizes the storm (default 48).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.dataset import Corpus
from repro.evalkit import format_cluster, run_cluster

SHARD_COUNTS = (1, 2, 3)
WORKERS_PER_SHARD = 2
DEADLINE = 60.0  # generous: any shed here would be a real bug
_SAMPLE = int(os.environ.get("REPRO_CLUSTER_SAMPLE", "48"))


def _run_all(corpus=None):
    """One full bench pass: the scaling sweep plus the kill run."""
    corpus = corpus or Corpus.default()
    scaling = {
        shards: run_cluster(
            corpus,
            sample=_SAMPLE,
            shards=shards,
            workers_per_shard=WORKERS_PER_SHARD,
            deadline=DEADLINE,
            kill=False,
        )
        for shards in SHARD_COUNTS
    }
    kill = run_cluster(
        corpus,
        sample=_SAMPLE,
        shards=max(SHARD_COUNTS),
        workers_per_shard=WORKERS_PER_SHARD,
        deadline=DEADLINE,
        kill=True,
    )
    return scaling, kill


def _append_trajectory(row: dict) -> Path:
    path = Path(os.environ.get("REPRO_BENCH_CLUSTER_OUT", "BENCH_cluster.json"))
    trajectory: list[dict] = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except (OSError, ValueError):
            trajectory = []
    trajectory.append(row)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return path


def _trajectory_row(scaling, kill) -> dict:
    return {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "n": _SAMPLE,
        "workers_per_shard": WORKERS_PER_SHARD,
        "scaling": {
            str(shards): {
                "throughput_rps": round(report.throughput, 2),
                "ok_rate": round(report.ok_rate, 4),
                "p50_ms": round(report.percentile_seconds(0.5) * 1000, 2),
                "p95_ms": round(report.percentile_seconds(0.95) * 1000, 2),
            }
            for shards, report in scaling.items()
        },
        "kill": {
            "shards": kill.shards,
            "killed_shard": kill.killed_shard,
            "throughput_rps": round(kill.throughput, 2),
            "ok_rate": round(kill.ok_rate, 4),
            "p50_ms": round(kill.percentile_seconds(0.5) * 1000, 2),
            "p95_ms": round(kill.percentile_seconds(0.95) * 1000, 2),
            "retries": kill.stats.retries if kill.stats else None,
            "failovers": kill.stats.failovers if kill.stats else None,
        },
        "python": sys.version.split()[0],
    }


@pytest.fixture(scope="module")
def reports(corpus):
    scaling, kill = _run_all(corpus)
    return scaling, kill


def test_print_cluster(benchmark, reports):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scaling, kill = reports
    print()
    for shards, report in scaling.items():
        print(f"Cluster scaling — {shards} shard(s), no kill")
        print(format_cluster(report))
        print()
    print("Cluster failover — busiest shard SIGKILLed mid-storm")
    print(format_cluster(kill))
    path = _append_trajectory(_trajectory_row(scaling, kill))
    print(f"(trajectory: {path})")


def test_zero_lost_requests_every_configuration(benchmark, reports):
    """Every submitted request resolves to one coded result — with and
    without a shard dying underneath the storm."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scaling, kill = reports
    for report in [*scaling.values(), kill]:
        assert len(report.outcomes) == report.n
        for outcome in report.outcomes:
            assert outcome.ok or outcome.error_code is not None


def test_healthy_runs_all_ok(benchmark, reports):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scaling, _ = reports
    for shards, report in scaling.items():
        assert report.ok_rate == 1.0, f"{shards} shards: {report.code_histogram()}"
        assert report.throughput > 0


def test_kill_run_failed_over_and_still_served(benchmark, reports):
    """The kill bit (health marked the victim down, requests failed over)
    and the deadline was generous: the storm still resolves 100% ok."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, kill = reports
    assert kill.killed_shard is not None
    assert kill.ok_rate == 1.0, f"failures: {kill.code_histogram()}"
    assert kill.stats is not None
    assert kill.stats.live_shards == kill.shards - 1
    for outcome in kill.outcomes:
        if outcome.attempts > 1:
            assert outcome.shard_id != kill.killed_shard


if __name__ == "__main__":
    scaling_reports, kill_report = _run_all()
    for n_shards, shard_report in scaling_reports.items():
        print(f"Cluster scaling — {n_shards} shard(s), no kill")
        print(format_cluster(shard_report))
        print()
    print("Cluster failover — busiest shard SIGKILLed mid-storm")
    print(format_cluster(kill_report))
    out = _append_trajectory(_trajectory_row(scaling_reports, kill_report))
    print(f"(trajectory: {out})")
