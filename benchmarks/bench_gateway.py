"""Gateway — serving throughput and latency through the worker pool.

Pushes a test-split sample (all four sheets, so the pool juggles several
workbook fingerprints) through the crash-isolated
:class:`repro.serve.TranslationGateway` and reports throughput, shed
rate, and p50/p95 end-to-end latency.  The zero-lost-requests assertion
mirrors the chaos suite: every submitted request must come back as a
coded result, even here under healthy load.
"""

from __future__ import annotations

import pytest

from repro.evalkit import format_gateway, run_gateway

WORKERS = 2
DEADLINE = 10.0  # generous: healthy-load run, sheds should not happen


@pytest.fixture(scope="module")
def report(corpus, sample_size):
    sample = 48 if sample_size is not None else None
    return run_gateway(
        corpus, sample=sample, workers=WORKERS, deadline=DEADLINE
    )


def test_print_gateway(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Gateway (measured, test-split sample)")
    print(format_gateway(report))


def test_zero_lost_requests(benchmark, report):
    """Every submitted request resolves to exactly one coded result."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(report.outcomes) == report.n
    for outcome in report.outcomes:
        assert outcome.ok or outcome.error_code is not None


def test_throughput_and_latency_reported(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert report.throughput > 0
    assert 0.0 < report.percentile_seconds(0.5) <= report.percentile_seconds(0.95)


def test_healthy_load_is_not_shed(benchmark, report):
    """With a generous deadline and a deep queue, admission control must
    not shed anything and the pool must not burn restarts."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert report.shed_rate == 0.0
    assert report.stats.crashed == 0
    assert report.stats.restarts == 0
    assert report.ok_rate == 1.0


def test_warm_affinity_reuses_translators(benchmark, report):
    """Repeat fingerprints should mostly land on warm workers: with 4
    workbooks and 2 workers, at most ~workers x workbooks cold hits."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cold = sum(1 for outcome in report.outcomes if not outcome.warm)
    assert cold <= WORKERS * report.stats.registered_workbooks
