"""Table 1 and Fig. 1 — the qualitative exhibits.

Table 1 shows the per-intent phrasing variety and the task variety; Fig. 1
shows the annotated candidate list for the running example.  These benches
regenerate both (printed) and benchmark the pipelines that produce them:
the description generator and the interactive ask.
"""

from __future__ import annotations

import pytest

from repro.dataset import all_tasks, build_sheet, generate_descriptions
from repro.evalkit import format_table1, run_fig1, run_table1
from repro.session import NLyzeSession


def test_print_table1(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(format_table1(run_table1()))


def test_print_fig1(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(run_fig1())


def test_fig1_matches_paper_layout(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    figure = run_fig1()
    # the paper's UI: annotated input, SUMIFS formula, three candidates
    assert "SUMIFS" in figure
    assert "[totalpay]" in figure
    assert "~" in figure  # strikethrough on lower candidates
    assert figure.count("“") >= 3  # a paraphrase per candidate


def test_table1_has_keyword_and_verbose_styles(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = run_table1(variants_per_task=12)
    lengths = [len(t.split()) for t in data["variations"]]
    assert min(lengths) <= 6, "keyword style missing"
    assert max(lengths) >= 9, "verbose style missing"


def test_generator_throughput(benchmark):
    task = all_tasks()[0]
    benchmark(generate_descriptions, task, 89)


def test_interactive_ask_latency(benchmark):
    session = NLyzeSession(build_sheet("payroll"))
    benchmark(session.ask, "sum the totalpay for the capitol hill baristas")
