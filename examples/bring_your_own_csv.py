"""Bring your own data: CSV in, NL analysis, reusable script out.

Writes a small project-tracking CSV (with a date column), loads it as a
workbook, runs a few natural-language steps against it, and saves the
accepted program sequence as a script that re-applies to next month's file.

Run:  python examples/bring_your_own_csv.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.session import NLyzeSession, Script
from repro.sheet.io import load_workbook

_THIS_MONTH = """\
project,owner,stage,deadline,budget
apollo,alice,build,2014-03-01,$1200
borealis,bob,design,2014-06-15,$2500
comet,carol,build,2014-09-30,$800
draco,dana,review,2014-05-20,$1500
europa,erik,design,2014-04-02,$600
"""

_NEXT_MONTH = """\
project,owner,stage,deadline,budget
fenrir,fay,build,2014-07-11,$900
gaia,gus,design,2014-08-01,$3100
hydra,hana,build,2014-07-25,$450
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="nlyze-csv-"))
    current = workdir / "projects.csv"
    current.write_text(_THIS_MONTH)

    workbook = load_workbook([current])
    print(workbook.default_table.render())
    print()

    session = NLyzeSession(workbook)
    for description in (
        "sum the budget for the build projects",
        "count projects with deadline before 2014-06-01",
        "what is the average budget",
    ):
        result = session.run(description)
        print(f"> {description}\n  -> {result.display()}")

    # Save the step sequence and re-apply it to a "similar spreadsheet".
    script = Script.from_session(session)
    script_path = workdir / "monthly_report.nlyze"
    script_path.write_text(script.dumps())
    print(f"\nsaved script to {script_path}:")
    print(script.dumps())

    following = workdir / "projects_next.csv"
    following.write_text(_NEXT_MONTH)
    next_workbook = load_workbook([following])
    results = Script.loads(script_path.read_text()).apply(next_workbook)
    print("re-applied to next month's file:")
    for program, result in zip(script.programs, results):
        print(f"  {program}  ->  {result.display()}")


if __name__ == "__main__":
    main()
