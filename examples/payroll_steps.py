"""Programming in steps (paper §4).

A sophisticated payroll task performed as a sequence of small NL steps that
communicate through spreadsheet state:

1. highlighting — select rows and reduce over the *selection* (the
   anonymous view read back by GetActive);
2. emphasis — color cells and reduce over the *red cells* (the named view
   read back by GetFormat), extending the view across steps;
3. live replay — change an input value and re-execute the accepted program
   sequence.

Run:  python examples/payroll_steps.py
"""

from repro import CellValue, NLyzeSession
from repro.dataset import build_sheet


def main() -> None:
    workbook = build_sheet("payroll")
    session = NLyzeSession(workbook)

    # -- Step pattern 1: highlight, then reduce over the selection --------
    print("== selection as an anonymous view ==")
    step = session.ask("select the rows for the capitol hill baristas")
    print(step.views[0].render())
    session.accept(step)

    result = session.run("sum the totalpay from the selected rows")
    print(f"sum over the selection: {result.display()}")
    print()

    # -- Step pattern 2: emphasis as a named, extensible view --------------
    print("== formatting as a named view ==")
    session.run("color the chef totalpay red")
    session.run("color the totalpay for the baristas red")
    result = session.run("add up the red totalpay cells")
    print(f"sum over the red cells (chefs + baristas): {result.display()}")
    print()

    # -- Step pattern 3: live replay after an input edit --------------------
    print("== live replay ==")
    employees = workbook.table("Employees")
    # alice gets a raise: her totalpay cell changes
    employees.cell(0, 7).value = CellValue.currency(500)
    results = session.replay()
    print(f"after editing alice's totalpay, replayed {len(results)} steps;")
    print(f"new red-cell sum: {results[-1].display()}")

    print()
    print("Full transcript:")
    print(session.transcript())


if __name__ == "__main__":
    main()
