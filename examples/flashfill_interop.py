"""PBE + NL interop: the paper's "first author" scenario (§4).

The NLyze DSL cannot express "how many papers have Gulwani as the first
author" over a column of comma-separated author lists.  The paper's answer:
Flash Fill a first-author column from one example, then finish with natural
language.  This example runs that exact pipeline with the bundled
mini-Flash-Fill learner.

Run:  python examples/flashfill_interop.py
"""

from repro import NLyzeSession, Table, Workbook
from repro.pbe import fill_column


def make_papers_workbook() -> Workbook:
    workbook = Workbook()
    workbook.add_table(
        Table.from_data(
            "Papers",
            ["title", "authors", "year"],
            [
                ["flash fill", "gulwani", 2011],
                ["spreadsheet transforms", "harris, gulwani", 2011],
                ["nlyze", "gulwani, marron", 2014],
                ["smartsynth", "le, gulwani, su", 2013],
                ["semantic strings", "singh, gulwani", 2012],
                ["number transforms", "singh, gulwani", 2012],
            ],
        )
    )
    workbook.set_cursor("E2")
    return workbook


def main() -> None:
    workbook = make_papers_workbook()
    papers = workbook.table("Papers")

    # Step 1 (PBE): one example teaches the first-author extraction.
    program = fill_column(
        papers,
        source_column="authors",
        new_column="firstauthor",
        examples=[("harris, gulwani", "harris")],
    )
    print(f"Flash Fill learned: {program.describe()}")
    print(papers.render())
    print()

    # Step 2 (NL): finish the task in natural language over the new column.
    session = NLyzeSession(workbook)
    step = session.ask("how many papers have a firstauthor of gulwani")
    result = session.accept(step)
    print(step.views[0].render())
    print(f"-> {result.display()} papers have gulwani as first author")


if __name__ == "__main__":
    main()
