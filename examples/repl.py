"""Interactive NLyze REPL.

A terminal stand-in for the Excel add-in's task pane: type descriptions,
inspect the annotated candidates, accept one by number (or Enter for the
top one), and watch the sheet update.

Run:  python examples/repl.py [payroll|inventory|countries|invoices]

Commands inside the REPL:
    :sheet          print the current table
    :script         print the accepted program sequence (DSL syntax)
    :replay         re-execute the accepted sequence
    :quit           exit
"""

from __future__ import annotations

import sys

from repro.dataset import SHEET_ORDER, build_sheet
from repro.errors import ReproError
from repro.session import NLyzeSession, Script


def main() -> None:
    sheet_id = sys.argv[1] if len(sys.argv) > 1 else "payroll"
    if sheet_id not in SHEET_ORDER:
        raise SystemExit(f"unknown sheet {sheet_id!r}; one of {SHEET_ORDER}")
    workbook = build_sheet(sheet_id)
    session = NLyzeSession(workbook)
    print(workbook.default_table.render(max_rows=8))
    print("\nDescribe a task in English (:quit to exit).\n")

    while True:
        try:
            line = input("nlyze> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not line:
            continue
        if line in (":quit", ":q", "exit"):
            break
        if line == ":sheet":
            print(workbook.default_table.render())
            continue
        if line == ":script":
            print(Script.from_session(session).dumps())
            continue
        if line == ":replay":
            for result in session.replay():
                print(f"  -> {result.display()}")
            continue
        try:
            step = session.ask(line)
        except ReproError as exc:
            print(f"  error: {exc}")
            continue
        print(step.render())
        if not step.views:
            continue
        choice = input("accept which? [1] ").strip()
        if choice.lower() in ("n", "no", "none", "skip"):
            continue
        index = int(choice) - 1 if choice.isdigit() else 0
        try:
            result = session.accept(step, choice=index)
        except ReproError as exc:
            print(f"  error: {exc}")
            continue
        print(f"  -> {result.display()}")


if __name__ == "__main__":
    main()
