"""Inventory reorder report: conditional formatting and column comparisons.

Uses the inventory sheet to build a small reorder report with NL steps:
flag the items below their reorder level (a column-to-column comparison),
count them, and total the stock value at risk.

Run:  python examples/inventory_reorder.py
"""

from repro import NLyzeSession
from repro.dataset import build_sheet


def main() -> None:
    workbook = build_sheet("inventory")
    inventory = workbook.default_table
    print(inventory.render(max_rows=6))
    print()

    session = NLyzeSession(workbook)

    # 1. flag the at-risk rows
    step = session.ask("color the rows where quantity is below reorder yellow")
    session.accept(step)
    print(f"> {step.description}")
    print(f"  {step.views[0].excel}")
    flagged = [
        inventory.cell(i, 0).display()
        for i in range(inventory.n_rows)
        if inventory.cell(i, 0).format.color.value == "yellow"
    ]
    print(f"  -> flagged: {', '.join(flagged)}")
    print()

    # 2. count them
    result = session.run("how many items have quantity less than reorder")
    print(f"> how many items have quantity less than reorder -> {result.display()}")

    # 3. total the value at risk, straight off the yellow view
    result = session.run("sum the yellow stockvalue cells")
    print(f"> sum the yellow stockvalue cells -> {result.display()}")

    # 4. a regular conditional reduction for comparison
    result = session.run("sum the stockvalue for the coffee items")
    print(f"> sum the stockvalue for the coffee items -> {result.display()}")


if __name__ == "__main__":
    main()
