"""Country-facts analysis: the Tab. 1 composition examples.

Exercises nested reductions ("larger than the average"), superlatives
("which country has the largest gdp per capita"), negation ("not in
europe", "do not use the euro"), and a column map (gdp / population) on the
country-facts sheet.

Run:  python examples/country_facts.py
"""

from repro import NLyzeSession
from repro.dataset import build_sheet


QUERIES = [
    "which country has the largest gdp per capita",
    "which countries have a gdp per capita larger than the average",
    "sum the gdp for all countries that are not in europe",
    "how many countries are in europe but do not use the euro",
    "what is the average population for the countries in asia",
    "how many countries are in europe",
]


def main() -> None:
    workbook = build_sheet("countries")
    print(workbook.default_table.render(max_rows=8))
    print()
    session = NLyzeSession(workbook)

    for query in QUERIES:
        step = session.ask(query)
        result = session.accept(step)
        top = step.views[0]
        print(f"> {query}")
        print(f"  {top.excel}")
        if result.kind == "selection":
            table = workbook.table(result.table)
            names = [
                table.cell(i, 0).display() for i in result.rows
            ]
            print(f"  -> selected: {', '.join(names)}")
        else:
            print(f"  -> {result.display()}")
        print()

    # A column map placed next to the table: gdp per person, recomputed.
    workbook.set_cursor("H2")
    result = session.run("gdp divided by population")
    print("> gdp divided by population (vector placed at H2):")
    print("  ->", ", ".join(v.display() for v in result.values[:6]), "...")


if __name__ == "__main__":
    main()
