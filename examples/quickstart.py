"""Quickstart: the paper's Fig. 1 running example.

Loads the coffee-shop payroll sheet, asks NLyze to "sum the totalpay for
the capitol hill baristas", shows the annotated candidate list (word
highlighting, strikethrough for ignored words, Excel formulas, structured-
English paraphrases), then executes the top candidate, placing the result
at the active cursor (J2).

Run:  python examples/quickstart.py
"""

from repro import NLyzeSession
from repro.dataset import build_sheet


def main() -> None:
    workbook = build_sheet("payroll")
    print("The payroll sheet:")
    print(workbook.default_table.render(max_rows=6))
    print()

    session = NLyzeSession(workbook)
    step = session.ask("sum the totalpay for the capitol hill baristas")
    print(step.render())
    print()

    result = session.accept(step)  # execute the top-ranked candidate
    landed = ", ".join(a.to_a1() for a in result.addresses)
    print(f"Accepted candidate #1 -> {result.display()} placed at {landed}")

    # The result is ordinary sheet state: follow up with another step that
    # references it ("what fraction of the overall payroll is that?").
    session.run("column H total")  # total payroll into the next cursor cell
    fraction = session.run("divide J2 by J3")
    print(f"Fraction of total payroll: {fraction.display()}")


if __name__ == "__main__":
    main()
