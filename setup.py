"""Legacy setup shim.

The evaluation environment is offline and has no ``wheel`` package, so PEP
660 editable installs cannot build.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on older pips) use the classic ``setup.py develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
