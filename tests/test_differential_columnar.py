"""Differential harness: the columnar backend must never change an answer.

Mirror of ``test_differential_intern`` for the ``REPRO_NO_COLUMNAR``
switch: the Table 2 test split runs through :class:`TranslationService`
with the columnar backend + template interning on, then again with the
escape hatch engaged (row-backed lookups, per-call template parsing), and
the rankings must serialise to identical bytes — programs, scores, tiers,
error codes, Excel emission.  A second differential pushes the same batch
through an optimised and a de-optimised gateway (forked workers re-read
the env var via ``sync_hotpath_from_env``).  A third crosses the two
escape hatches: the rare-but-legal ``REPRO_NO_INTERN=1`` +
columnar-enabled combination must match the all-legacy mode too.

``REPRO_DIFF_LIMIT`` caps the number of descriptions per differential
(evenly subsampled; default: the full test split, which is what the
acceptance bar requires).
"""

from __future__ import annotations

import os

import pytest

from repro.dataset import (
    SHEET_ORDER,
    Corpus,
    build_sheet,
    stress_sentences,
    stress_workbook,
)
from repro.dsl import ast
from repro.runtime import TranslationService
from repro.serve import GatewayConfig, TranslationGateway
from repro.sheet import columnar

pytestmark = pytest.mark.slow

_LIMIT = os.environ.get("REPRO_DIFF_LIMIT")


@pytest.fixture(scope="module")
def test_split():
    descriptions = Corpus.default().test
    if _LIMIT:
        n = int(_LIMIT)
        if 0 < n < len(descriptions):
            step = len(descriptions) / n
            descriptions = [descriptions[int(k * step)] for k in range(n)]
    return descriptions


@pytest.fixture(autouse=True)
def _restore_columnar():
    was = columnar.columnar_enabled()
    yield
    columnar.set_columnar(was)


def _serialise_service(result, workbook) -> bytes:
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [f"{c.program}\t{c.score!r}" for c in result.candidates]
    if result.top is not None:
        try:
            lines.append(f"excel={result.top.excel(workbook)}")
        except Exception:  # noqa: BLE001 - both modes must fail alike too
            lines.append("excel=<error>")
    return "\n".join(lines).encode()


def _serialise_gateway(result) -> bytes:
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [f"{program}\t{score!r}" for program, score in result.programs]
    lines.append(f"top_formula={result.top_formula}")
    return "\n".join(lines).encode()


def _run_service_split(test_split, workbooks) -> list[bytes]:
    services = {
        sheet_id: TranslationService(wb)
        for sheet_id, wb in workbooks.items()
    }
    return [
        _serialise_service(
            services[d.sheet_id].translate(d.text), workbooks[d.sheet_id]
        )
        for d in test_split
    ]


def test_service_columnar_equals_rows(test_split):
    """The full split, columnar on vs the REPRO_NO_COLUMNAR row-backed
    paths: byte-identical rankings, description by description."""
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}
    columnar.set_columnar(True)
    optimised = _run_service_split(test_split, workbooks)
    columnar.set_columnar(False)
    legacy = _run_service_split(test_split, workbooks)
    mismatches = [
        (d.sheet_id, d.text)
        for d, a, b in zip(test_split, optimised, legacy)
        if a != b
    ]
    assert not mismatches, (
        f"{len(mismatches)}/{len(test_split)} rankings changed under the "
        f"columnar backend, e.g. {mismatches[:3]}"
    )


def test_service_both_hatches_cross(test_split):
    """The switch matrix must agree pairwise: interning disabled with the
    columnar backend still on (and vice versa) is a supported combination
    and must match the all-legacy answers."""
    sample = test_split[:: max(1, len(test_split) // 60)]
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}
    runs = {}
    was_hotpath = ast.hotpath_enabled()
    try:
        for hotpath in (True, False):
            for use_columnar in (True, False):
                ast.set_hotpath(hotpath)
                columnar.set_columnar(use_columnar)
                runs[(hotpath, use_columnar)] = _run_service_split(
                    sample, workbooks
                )
    finally:
        ast.set_hotpath(was_hotpath)
    reference = runs[(True, True)]
    for key, outputs in runs.items():
        assert outputs == reference, f"mode {key} diverged"


def test_service_columnar_equals_rows_largesheet():
    """The stress corpus through the service in both modes — the regime
    the columnar backend was built for, at a CI-friendly size."""
    workbook = stress_workbook(2_000)
    sentences = stress_sentences(workbook)

    def run() -> list[bytes]:
        service = TranslationService(workbook)
        return [
            _serialise_service(service.translate(text), workbook)
            for text in sentences
        ]

    columnar.set_columnar(True)
    optimised = run()
    columnar.set_columnar(False)
    legacy = run()
    assert optimised == legacy


def test_gateway_columnar_equals_rows(test_split):
    """The same batch through an optimised and a REPRO_NO_COLUMNAR=1
    gateway must produce byte-identical wire-level replies.  Workers are
    forked after the env var is set and re-sync it in ``worker_main``."""
    sample = test_split[:: max(1, len(test_split) // 120)]
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}

    def run(no_columnar: bool):
        old = os.environ.get("REPRO_NO_COLUMNAR")
        os.environ["REPRO_NO_COLUMNAR"] = "1" if no_columnar else ""
        gateway = TranslationGateway(
            config=GatewayConfig(workers=2, queue_limit=1024)
        )
        try:
            pendings = [
                gateway.submit(d.text, workbooks[d.sheet_id]) for d in sample
            ]
            return [p.result(timeout=120.0) for p in pendings]
        finally:
            gateway.close(drain=True)
            if old is None:
                os.environ.pop("REPRO_NO_COLUMNAR", None)
            else:
                os.environ["REPRO_NO_COLUMNAR"] = old

    optimised = run(no_columnar=False)
    legacy = run(no_columnar=True)
    for d, a, b in zip(sample, optimised, legacy):
        assert _serialise_gateway(a) == _serialise_gateway(b), (
            d.sheet_id, d.text
        )
