"""The stress corpus: deterministic, duplicated where it matters, and
translatable end to end at a small size."""

from __future__ import annotations

from repro.dataset import (
    DEFAULT_STRESS_SEED,
    stress_sentences,
    stress_workbook,
)
from repro.runtime import TranslationService


def test_workbook_deterministic():
    a = stress_workbook(500)
    b = stress_workbook(500)
    assert a.fingerprint() == b.fingerprint()
    assert stress_sentences(a) == stress_sentences(b)


def test_seed_and_rows_change_content():
    base = stress_workbook(500)
    assert stress_workbook(500, seed=DEFAULT_STRESS_SEED + 1).fingerprint() \
        != base.fingerprint()
    assert stress_workbook(600).fingerprint() != base.fingerprint()


def test_shape_and_cross_column_duplication():
    wb = stress_workbook(500)
    orders = wb.table("Orders")
    assert orders.n_rows == 500
    # Region values are deliberately shared between Orders.region,
    # Orders.shipregion and Couriers.region: a bare region span must
    # resolve to multiple slots (the ResolveCol regime at scale).
    lexicon = wb.all_text_values()
    region = str(orders.cell(0, 1).value.payload)
    slots = set(lexicon[region])
    assert ("Orders", "region") in slots
    assert ("Orders", "shipregion") in slots
    assert ("Couriers", "region") in slots


def test_sentences_translate():
    wb = stress_workbook(400)
    service = TranslationService(wb)
    for text in stress_sentences(wb):
        result = service.translate(text)
        assert result.candidates, text
