"""Tests for the evaluation dataset: sheets, tasks, generator, corpus."""

import collections

import pytest

from repro.dataset import (
    CORPUS_SIZE,
    Corpus,
    all_tasks,
    build_sheet,
    generate_descriptions,
    user_study_descriptions,
    validate_tasks,
)
from repro.dataset.intents import Filter, Intent
from repro.dsl import Evaluator
from repro.sheet import ValueType


class TestSheets:
    def test_four_sheets_build(self):
        for sheet_id in ("payroll", "inventory", "countries", "invoices"):
            wb = build_sheet(sheet_id)
            assert wb.default_table.n_rows >= 10
            assert wb.has_cursor

    def test_unknown_sheet(self):
        with pytest.raises(KeyError):
            build_sheet("budget")

    def test_payroll_has_lookup_side_table(self):
        wb = build_sheet("payroll")
        assert wb.has_table("PayRates")
        assert wb.table("PayRates").column("payrate").dtype is ValueType.CURRENCY

    def test_each_sheet_is_fresh(self):
        a = build_sheet("payroll")
        b = build_sheet("payroll")
        assert a is not b
        a.default_table.cell(0, 0).value = a.get_value("B2")
        assert b.default_table.cell(0, 0).value.payload == "alice"

    def test_domains_have_distinct_vocabulary(self):
        vocabularies = [
            set(build_sheet(s).all_text_values()) for s in
            ("payroll", "inventory", "countries", "invoices")
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (vocabularies[i] & vocabularies[j])


class TestTasks:
    def test_forty_tasks_ten_per_sheet(self):
        tasks = all_tasks()
        assert len(tasks) == 40
        by_sheet = collections.Counter(t.sheet_id for t in tasks)
        assert set(by_sheet.values()) == {10}

    def test_gold_programs_all_execute(self):
        validate_tasks()

    def test_task_ids_unique(self):
        ids = [t.task_id for t in all_tasks()]
        assert len(set(ids)) == 40

    def test_category_mix(self):
        cats = collections.Counter(t.category for t in all_tasks())
        # conditional reduce, count, select, format, lookup, map, argmax all present
        for cat in ("reduce", "count", "select", "format", "lookup",
                    "join_map", "map2", "argmax"):
            assert cats[cat] >= 1, cat

    def test_gold_conditional_sum_value(self):
        wb = build_sheet("payroll")
        task = next(t for t in all_tasks() if t.task_id == "payroll-01")
        result = Evaluator(wb).run(task.gold(wb), place=False)
        # capitol hill baristas: alice 396 + erin 492 + karen 432
        assert result.value.payload == 396 + 492 + 432

    def test_intent_validation(self):
        with pytest.raises(ValueError):
            Filter("hours", "approximately", 20)
        with pytest.raises(ValueError):
            Filter("hours", "lt_col")


class TestGenerator:
    def test_deterministic(self):
        task = all_tasks()[0]
        a = generate_descriptions(task, 20)
        b = generate_descriptions(task, 20)
        assert [d.text for d in a] == [d.text for d in b]

    def test_distinct_descriptions(self):
        task = all_tasks()[0]
        texts = [d.text for d in generate_descriptions(task, 80)]
        assert len(set(texts)) == len(texts)

    def test_descriptions_are_lowercase_single_spaced(self):
        for task in all_tasks()[:5]:
            for d in generate_descriptions(task, 30):
                assert d.text == " ".join(d.text.lower().split())

    def test_every_task_generates(self):
        for task in all_tasks():
            assert len(generate_descriptions(task, 10)) == 10

    def test_hard_mode_differs(self):
        task = all_tasks()[0]
        easy = {d.text for d in generate_descriptions(task, 60)}
        hard = {d.text for d in generate_descriptions(task, 60, hard=True)}
        assert easy != hard

    def test_keyword_and_verbose_styles_both_occur(self):
        task = next(t for t in all_tasks() if t.task_id == "payroll-01")
        texts = [d.text for d in generate_descriptions(task, 89)]
        assert any(len(t.split()) <= 6 for t in texts), "no keyword style"
        assert any(len(t.split()) >= 10 for t in texts), "no verbose style"


class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return Corpus.default()

    def test_size(self, corpus):
        assert len(corpus) == CORPUS_SIZE == 3570

    def test_split_fractions(self, corpus):
        assert len(corpus.train) == int(3570 * 0.7)
        assert len(corpus.train) + len(corpus.test) == 3570

    def test_split_disjoint(self, corpus):
        train_keys = {(d.task_id, d.text) for d in corpus.train}
        test_keys = {(d.task_id, d.text) for d in corpus.test}
        assert not (train_keys & test_keys)

    def test_every_task_in_both_splits(self, corpus):
        train_tasks = {d.task_id for d in corpus.train}
        test_tasks = {d.task_id for d in corpus.test}
        assert len(train_tasks) == 40
        assert len(test_tasks) == 40

    def test_by_sheet_filters(self, corpus):
        payroll = corpus.by_sheet("payroll")
        assert payroll
        assert all(d.sheet_id == "payroll" for d in payroll)

    def test_task_of(self, corpus):
        d = corpus.descriptions[0]
        assert corpus.task_of(d).task_id == d.task_id


class TestUserStudy:
    def test_sixty_two_descriptions(self):
        assert len(user_study_descriptions()) == 62

    def test_all_hard(self):
        assert all(d.hard for d in user_study_descriptions())

    def test_deterministic(self):
        a = [d.text for d in user_study_descriptions()]
        b = [d.text for d in user_study_descriptions()]
        assert a == b
