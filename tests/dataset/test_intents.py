"""Direct tests for the intent layer (gold-program construction)."""

import pytest

from repro.dataset import build_sheet
from repro.dataset.intents import Filter, Intent, build_condition, build_gold
from repro.dsl import Evaluator, TypeChecker, ast
from repro.sheet import ValueType


@pytest.fixture
def wb():
    return build_sheet("payroll")


class TestFilters:
    def test_eq_text(self, wb):
        f = build_condition(wb, Intent(kind="count",
                                       filters=(Filter("title", "eq", "chef"),)))
        assert isinstance(f, ast.Compare)
        assert f.op is ast.RelOp.EQ

    def test_neq_wraps_not(self, wb):
        f = build_condition(
            wb, Intent(kind="count", filters=(Filter("title", "neq", "chef"),))
        )
        assert isinstance(f, ast.Not)

    def test_currency_column_gets_currency_literal(self, wb):
        f = build_condition(
            wb, Intent(kind="count", filters=(Filter("totalpay", "gt", 500),))
        )
        assert f.right.value.type is ValueType.CURRENCY

    def test_number_column_gets_number_literal(self, wb):
        f = build_condition(
            wb, Intent(kind="count", filters=(Filter("hours", "gt", 20),))
        )
        assert f.right.value.type is ValueType.NUMBER

    def test_gt_avg_nests_reduce(self, wb):
        f = build_condition(
            wb, Intent(kind="count", filters=(Filter("hours", "gt_avg"),))
        )
        assert isinstance(f.right, ast.Reduce)
        assert f.right.op is ast.ReduceOp.AVG

    def test_column_comparison(self, wb):
        f = build_condition(
            wb,
            Intent(kind="count", filters=(
                Filter("othours", "gt_col", other_column="hours"),
            )),
        )
        assert isinstance(f.right, ast.ColumnRef)

    def test_conjunction_and_disjunction(self, wb):
        two = (Filter("title", "eq", "chef"), Filter("title", "eq", "barista"))
        conj = build_condition(wb, Intent(kind="count", filters=two))
        disj = build_condition(
            wb, Intent(kind="count", filters=two, disjunctive=True)
        )
        assert isinstance(conj, ast.And)
        assert isinstance(disj, ast.Or)

    def test_empty_filters_is_true(self, wb):
        assert build_condition(wb, Intent(kind="count")) == ast.TrueF()

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            Filter("hours", "near", 20)


class TestGoldPrograms:
    def _valid(self, wb, intent):
        gold = build_gold(wb, intent)
        assert TypeChecker(wb).valid_program(gold)
        return gold

    def test_every_kind_builds_and_typechecks(self, wb):
        intents = [
            Intent(kind="reduce", reduce_op="sum", column="hours"),
            Intent(kind="count"),
            Intent(kind="select", filters=(Filter("title", "eq", "chef"),)),
            Intent(kind="format", format_color="red",
                   filters=(Filter("othours", "gt", 0),)),
            Intent(kind="lookup", needle="chef", key_column="title",
                   out_column="payrate", aux_table="PayRates"),
            Intent(kind="join_map", map_op="mult", column="hours",
                   key_column="title", out_column="payrate",
                   aux_table="PayRates"),
            Intent(kind="map2", map_op="add", column="hours",
                   operand2="othours"),
            Intent(kind="map_scaled2", column="basepay", operand2="otpay",
                   scale=1.1),
            Intent(kind="map_scalar", map_op="mult", column="hours",
                   operand2=2),
            Intent(kind="argmax", column="totalpay"),
        ]
        for intent in intents:
            self._valid(wb, intent)

    def test_unknown_kind_rejected(self, wb):
        with pytest.raises(ValueError):
            build_gold(wb, Intent(kind="pivot"))

    def test_map_scalar_evaluates(self, wb):
        gold = self._valid(
            wb, Intent(kind="map_scalar", map_op="mult", column="hours",
                       operand2=2)
        )
        result = Evaluator(wb).run(gold, place=False)
        assert result.values[0].payload == 60

    def test_argmax_selects_max_row(self, wb):
        gold = self._valid(wb, Intent(kind="argmax", column="totalpay"))
        result = Evaluator(wb).run(gold)
        assert result.rows == [5]  # frank, $984
