"""Distributional checks on the corpus generator.

The corpus substitution (DESIGN.md) is only sound if the generator actually
produces the variation axes the paper documents: style spread, politeness
prefixes, misspellings at a low rate, implicit references, column-letter
forms, and multi-word column surfaces.  These tests measure those rates on
the deterministic corpus.
"""

from __future__ import annotations

import collections

import pytest

from repro.dataset import Corpus, all_tasks, build_sheet
from repro.dataset.generator import _PREFIXES
from repro.translate import Translator


@pytest.fixture(scope="module")
def corpus():
    return Corpus.default()


@pytest.fixture(scope="module")
def texts(corpus):
    return [d.text for d in corpus.descriptions]


class TestStyleSpread:
    def test_length_distribution_is_wide(self, texts):
        lengths = sorted(len(t.split()) for t in texts)
        assert lengths[0] <= 4            # keyword style exists
        assert lengths[-1] >= 13          # verbose style exists
        p25 = lengths[len(lengths) // 4]
        p75 = lengths[3 * len(lengths) // 4]
        assert p75 - p25 >= 3             # genuine spread, not two spikes

    def test_politeness_prefix_rate(self, texts):
        prefixed = sum(
            1 for t in texts if any(t.startswith(p.strip()) for p in _PREFIXES)
        )
        rate = prefixed / len(texts)
        assert 0.10 <= rate <= 0.40

    def test_misspelling_rate(self, corpus):
        """Roughly the configured ~7% of descriptions contain a token the
        spell corrector has to fix."""
        by_sheet = {}
        misspelled = 0
        sample = corpus.descriptions[:800]
        for d in sample:
            translator = by_sheet.setdefault(
                d.sheet_id, Translator(build_sheet(d.sheet_id))
            )
            tokens = translator.prepare_tokens(d.text)
            if any(t.misspelled for t in tokens):
                misspelled += 1
        rate = misspelled / len(sample)
        assert 0.02 <= rate <= 0.15

    def test_column_letter_style_occurs(self, texts):
        assert any("column b" in t or "column h" in t or "column c" in t
                   for t in texts)

    def test_multiword_column_surfaces_occur(self, texts):
        assert any("total pay" in t for t in texts)
        assert any("gdp per capita" in t for t in texts)

    def test_implicit_reference_style_occurs(self, texts):
        # the flagship implicit NP from Tab. 1
        assert any("capitol hill baristas" in t for t in texts)


class TestBalance:
    def test_tasks_evenly_covered(self, corpus):
        counts = collections.Counter(d.task_id for d in corpus.descriptions)
        assert len(counts) == 40
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_sheets_evenly_covered(self, corpus):
        counts = collections.Counter(d.sheet_id for d in corpus.descriptions)
        spread = max(counts.values()) - min(counts.values())
        assert spread <= 10

    def test_vocabulary_is_sheet_specific(self, corpus):
        payroll_text = " ".join(
            d.text for d in corpus.descriptions if d.sheet_id == "payroll"
        )
        assert "barista" in payroll_text
        assert "gadget" not in payroll_text


class TestDeterminism:
    def test_regeneration_is_identical(self, corpus):
        again = Corpus.default()
        assert [d.text for d in corpus.descriptions] == [
            d.text for d in again.descriptions
        ]
        assert [d.text for d in corpus.test] == [d.text for d in again.test]

    def test_different_seed_differs(self, corpus):
        other = Corpus.default(seed=99)
        assert [d.text for d in corpus.descriptions] != [
            d.text for d in other.descriptions
        ]

    def test_tasks_have_stable_ids(self):
        ids = [t.task_id for t in all_tasks()]
        # insertion order: 10 tasks per sheet, numbered 01..10
        assert ids[:3] == ["payroll-01", "payroll-02", "payroll-03"]
        assert ids[-1] == "invoices-10"
        assert ids == [t.task_id for t in all_tasks()]
