"""Smoke tests: every example script runs cleanly and prints its story."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = sorted(
    p for p in (Path(__file__).parent.parent / "examples").glob("*.py")
    if p.name != "repl.py"  # interactive; exercised separately below
)


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_quickstart_shows_running_example():
    script = Path(__file__).parent.parent / "examples" / "quickstart.py"
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=180,
    )
    assert "SUMIFS" in proc.stdout
    assert "$1,320" in proc.stdout


def test_repl_session_scripted():
    script = Path(__file__).parent.parent / "examples" / "repl.py"
    stdin = "sum the hours\n\n:script\n:quit\n"
    proc = subprocess.run(
        [sys.executable, str(script), "payroll"],
        input=stdin, capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert "342" in proc.stdout           # the executed sum
    assert "Sum(hours" in proc.stdout     # :script output
