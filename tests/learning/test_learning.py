"""Tests for the rule-learning pipeline (§3.3.1)."""

import pytest

from repro.dataset import Corpus, all_tasks, build_sheet
from repro.dsl import ast
from repro.learning import (
    LearningTarget,
    TrainingExample,
    cluster_templates,
    default_targets,
    extract_all,
    extract_template,
    find_unifying_subexpression,
    generalize,
    learn_rules,
    prune,
    score_rules,
    unify,
)
from repro.learning.selection import RuleStats
from repro.sheet import CellValue
from repro.translate.patterns import MustPat, OptPat
from repro.translate.rules import RuleSet

_H = ast.Hole
_C = ast.HoleKind.COLUMN
_G = ast.HoleKind.GENERAL


def sum_target():
    return ast.Reduce(ast.ReduceOp.SUM, _H(1, _C), ast.GetTable(), _H(2, _G))


def lt_filter():
    return ast.Compare(
        ast.RelOp.LT, ast.ColumnRef("hours"), ast.Lit(CellValue.number(20))
    )


def sum_program():
    return ast.Reduce(
        ast.ReduceOp.SUM, ast.ColumnRef("totalpay"), ast.GetTable(), lt_filter()
    )


class TestUnify:
    def test_unifies_and_captures(self):
        bindings = unify(sum_program(), sum_target())
        assert bindings[1] == ast.ColumnRef("totalpay")
        assert bindings[2] == lt_filter()

    def test_mismatched_operator(self):
        target = ast.Reduce(ast.ReduceOp.AVG, _H(1, _C), ast.GetTable(), _H(2, _G))
        assert unify(sum_program(), target) is None

    def test_restriction_enforced(self):
        # a column hole cannot capture a filter
        target = ast.Reduce(ast.ReduceOp.SUM, _H(1, _C), ast.GetTable(),
                            _H(2, _C))
        assert unify(sum_program(), target) is None

    def test_shared_ident_must_capture_same_subtree(self):
        target = ast.BinOp(ast.BinaryOp.ADD, _H(1, _G), _H(1, _G))
        same = ast.BinOp(
            ast.BinaryOp.ADD, ast.ColumnRef("hours"), ast.ColumnRef("hours")
        )
        different = ast.BinOp(
            ast.BinaryOp.ADD, ast.ColumnRef("hours"), ast.ColumnRef("othours")
        )
        assert unify(same, target) is not None
        assert unify(different, target) is None

    def test_find_in_subexpression(self):
        program = ast.MakeActive(ast.SelectRows(ast.GetTable(), lt_filter()))
        target = ast.Compare(ast.RelOp.LT, _H(1, _C), _H(2, _G))
        assert find_unifying_subexpression(program, target) is not None


class TestExtraction:
    def _example(self, text):
        return TrainingExample(
            text=text, program=sum_program(), workbook=build_sheet("payroll")
        )

    def test_extracts_template(self):
        template = extract_template(
            self._example("sum the totalpay where hours less than 20"),
            sum_target(), "learned_sum", "sum",
        )
        assert template is not None
        kinds = [k for k, _ in template.items]
        assert "anchor" in kinds
        assert ("slot", "%C1") in template.items
        assert ("slot", "%2") in template.items

    def test_anchor_required(self):
        template = extract_template(
            self._example("the totalpay where hours less than 20"),
            sum_target(), "learned_sum", "sum",
        )
        assert template is None

    def test_non_contiguous_slot_rejected(self):
        # filter words on both sides of the column -> slot would be split
        template = extract_template(
            self._example("hours sum the totalpay less than 20"),
            sum_target(), "learned_sum", "sum",
        )
        assert template is None

    def test_signature_normalizes_anchor(self):
        a = extract_template(
            self._example("sum the totalpay where hours less than 20"),
            sum_target(), "learned_sum", "sum",
        )
        b = extract_template(
            self._example("total the totalpay where hours less than 20"),
            sum_target(), "learned_sum", "sum",
        )
        assert a.signature() == b.signature()
        assert a.anchor_words() != b.anchor_words()


class TestClusteringAndGeneralization:
    def _templates(self):
        wb = build_sheet("payroll")
        texts = [
            "sum the totalpay where hours less than 20",
            "total the totalpay where hours less than 20",
            "sum all the totalpay for hours less than 20",
        ]
        out = []
        for text in texts:
            t = extract_template(
                TrainingExample(text=text, program=sum_program(), workbook=wb),
                sum_target(), "learned_sum", "sum",
            )
            assert t is not None
            out.append(t)
        return out

    def test_same_shape_clusters_together(self):
        clusters = cluster_templates(self._templates())
        assert len(clusters) == 1
        assert clusters[0].support == 3

    def test_generalize_merges_anchors_and_fillers(self):
        (cluster,) = cluster_templates(self._templates())
        patterns = generalize(cluster, min_support=2)
        assert patterns is not None
        musts = [p for p in patterns if isinstance(p, MustPat)]
        assert any(("sum",) in m.options and ("total",) in m.options
                   for m in musts)
        opts = [p for p in patterns if isinstance(p, OptPat)]
        assert any("the" in o.words for o in opts)

    def test_min_support(self):
        (cluster,) = cluster_templates(self._templates()[:1])
        assert generalize(cluster, min_support=2) is None


class TestScoringAndPruning:
    def _examples(self, n=30):
        corpus = Corpus.default()
        tasks = {t.task_id: t for t in all_tasks()}
        workbooks = {}
        out = []
        for d in corpus.train:
            if len(out) >= n:
                break
            wb = workbooks.setdefault(d.sheet_id, build_sheet(d.sheet_id))
            out.append(TrainingExample(
                text=d.text, program=tasks[d.task_id].gold(wb), workbook=wb
            ))
        return out

    def test_goodness_formula(self):
        from repro.translate.rules import make_rule

        rule = make_rule("r", "sum %C1", sum_target())
        st = RuleStats(rule=rule, pos={1, 2, 3}, neg={4})
        assert st.goodness == pytest.approx(9 / 4)

    def test_goodness_zero_when_never_applied(self):
        from repro.translate.rules import make_rule

        st = RuleStats(rule=make_rule("r", "sum %C1", sum_target()))
        assert st.goodness == 0.0

    def test_naive_bayes_score_clipped(self):
        from repro.translate.rules import make_rule

        rule = make_rule("r", "sum %C1", sum_target())
        hi = RuleStats(rule=rule, pos=set(range(100)), neg=set())
        lo = RuleStats(rule=rule, pos=set(), neg=set(range(100)))
        assert hi.naive_bayes_score == 0.95
        assert lo.naive_bayes_score == 0.3

    def test_prune_drops_low_goodness(self):
        from repro.translate.rules import make_rule

        rule = make_rule("r", "sum %C1", sum_target())
        bad = RuleStats(rule=rule, pos={1}, neg={2, 3, 4, 5})
        assert prune([bad]) == []

    def test_prune_subsumption(self):
        from repro.translate.rules import make_rule

        specific = RuleStats(
            rule=make_rule("specific", "sum (the)* %C1", sum_target()),
            pos={1, 2},
        )
        general = RuleStats(
            rule=make_rule("general", "(sum|total) (the|all)* %C1", sum_target()),
            pos={1, 2, 3},
        )
        survivors = prune([specific, general])
        assert [s.rule.name for s in survivors] == ["general"]

    def test_score_rules_on_real_examples(self):
        from repro.translate.rules import make_rule

        rule = make_rule(
            "sum_where", "(sum|total|add) (up|all|the|of)*! %C1 %2", sum_target()
        )
        stats = score_rules([rule], self._examples(40))
        assert stats[0].applied  # it fires on sum descriptions


class TestEndToEnd:
    def test_learn_rules_from_corpus(self):
        corpus = Corpus.default()
        tasks = {t.task_id: t for t in all_tasks()}
        workbooks = {}
        examples = []
        for d in corpus.train[:350]:
            wb = workbooks.setdefault(d.sheet_id, build_sheet(d.sheet_id))
            examples.append(TrainingExample(
                text=d.text, program=tasks[d.task_id].gold(wb), workbook=wb
            ))
        rules = learn_rules(examples, score_sample=50)
        assert isinstance(rules, RuleSet)
        assert len(rules) >= 3
        assert all(0.3 <= r.score <= 0.95 for r in rules)

    def test_learned_rules_usable_in_translator(self):
        corpus = Corpus.default()
        tasks = {t.task_id: t for t in all_tasks()}
        wb = build_sheet("payroll")
        examples = [
            TrainingExample(
                text=d.text, program=tasks[d.task_id].gold(wb), workbook=wb
            )
            for d in corpus.train
            if d.sheet_id == "payroll"
        ][:150]
        learned = learn_rules(examples, score_sample=40)
        from repro.translate import Translator

        translator = Translator(build_sheet("payroll"), rules=learned)
        candidates = translator.translate("sum the totalpay for the baristas")
        assert candidates  # learned rules + synthesis produce programs

    def test_default_targets_cover_reduce_family(self):
        names = {t.name for t in default_targets()}
        assert {"learned_sum", "learned_avg", "learned_min", "learned_max",
                "learned_count"} <= names
