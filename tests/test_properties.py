"""Property-based tests on cross-cutting invariants.

These pin the system-level contracts: the evaluator agrees with a reference
computation on randomly generated programs, canonical equivalence is a
congruence, translation never crashes on arbitrary input, and executing any
returned candidate is safe.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataset import build_sheet
from repro.dsl import Evaluator, TypeChecker, ast
from repro.evalkit import canonicalize
from repro.sheet import CellValue
from repro.translate import Translator

# -- strategies -------------------------------------------------------------

_TEXT_COLUMNS = {
    "location": ["capitol hill", "queen anne", "downtown"],
    "title": ["barista", "chef", "cashier"],
}
_NUM_COLUMNS = ["hours", "othours"]
_CUR_COLUMNS = ["basepay", "otpay", "totalpay"]


def eq_filters():
    return st.sampled_from(sorted(_TEXT_COLUMNS)).flatmap(
        lambda c: st.sampled_from(_TEXT_COLUMNS[c]).map(
            lambda v: ast.Compare(
                ast.RelOp.EQ, ast.ColumnRef(c), ast.Lit(CellValue.text(v))
            )
        )
    )


def numeric_filters():
    return st.tuples(
        st.sampled_from(_NUM_COLUMNS),
        st.sampled_from([ast.RelOp.LT, ast.RelOp.GT]),
        st.integers(min_value=0, max_value=45),
    ).map(
        lambda t: ast.Compare(
            t[1], ast.ColumnRef(t[0]), ast.Lit(CellValue.number(t[2]))
        )
    )


def filters(depth=2):
    base = st.one_of(eq_filters(), numeric_filters(), st.just(ast.TrueF()))
    if depth == 0:
        return base
    sub = filters(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, sub).map(lambda t: ast.And(*t)),
        st.tuples(sub, sub).map(lambda t: ast.Or(*t)),
        sub.map(ast.Not),
    )


def reduce_programs():
    return st.tuples(
        st.sampled_from(list(ast.ReduceOp)),
        st.sampled_from(_NUM_COLUMNS + _CUR_COLUMNS),
        filters(),
    ).map(lambda t: ast.Reduce(t[0], ast.ColumnRef(t[1]), ast.GetTable(), t[2]))


def count_programs():
    return filters().map(lambda f: ast.Count(ast.GetTable(), f))


# -- reference semantics ------------------------------------------------------

def _rows(workbook):
    table = workbook.default_table
    return [
        {name: table.cell(i, j).value
         for j, name in enumerate(table.column_names)}
        for i in range(table.n_rows)
    ]


def _holds(f, row):
    if isinstance(f, ast.TrueF):
        return True
    if isinstance(f, ast.And):
        return _holds(f.left, row) and _holds(f.right, row)
    if isinstance(f, ast.Or):
        return _holds(f.left, row) or _holds(f.right, row)
    if isinstance(f, ast.Not):
        return not _holds(f.operand, row)
    value = row[f.left.name]
    target = f.right.value
    if f.op is ast.RelOp.EQ:
        return value.equals(target)
    if f.op is ast.RelOp.LT:
        return float(value.payload) < float(target.payload)
    return float(value.payload) > float(target.payload)


class TestEvaluatorAgainstReference:
    @given(count_programs())
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_count_matches_reference(self, program):
        workbook = build_sheet("payroll")
        expected = sum(
            1 for row in _rows(workbook) if _holds(program.condition, row)
        )
        result = Evaluator(workbook).run(program, place=False)
        assert result.value.payload == expected

    @given(reduce_programs())
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_reduce_matches_reference(self, program):
        from repro.errors import EvaluationError

        workbook = build_sheet("payroll")
        matching = [
            float(row[program.column.name].payload)
            for row in _rows(workbook)
            if _holds(program.condition, row)
        ]
        evaluator = Evaluator(workbook)
        if not matching and program.op is not ast.ReduceOp.SUM:
            with pytest.raises(EvaluationError):
                evaluator.run(program, place=False)
            return
        result = evaluator.run(program, place=False)
        reference = {
            ast.ReduceOp.SUM: sum(matching),
            ast.ReduceOp.AVG: (sum(matching) / len(matching)) if matching else 0,
            ast.ReduceOp.MIN: min(matching) if matching else 0,
            ast.ReduceOp.MAX: max(matching) if matching else 0,
        }[program.op]
        assert float(result.value.payload) == pytest.approx(reference)


class TestCanonicalCongruence:
    @given(filters(), filters())
    @settings(max_examples=60)
    def test_and_commutes_under_canonicalization(self, f, g):
        workbook = build_sheet("payroll")
        a = canonicalize(ast.And(f, g), workbook)
        b = canonicalize(ast.And(g, f), workbook)
        assert a == b

    @given(reduce_programs())
    @settings(max_examples=60)
    def test_canonicalization_idempotent(self, program):
        workbook = build_sheet("payroll")
        once = canonicalize(program, workbook)
        assert canonicalize(once, workbook) == once

    @given(reduce_programs())
    @settings(max_examples=60)
    def test_canonicalization_preserves_semantics(self, program):
        from repro.errors import EvaluationError

        workbook = build_sheet("payroll")
        evaluator = Evaluator(workbook)
        rewritten = canonicalize(program, workbook)
        try:
            original = evaluator.run(program, place=False).value
        except EvaluationError:
            with pytest.raises(EvaluationError):
                evaluator.run(rewritten, place=False)
            return
        assert evaluator.run(rewritten, place=False).value.equals(original)


class TestValidSoundness:
    @given(reduce_programs())
    @settings(max_examples=60)
    def test_generated_programs_typecheck(self, program):
        workbook = build_sheet("payroll")
        assert TypeChecker(workbook).valid_program(program)


_WORDS = st.sampled_from(
    "sum average count the for where hours totalpay baristas capitol hill"
    " less than greater 20 0 and or not red color rows select lookup per"
    " please computer zzz qqq".split()
)


class TestTranslatorRobustness:
    @given(st.lists(_WORDS, min_size=1, max_size=7))
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_translate_never_crashes(self, words):
        translator = Translator(build_sheet("payroll"))
        candidates = translator.translate(" ".join(words))
        # whatever comes back must be complete, valid, executable programs
        evaluator = Evaluator(translator.workbook)
        for candidate in candidates[:3]:
            from repro.errors import EvaluationError

            try:
                evaluator.run(candidate.program, place=False)
            except EvaluationError:
                pass  # runtime failure (lookup miss etc.) is acceptable

    @given(st.lists(_WORDS, min_size=1, max_size=7))
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_scores_in_unit_interval(self, words):
        translator = Translator(build_sheet("payroll"))
        for candidate in translator.translate(" ".join(words)):
            assert 0.0 <= candidate.score <= 1.0 + 1e-9
